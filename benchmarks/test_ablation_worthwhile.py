"""Ablation A4 — the worthwhileness threshold (the bitcnt 62% point).

The paper leaves ~38% of bitcnt's READs in place because prefetching a
256-entry table for one data-dependent lookup is a loss.  Sweeping the
pass's ``worthwhile_threshold`` reproduces both ends:

* threshold 0 — prefetch *everything*, including the byte table: all
  READs disappear but the PF overhead grows;
* a moderate threshold — only the nibble table is prefetched (the
  paper's configuration);
* a huge threshold — nothing is prefetched; the transform degenerates to
  the baseline.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config


def test_worthwhile_threshold_sweep(benchmark):
    workload = builders()["bitcnt"]()
    cfg = paper_config(8)
    base = run_workload(workload, cfg, prefetch=False)

    def run_at(threshold: float):
        return run_workload(
            workload, cfg, prefetch=True,
            options=PrefetchOptions(worthwhile_threshold=threshold),
        )

    greedy = benchmark.pedantic(lambda: run_at(0.0), rounds=1, iterations=1)
    paper_like = run_at(0.5)
    never = run_at(1e9)

    rows = [
        ["baseline (no pass)", base.cycles, base.stats.mix.reads],
        ["threshold=1e9 (never)", never.cycles, never.stats.mix.reads],
        ["threshold=0.5 (paper)", paper_like.cycles, paper_like.stats.mix.reads],
        ["threshold=0 (greedy)", greedy.cycles, greedy.stats.mix.reads],
    ]
    print()
    print(format_table(["configuration", "cycles", "READs left"], rows))

    # Never-prefetch degenerates to the baseline program.
    assert never.stats.mix.reads == base.stats.mix.reads
    assert never.cycles == base.cycles
    # Greedy decouples everything.
    assert greedy.stats.mix.reads == 0
    # The paper's threshold keeps the dynamic byte-table READs.
    assert 0 < paper_like.stats.mix.reads < base.stats.mix.reads
    # And the selective configuration beats never-prefetch.
    assert paper_like.cycles < never.cycles
