"""Figure 5 — breakdown of average SPU execution time (8 SPEs, lat=150).

Shape claims reproduced:

* 5a (no prefetching): all three benchmarks spend a large share of time
  waiting for main memory — paper: 58% bitcnt, 94% mmul, 92% zoom — and
  LS stalls are small (<= a few %).
* 5b (with prefetching): memory stalls are completely eliminated for
  mmul and zoom; bitcnt retains memory stalls from the READs the
  worthwhileness rule left in place; a Prefetching-overhead bucket
  appears.
"""

from __future__ import annotations

from conftest import pair_for

from repro.bench.report import breakdown_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config
from repro.sim.stats import Bucket


def test_fig5a_no_prefetching(benchmark, all_pairs):
    build = builders()["zoom"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(breakdown_table(all_pairs, prefetch=False))

    frac = {
        name: pair.base.stats.bucket_fractions()
        for name, pair in all_pairs.items()
    }
    # Memory-bound benchmarks: the overwhelming majority is memory stalls.
    assert frac["mmul"][Bucket.MEM_STALL] > 0.85
    assert frac["zoom"][Bucket.MEM_STALL] > 0.85
    # bitcnt is compute-heavier but still significantly memory-stalled.
    assert 0.3 < frac["bitcnt"][Bucket.MEM_STALL] < 0.95
    for name in frac:
        assert frac[name][Bucket.LS_STALL] < 0.05, (
            "LS accesses are mostly hidden"
        )
        assert frac[name][Bucket.PREFETCH] == 0.0


def test_fig5b_with_prefetching(benchmark, all_pairs):
    build = builders()["zoom"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(breakdown_table(all_pairs, prefetch=True))

    frac = {
        name: pair.prefetch.stats.bucket_fractions()
        for name, pair in all_pairs.items()
    }
    # "in case of the other two benchmarks memory stalls are completely
    # eliminated"
    assert frac["mmul"][Bucket.MEM_STALL] < 0.02
    assert frac["zoom"][Bucket.MEM_STALL] < 0.02
    # "in case of bitcnt, memory stalls still account for 26% of
    # execution time" — the non-decoupled byte-table READs remain.
    assert frac["bitcnt"][Bucket.MEM_STALL] > 0.10
    # Prefetch overhead exists where DMA programming is on the SPU.
    assert frac["mmul"][Bucket.PREFETCH] > 0.01
    assert frac["zoom"][Bucket.PREFETCH] > 0.0
    # Working share rises dramatically for the memory-bound benchmarks.
    for name in ("mmul", "zoom"):
        assert (
            frac[name][Bucket.WORKING]
            > all_pairs[name].base.stats.bucket_fractions()[Bucket.WORKING]
        )
