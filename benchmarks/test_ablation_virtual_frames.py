"""Ablation A3 — virtual frame pointers.

Sec. 4.3 on bitcnt's LSE stalls: "this benchmark is forking a vast amount
of threads in a small amount of time and the LSE can't keep up (a
possible solution is to use virtual frame pointers, but we did not
include this feature in the current version of the CellDTA simulator)".

The ablation shrinks the frame table to make frame pressure acute:

* **physical-only** (CellDTA as in the paper): the fork tree exhausts
  the frame table while forking threads hold their frames — a
  frame-exhaustion deadlock the simulator detects and reports;
* **virtual frame pointers** (the DTA-C feature the paper cites): FALLOC
  answers immediately with a virtual handle, stores are buffered, frames
  are bound as they free — the same run completes, nearly as fast as
  with an abundant frame table.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config
from repro.sim.engine import SimulationDeadlock


def _config(spes: int, frames: int, virtual: bool):
    cfg = paper_config(spes)
    return cfg.replace(
        lse=dataclasses.replace(
            cfg.lse,
            num_frames=frames,
            virtual_frame_pointers=virtual,
        )
    )


def test_virtual_frames_survive_fork_pressure(benchmark):
    workload = builders()["bitcnt"]()
    virtual = benchmark.pedantic(
        lambda: run_workload(
            workload, _config(8, frames=3, virtual=True), prefetch=False
        ),
        rounds=1,
        iterations=1,
    )
    ample = run_workload(workload, paper_config(8), prefetch=False)

    # The physical-only machine deadlocks: every frame is held by a
    # forking thread whose children are queued for frames.
    with pytest.raises(SimulationDeadlock):
        run_workload(workload, _config(8, frames=3, virtual=False),
                     prefetch=False)

    print()
    print(
        f"bitcnt @8 SPEs, 3 frames/LSE: physical-only=DEADLOCK, "
        f"virtual={virtual.cycles} cycles "
        f"(ample 64-frame table: {ample.cycles} cycles)"
    )
    # Virtual frames keep the tiny frame table within ~2x of an ample one.
    assert virtual.cycles < 2.0 * ample.cycles
