"""Figure 6 — bitcnt execution time and scalability (lat=150, 1-8 SPEs).

Shape claims: prefetching gives bitcnt a modest speedup (paper: 1.13x —
small because only ~62% of READs are decoupled and the benchmark is
compute-heavy), execution time drops at every SPE count, and the
benchmark scales with SPEs (it is the paper's scalability stressor),
with prefetch scalability slightly worse than the original's.
"""

from __future__ import annotations

from conftest import sweep_for

from repro.bench.report import execution_table, scalability_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config


def test_fig6_bitcnt_scaling(benchmark):
    build = builders()["bitcnt"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=False),
        rounds=1,
        iterations=1,
    )
    scaling = sweep_for("bitcnt")
    print()
    print(execution_table(scaling))
    print()
    print(scalability_table(scaling))

    # 6a: prefetching wins at 8 SPEs, by a modest factor.
    speedup = scaling.speedup_at(8)
    assert 1.0 < speedup < 4.0, f"bitcnt speedup should be modest, got {speedup:.2f}"
    # Execution time improves at every machine size.
    for n, pair in scaling.pairs.items():
        assert pair.prefetch.cycles < pair.base.cycles, f"no win at {n} SPEs"
    # 6b: the benchmark scales (8 SPEs much faster than 1).
    scal = scaling.scalability(prefetch=False)
    assert scal[8] > 3.0
    assert scal[2] > 1.5
