"""Figure 8 — zoom execution time and scalability (lat=150, 1-8 SPEs).

Shape claims: prefetching speeds zoom up by roughly an order of magnitude
(paper: 11.48x at 8 SPEs — the largest of the three), all global reads
are decoupled, and prefetch overhead is negligible (one big DMA per band
amortized over a whole band of output pixels).
"""

from __future__ import annotations

from conftest import sweep_for

from repro.bench.report import execution_table, scalability_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config
from repro.sim.stats import Bucket


def test_fig8_zoom_scaling(benchmark):
    build = builders()["zoom"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    scaling = sweep_for("zoom")
    print()
    print(execution_table(scaling))
    print()
    print(scalability_table(scaling))

    speedup = scaling.speedup_at(8)
    assert speedup > 5.0, f"zoom speedup should be large, got {speedup:.2f}"
    for n, pair in scaling.pairs.items():
        assert pair.prefetch.cycles < pair.base.cycles, f"no win at {n} SPEs"
        assert pair.decoupled_fraction == 1.0
    # "Prefetching overhead ... is negligible in case of zoom".
    pf_frac = scaling.pairs[8].prefetch.stats.bucket_fractions()
    assert pf_frac[Bucket.PREFETCH] < 0.05
    # zoom has the biggest or near-biggest win of the three benchmarks
    # (checked against mmul in test_latency1_study which loads both).
    base_scal = scaling.scalability(prefetch=False)
    assert base_scal[8] > 4.0
