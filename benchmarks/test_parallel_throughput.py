"""Host-performance benchmark: parallel fan-out of a multi-workload sweep.

Not a paper experiment — this measures the bench layer itself: the same
(workload, SPE count, variant) matrix executed serially and via
``run_many(jobs=N)``, asserting the results are identical and recording
the wall-clock ratio.  On a multi-core host the parallel path must beat
the serial one; on a single core (CI smoke runners) only the identity
claim is enforced, since forking cannot create cycles out of thin air.

The persistent result cache is deliberately bypassed here: both paths
must actually simulate for the comparison to mean anything.
"""

from __future__ import annotations

import os
import time

from repro.bench.parallel import pair_tasks, run_many
from repro.bench.scale import builders
from repro.sim.config import paper_config


def _matrix():
    """Every benchmark at 2 and 4 SPEs, both variants — 12 runs."""
    tasks = []
    for name, build in builders().items():
        workload = build()
        for n in (2, 4):
            tasks.extend(pair_tasks(workload, paper_config(n)))
    return tasks


def test_parallel_sweep_throughput(benchmark):
    tasks = _matrix()
    jobs = min(4, os.cpu_count() or 1)

    t0 = time.perf_counter()
    serial = run_many(tasks, jobs=1)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        return run_many(tasks, jobs=jobs)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    assert [r.cycles for r in serial] == [r.cycles for r in parallel]

    benchmark.extra_info["runs"] = len(tasks)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["serial_seconds"] = round(serial_s, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(serial_s / parallel_s, 2)
    if jobs >= 2 and (os.cpu_count() or 1) >= 2:
        # The whole point of the subsystem: a multi-workload sweep must
        # get faster when fanned out across real cores.
        assert parallel_s < serial_s, (
            f"parallel sweep ({parallel_s:.2f}s, jobs={jobs}) not faster "
            f"than serial ({serial_s:.2f}s)"
        )
