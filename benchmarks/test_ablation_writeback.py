"""Ablation A6 — write-back (DMAPUT) prefetching of read+write regions.

The paper's benchmarks only read global data in their hot loops; its
future work asks for more advanced mechanisms.  This ablation runs the
``brighten`` in-place workload three ways:

* baseline DTA (READ + WRITE per pixel — both directions stall/occupy
  the pipeline);
* the paper's read-only pass (must refuse to touch the region: the LS
  copy of a written object would go stale);
* the write-back extension (DMAGET in PF, LLOAD/LSTORE in EX, DMAPUT in
  PS) — removing all scalar global traffic.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config
from repro.workloads import inplace


def test_writeback_prefetching(benchmark):
    workload = inplace.build(n=16, threads=16)
    cfg = paper_config(8)
    wb = benchmark.pedantic(
        lambda: run_workload(
            workload, cfg, prefetch=True,
            options=PrefetchOptions(allow_writeback=True),
        ),
        rounds=1,
        iterations=1,
    )
    base = run_workload(workload, cfg, prefetch=False)
    read_only_pass = run_workload(workload, cfg, prefetch=True)

    rows = [
        ["baseline", base.cycles, base.stats.mix.reads,
         base.stats.mix.writes],
        ["read-only pass", read_only_pass.cycles,
         read_only_pass.stats.mix.reads, read_only_pass.stats.mix.writes],
        ["write-back pass", wb.cycles, wb.stats.mix.reads,
         wb.stats.mix.writes],
    ]
    print()
    print("brighten(16) @8 SPEs, lat=150")
    print(format_table(["variant", "cycles", "READs", "WRITEs"], rows))

    # The read-only pass must refuse the region entirely.
    assert read_only_pass.cycles == base.cycles
    assert read_only_pass.stats.mix.reads == base.stats.mix.reads
    # Write-back removes all scalar global traffic and wins big.
    assert wb.stats.mix.reads == 0
    assert wb.stats.mix.writes == 0
    assert wb.cycles < base.cycles / 3
