"""Section 4.3's latency-1 study — the "cache always hits" bound.

The paper sets *all* memory latencies to one cycle to bound what a
perfect cache would give, and finds: mmul speedup collapses to ~1.01x,
zoom keeps a modest 1.34x (bandwidth, not latency), and **bitcnt slows
down** because the prefetch overhead (34%) outweighs the tiny 5%
memory-stall share.  "This indicates that this prefetching scheme can
almost eliminate the need for caches."
"""

from __future__ import annotations

from conftest import pair_for

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import latency1_config
from repro.sim.stats import Bucket


def test_latency1_study(benchmark):
    build = builders()["mmul"]
    benchmark.pedantic(
        lambda: run_workload(build(), latency1_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    pairs = {
        name: pair_for(name, spes=8, latency="one")
        for name in ("bitcnt", "mmul", "zoom")
    }
    rows = []
    for name, pair in pairs.items():
        rows.append(
            [
                name,
                pair.base.cycles,
                pair.prefetch.cycles,
                f"{pair.speedup:.2f}x",
                f"{100 * pair.prefetch.stats.bucket_fractions()[Bucket.PREFETCH]:.1f}%",
            ]
        )
    print()
    print("Latency-1 study (all memory latencies = 1 cycle)")
    print(
        format_table(
            ["benchmark", "original", "prefetch", "speedup", "PF overhead"],
            rows,
        )
    )

    # mmul: prefetching gives (almost) nothing when memory is free.
    assert 0.8 < pairs["mmul"].speedup < 2.0
    # bitcnt: the benefit vanishes — prefetch overhead eats the gain.
    # (The paper measures a slight slowdown; we land at break-even, the
    # residual difference being our interconnect round-trip cost on the
    # READs that remain.  See EXPERIMENTS.md, experiment L1.)
    assert pairs["bitcnt"].speedup < 1.1
    # Baseline memory stalls are tiny at latency 1 ("only 5% of the time
    # was spent waiting for memory").
    assert (
        pairs["bitcnt"].base.stats.bucket_fractions()[Bucket.MEM_STALL] < 0.30
    )
    # The latency-1 speedups are far below the latency-150 ones: the win
    # comes from hiding memory latency.
    lat150 = pair_for("mmul", spes=8, latency="paper")
    assert lat150.speedup > 3 * pairs["mmul"].speedup
