"""Figure 7 — mmul execution time and scalability (lat=150, 1-8 SPEs).

Shape claims: prefetching speeds mmul up by roughly an order of magnitude
(paper: 11.18x at 8 SPEs), all global accesses are decoupled, and the
prefetch version's scalability is somewhat worse than the original's
("the scalability (in all cases) is a little worse with respect to the
original architecture" — once memory stalls are gone there is less
latency left for extra SPEs to hide).
"""

from __future__ import annotations

from conftest import sweep_for

from repro.bench.report import execution_table, scalability_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config


def test_fig7_mmul_scaling(benchmark):
    build = builders()["mmul"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    scaling = sweep_for("mmul")
    print()
    print(execution_table(scaling))
    print()
    print(scalability_table(scaling))

    # 7a: order-of-magnitude win at 8 SPEs (paper: 11.18x).
    speedup = scaling.speedup_at(8)
    assert speedup > 5.0, f"mmul speedup should be large, got {speedup:.2f}"
    for n, pair in scaling.pairs.items():
        assert pair.prefetch.cycles < pair.base.cycles, f"no win at {n} SPEs"
        assert pair.decoupled_fraction == 1.0, (
            "prefetching decouples all mmul global accesses"
        )
    # 7b: original scales near-linearly (memory latency hiding);
    # prefetch scalability is a little worse.
    base_scal = scaling.scalability(prefetch=False)
    pf_scal = scaling.scalability(prefetch=True)
    assert base_scal[8] > 4.0
    assert pf_scal[8] < base_scal[8] * 1.05
