"""Ablation A7 — strided DMA gather vs whole-object block prefetch.

Sec. 3's transaction argument: "in case where thread accesses array with
a certain stride between elements it could generate too many transactions
(and DMA performs it in one transaction)."  The ``colsum`` workload walks
matrix columns (stride = 4n bytes) and compares:

* the baseline (blocking READs per element);
* whole-matrix block prefetch per worker (forced past the worthwhileness
  rule: the LS copy is mostly unused bytes);
* one strided DMAGETS per column — same decoupling, a fraction of the
  transferred bytes and LS footprint.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config
from repro.workloads import colsum

N = 16


def test_strided_gather(benchmark):
    cfg = paper_config(8)
    gather = benchmark.pedantic(
        lambda: run_workload(
            colsum.build(n=N, mode="gather"), cfg, prefetch=True
        ),
        rounds=1,
        iterations=1,
    )
    base = run_workload(colsum.build(n=N, mode="gather"), cfg, prefetch=False)
    block = run_workload(
        colsum.build(n=N, mode="block"), cfg, prefetch=True,
        options=PrefetchOptions(worthwhile_threshold=0.0),
    )

    rows = [
        ["baseline (READs)", base.cycles, base.stats.mfc.bytes_transferred,
         base.stats.mix.reads],
        ["block prefetch", block.cycles, block.stats.mfc.bytes_transferred,
         block.stats.mix.reads],
        ["strided gather", gather.cycles, gather.stats.mfc.bytes_transferred,
         gather.stats.mix.reads],
    ]
    print()
    print(f"colsum({N}) @8 SPEs, lat=150")
    print(format_table(
        ["variant", "cycles", "DMA bytes", "READs left"], rows
    ))

    # Both prefetch variants decouple everything and beat the baseline.
    assert gather.stats.mix.reads == 0
    assert block.stats.mix.reads == 0
    assert gather.cycles < base.cycles / 2
    # The gather moves exactly the useful bytes: the matrix once.
    assert gather.stats.mfc.bytes_transferred == 4 * N * N
    # Block prefetch replicates the matrix per worker: several times the
    # traffic (and LS footprint) for the same answer.
    assert block.stats.mfc.bytes_transferred >= 4 * gather.stats.mfc.bytes_transferred
