"""Host-performance benchmark: simulated cycles per wall-clock second.

Not a paper experiment — this measures the *simulator*, so performance
regressions in the event engine or the SPU interpreter show up in
``pytest benchmarks/`` history.  The paper's substrate was a compiled
C++ simulator; DESIGN.md's substitution argument rests on this number
staying high enough for the scaled workloads to run in seconds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.runner import run_workload
from repro.sim.config import paper_config
from repro.workloads import bitcount, matmul, zoom


def test_simulated_cycles_per_second(benchmark):
    workload = matmul.build(n=8, threads=8)
    cfg = paper_config(4)

    result = benchmark(
        lambda: run_workload(workload, cfg, prefetch=False, verify=False)
    )
    # Derived throughput metrics for the benchmark table.
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["instructions"] = result.stats.mix.total
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = int(result.cycles / mean)
    # Sanity floor: the event-skipping engine must deliver at least
    # 100k simulated cycles/s on this memory-stall-bound workload (stalls
    # are skipped, so the effective rate is far above naive per-cycle
    # interpretation).
    assert result.cycles / mean > 100_000


def test_event_skip_efficiency(benchmark):
    """Dispatched ticks per simulated cycle — the event-skip win."""
    from repro.cell.machine import Machine

    workload = matmul.build(n=8, threads=8)

    def run():
        m = Machine(paper_config(4))
        m.load(workload.activity)
        res = m.run()
        return m.engine.ticks_dispatched, res.cycles

    ticks, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ticks_per_cycle"] = round(ticks / cycles, 3)
    # A memory-bound run spends most cycles stalled: far fewer ticks than
    # (components x cycles). 4 SPEs = ~15 components.
    assert ticks < 3 * cycles


# -- fast-path throughput gate (docs/PERFORMANCE.md) --------------------------

#: 8-SPE workloads timed fast vs slow.  Sized so each slow run takes a
#: few hundred milliseconds: long enough to time reliably, short enough
#: for CI.
_THROUGHPUT_WORKLOADS = {
    "bitcnt": lambda: bitcount.build(iterations=256, unroll=8),
    "mmul": lambda: matmul.build(n=16, threads=16),
    "zoom": lambda: zoom.build(n=32, z=4),
}

#: Committed reference speedups (regenerate with
#: ``REPRO_BENCH_WRITE_BASELINE=1 pytest benchmarks/test_simulator_throughput.py``).
_BASELINE_PATH = Path(__file__).with_name("BENCH_throughput.baseline.json")


def _cycles_per_second(build, fast: bool, samples: int = 3):
    """min-of-N simulated-cycles/wall-second with the fast path on/off."""
    os.environ["REPRO_SIM_FAST"] = "1" if fast else "0"
    try:
        workload = build()
        cfg = paper_config(8)
        best = None
        for _ in range(samples):
            t0 = time.perf_counter()
            result = run_workload(workload, cfg, prefetch=True, verify=False)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return result.cycles, result.cycles / best
    finally:
        os.environ.pop("REPRO_SIM_FAST", None)


def test_fast_path_throughput_gate():
    """Measure fast vs slow cycles/sec, write ``BENCH_throughput.json``.

    Gates on two things: the mmul 8-SPE speedup the fast paths were built
    for (>= 2x, the ISSUE 6 acceptance bar), and a >20% regression of any
    benchmark's speedup against the committed baseline (wall-clock
    cycles/sec is machine-dependent; the fast/slow *ratio* on the same
    host is not, so the baseline stores ratios).
    """
    report = {}
    for name, build in _THROUGHPUT_WORKLOADS.items():
        cycles, fast_cps = _cycles_per_second(build, fast=True)
        slow_cycles, slow_cps = _cycles_per_second(build, fast=False)
        assert cycles == slow_cycles  # bit-identical by construction
        report[name] = {
            "simulated_cycles": cycles,
            "fast_cycles_per_second": int(fast_cps),
            "slow_cycles_per_second": int(slow_cps),
            "speedup": round(fast_cps / slow_cps, 3),
        }

    out = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_throughput.json"))
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    if os.environ.get("REPRO_BENCH_WRITE_BASELINE"):
        _BASELINE_PATH.write_text(
            json.dumps(
                {name: {"speedup": row["speedup"]} for name, row in report.items()},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    assert report["mmul"]["speedup"] >= 2.0, report["mmul"]

    baseline = json.loads(_BASELINE_PATH.read_text())
    for name, row in report.items():
        floor = 0.8 * baseline[name]["speedup"]
        assert row["speedup"] >= floor, (
            f"{name}: speedup {row['speedup']}x regressed >20% below the "
            f"committed baseline {baseline[name]['speedup']}x"
        )
