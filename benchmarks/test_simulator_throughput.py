"""Host-performance benchmark: simulated cycles per wall-clock second.

Not a paper experiment — this measures the *simulator*, so performance
regressions in the event engine or the SPU interpreter show up in
``pytest benchmarks/`` history.  The paper's substrate was a compiled
C++ simulator; DESIGN.md's substitution argument rests on this number
staying high enough for the scaled workloads to run in seconds.
"""

from __future__ import annotations

from repro.bench.runner import run_workload
from repro.sim.config import paper_config
from repro.workloads import matmul


def test_simulated_cycles_per_second(benchmark):
    workload = matmul.build(n=8, threads=8)
    cfg = paper_config(4)

    result = benchmark(
        lambda: run_workload(workload, cfg, prefetch=False, verify=False)
    )
    # Derived throughput metrics for the benchmark table.
    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["instructions"] = result.stats.mix.total
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = int(result.cycles / mean)
    # Sanity floor: the event-skipping engine must deliver at least
    # 100k simulated cycles/s on this memory-stall-bound workload (stalls
    # are skipped, so the effective rate is far above naive per-cycle
    # interpretation).
    assert result.cycles / mean > 100_000


def test_event_skip_efficiency(benchmark):
    """Dispatched ticks per simulated cycle — the event-skip win."""
    from repro.cell.machine import Machine

    workload = matmul.build(n=8, threads=8)

    def run():
        m = Machine(paper_config(4))
        m.load(workload.activity)
        res = m.run()
        return m.engine.ticks_dispatched, res.cycles

    ticks, cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ticks_per_cycle"] = round(ticks / cycles, 3)
    # A memory-bound run spends most cycles stalled: far fewer ticks than
    # (components x cycles). 4 SPEs = ~15 components.
    assert ticks < 3 * cycles
