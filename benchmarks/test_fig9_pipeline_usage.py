"""Figure 9 — pipeline usage with and without prefetching (8 SPEs).

Shape claims: "the usage is much higher when prefetching is performed
because operations with local store are much faster than operations with
main memory", and the improvement mirrors the memory-stall mass removed
in Figure 5 — near-perfect utilization for mmul/zoom, a smaller gain for
bitcnt.
"""

from __future__ import annotations

from repro.bench.report import pipeline_usage_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config


def test_fig9_pipeline_usage(benchmark, all_pairs):
    build = builders()["mmul"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(pipeline_usage_table(all_pairs))

    for name, pair in all_pairs.items():
        base = pair.base.stats.average_pipeline_usage
        pf = pair.prefetch.stats.average_pipeline_usage
        assert pf > base, f"{name}: prefetching must raise pipeline usage"
    # Memory-bound benchmarks: usage rises dramatically.
    for name in ("mmul", "zoom"):
        pair = all_pairs[name]
        assert pair.prefetch.stats.average_pipeline_usage > 3 * (
            pair.base.stats.average_pipeline_usage
        )
        assert pair.base.stats.average_pipeline_usage < 0.15
