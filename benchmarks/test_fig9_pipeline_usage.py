"""Figure 9 — pipeline usage with and without prefetching (8 SPEs).

Profiler-driven since the observability subsystem landed: the measured
run goes through :func:`repro.obs.profile_workload`, and the figure's
usage numbers are taken from the profiler's hub-derived
:class:`~repro.obs.profile.Profile` — cross-checked against the
stats-pipeline numbers of the cached ``all_pairs`` runs, so the figure
and the profiler must agree to reproduce.

Shape claims: "the usage is much higher when prefetching is performed
because operations with local store are much faster than operations with
main memory", and the improvement mirrors the memory-stall mass removed
in Figure 5 — near-perfect utilization for mmul/zoom, a smaller gain for
bitcnt.
"""

from __future__ import annotations

import pytest

from repro.bench.report import pipeline_usage_table
from repro.bench.scale import builders
from repro.obs import profile_workload
from repro.sim.config import paper_config


def test_fig9_pipeline_usage(benchmark, all_pairs):
    build = builders()["mmul"]
    benchmark.pedantic(
        lambda: profile_workload(build(), paper_config(8), prefetch=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(pipeline_usage_table(all_pairs))

    # Profile every benchmark in both variants; the figure's numbers are
    # the profiler's, validated against the stats pipeline.
    usage = {}
    for name, build in builders().items():
        usage[name] = {}
        for prefetch in (False, True):
            _, profile = profile_workload(
                build(), paper_config(8), prefetch=prefetch
            )
            usage[name][prefetch] = profile.average_pipeline_usage
            pair_run = (
                all_pairs[name].prefetch if prefetch else all_pairs[name].base
            )
            assert profile.average_pipeline_usage == pytest.approx(
                pair_run.stats.average_pipeline_usage, rel=1e-3
            ), f"{name} prefetch={prefetch}: profiler disagrees with stats"

    for name, variants in usage.items():
        assert variants[True] > variants[False], (
            f"{name}: prefetching must raise pipeline usage"
        )
    # Memory-bound benchmarks: usage rises dramatically.
    for name in ("mmul", "zoom"):
        assert usage[name][True] > 3 * usage[name][False]
        assert usage[name][False] < 0.15
