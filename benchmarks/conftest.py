"""Shared fixtures for the benchmark harness.

Simulated runs are deterministic, so pair results are cached at two
levels.  In-process: Figure 5, Figure 9 and Table 5 all consume the same
8-SPE pair runs, and the scaling figures reuse their own sweeps.  On
disk: the shared runs go through :mod:`repro.bench.parallel`, so they
fan out across ``REPRO_BENCH_JOBS`` worker processes and persist in the
:mod:`repro.bench.cache` result cache — a benchmark session repeated
with unchanged code re-simulates nothing it does not measure.  Each
``test_*`` benchmark still measures one uncached simulation via
``benchmark.pedantic`` (a cycle simulator's wall time is itself a
meaningful number) and then asserts the paper's *shape* claims on the
cached results.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import default_cache
from repro.bench.parallel import default_jobs
from repro.bench.runner import PairResult, run_pair, sweep
from repro.bench.scale import builders, current_scale, spe_counts
from repro.sim.config import latency1_config, paper_config

_pair_cache: dict = {}
_sweep_cache: dict = {}
_disk_cache = default_cache()


def pair_for(name: str, spes: int = 8, latency: str = "paper") -> PairResult:
    """Cached with/without-prefetch pair for benchmark ``name``."""
    key = (name, spes, latency, current_scale())
    if key not in _pair_cache:
        build = builders()[name]
        cfg = (
            latency1_config(spes) if latency == "one" else paper_config(spes)
        )
        _pair_cache[key] = run_pair(
            build(), cfg, jobs=default_jobs(), cache=_disk_cache
        )
    return _pair_cache[key]


def sweep_for(name: str):
    """Cached SPE sweep (Figures 6-8) for benchmark ``name``."""
    key = (name, current_scale())
    if key not in _sweep_cache:
        _sweep_cache[key] = sweep(
            builders()[name], spes=spe_counts(),
            jobs=default_jobs(), cache=_disk_cache,
        )
        # Reuse the 8-SPE point for the pair cache too.
        _pair_cache[(name, 8, "paper", current_scale())] = (
            _sweep_cache[key].pairs[8]
        )
    return _sweep_cache[key]


@pytest.fixture(scope="session")
def all_pairs():
    """8-SPE pair runs for all three benchmarks (Figures 5/9, Table 5)."""
    return {name: pair_for(name) for name in ("bitcnt", "mmul", "zoom")}
