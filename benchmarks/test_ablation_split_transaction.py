"""Ablation A1 — block DMA vs split-transaction prefetching.

Sec. 3: completion notification "could be implemented also using
split-transaction network, but in case where thread accesses array with a
certain stride between elements it could generate too many transactions
(and DMA performs it in one transaction)".  The pass's
``split_transactions=True`` mode issues one word-sized transfer per
element; this ablation shows the block-DMA design wins and by how much.
"""

from __future__ import annotations

from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config


def test_split_transactions_lose_to_block_dma(benchmark):
    build = builders()["mmul"]
    workload = build()
    cfg = paper_config(8)
    split = benchmark.pedantic(
        lambda: run_workload(
            workload, cfg, prefetch=True,
            options=PrefetchOptions(split_transactions=True),
        ),
        rounds=1,
        iterations=1,
    )
    block = run_workload(workload, cfg, prefetch=True)
    base = run_workload(workload, cfg, prefetch=False)
    print()
    print(
        f"mmul @8 SPEs: baseline={base.cycles}  block-DMA={block.cycles}  "
        f"split-transactions={split.cycles}"
    )
    # Block DMA must clearly beat per-element transactions.
    assert block.cycles < split.cycles, "one DMA command must beat N transactions"
    # Split transactions flood the MFC: far more commands issued.
    assert split.stats.mfc.commands > 10 * block.stats.mfc.commands
    # Even per-element prefetching should still beat fully blocking READs
    # (transfers are pipelined instead of serialized in the pipeline).
    assert split.cycles < base.cycles * 1.5
