"""Ablation A5 — interconnect bandwidth.

Sec. 4.3's bandwidth argument: "in case of no prefetching the CellDTA is
not using all available bandwidth, since each READ instruction fetches
only 4 bytes of data (and the network can support transfers of 32 bytes
in one cycle).  On the other hand, when prefetching is used, DMA unit can
fully utilize the bandwidth."

Sweeping the bus count shows exactly that asymmetry: the DMA version
responds to bandwidth, the scalar-READ version is latency-bound and
barely notices.
"""

from __future__ import annotations

import dataclasses

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config


def _with_buses(spes: int, buses: int):
    cfg = paper_config(spes)
    return cfg.replace(bus=dataclasses.replace(cfg.bus, num_buses=buses))


def test_bus_bandwidth_sweep(benchmark):
    workload = builders()["zoom"]()

    def run(buses: int, prefetch: bool):
        return run_workload(workload, _with_buses(8, buses), prefetch=prefetch)

    pf1 = benchmark.pedantic(lambda: run(1, True), rounds=1, iterations=1)
    pf4 = run(4, True)
    base1 = run(1, False)
    base4 = run(4, False)

    rows = [
        ["original", base1.cycles, base4.cycles,
         f"{base1.cycles / base4.cycles:.2f}x"],
        ["prefetch", pf1.cycles, pf4.cycles,
         f"{pf1.cycles / pf4.cycles:.2f}x"],
    ]
    print()
    print(format_table(["variant", "1 bus", "4 buses", "gain"], rows))

    base_gain = base1.cycles / base4.cycles
    pf_gain = pf1.cycles / pf4.cycles
    # The scalar-READ baseline is latency-bound: quadrupling bandwidth
    # changes little.
    assert base_gain < 1.5
    # Prefetching actually consumes bandwidth, so it must benefit at
    # least as much as the baseline does.
    assert pf_gain >= base_gain
    # DMA moves the same bytes in far fewer, larger transfers.
    assert pf4.stats.bus.transfers < base4.stats.bus.transfers
