"""Ablation A2 — LSE SP/XP dual pipelines.

Sec. 4.3: "In an implementation where LSE has two available pipelines
(SP and XP), it can overlap this [DMA programming] with the execution of
other threads, but in the CellDTA this is not yet available."  With
``dual_pipelines=True`` the LSE runs PF blocks on its XP pipeline: the
SPU-side Prefetching bucket collapses and execution time drops whenever
prefetch overhead was visible.
"""

from __future__ import annotations

import dataclasses

from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import paper_config
from repro.sim.stats import Bucket


def _dual_config(spes: int = 8):
    cfg = paper_config(spes)
    return cfg.replace(lse=dataclasses.replace(cfg.lse, dual_pipelines=True))


def test_xp_pipeline_removes_prefetch_overhead(benchmark):
    build = builders()["mmul"]
    workload = build()
    dual = benchmark.pedantic(
        lambda: run_workload(workload, _dual_config(), prefetch=True),
        rounds=1,
        iterations=1,
    )
    single = run_workload(workload, paper_config(8), prefetch=True)
    print()
    print(
        f"mmul @8 SPEs with prefetch: SP-only={single.cycles} cycles "
        f"(PF overhead {single.stats.bucket_fractions()[Bucket.PREFETCH]:.1%}), "
        f"SP+XP={dual.cycles} cycles "
        f"(PF overhead {dual.stats.bucket_fractions()[Bucket.PREFETCH]:.1%})"
    )
    # The SPU never executes PF code: overhead bucket vanishes.
    assert dual.stats.bucket_fractions()[Bucket.PREFETCH] < 0.01
    assert single.stats.bucket_fractions()[Bucket.PREFETCH] > 0.01
    # And the run is no slower (usually faster).
    assert dual.cycles <= single.cycles * 1.02


def test_xp_pipeline_latency1_rescues_bitcnt(benchmark):
    """At latency 1 the paper's bitcnt *lost* from prefetching purely due
    to overhead; moving PF to the XP pipeline recovers (most of) it."""
    from repro.sim.config import latency1_config

    build = builders()["bitcnt"]
    workload = build()
    cfg1 = latency1_config(8)
    dual1 = cfg1.replace(lse=dataclasses.replace(cfg1.lse, dual_pipelines=True))
    dual = benchmark.pedantic(
        lambda: run_workload(workload, dual1, prefetch=True),
        rounds=1,
        iterations=1,
    )
    single = run_workload(workload, cfg1, prefetch=True)
    base = run_workload(workload, cfg1, prefetch=False)
    print()
    print(
        f"bitcnt @lat=1: base={base.cycles}  PF(SP)={single.cycles}  "
        f"PF(SP+XP)={dual.cycles}"
    )
    assert dual.cycles < single.cycles
