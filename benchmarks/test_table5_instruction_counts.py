"""Table 5 — dynamic instruction counts (total, LOAD, STORE, READ, WRITE).

Absolute counts differ from the paper's (scaled-down inputs, scalar ISA),
but the *profile* per benchmark must match:

* bitcnt — frame traffic (LOAD/STORE) dominates memory instructions;
  READs are a small share of total instructions; a few WRITEs.
* mmul   — READ = 2*n**3 exactly, WRITE = n**2 exactly, frame traffic
  negligible ("the number of accesses to frame memory is negligible").
* zoom   — READ = 2 * WRITE (two source pixels per output pixel), frame
  traffic negligible.
"""

from __future__ import annotations

from conftest import pair_for

from repro.bench.report import table5
from repro.bench.runner import run_workload
from repro.bench.scale import SCALES, builders, current_scale
from repro.sim.config import paper_config


def test_table5_counts(benchmark, all_pairs):
    # Measure one representative baseline run.
    build = builders()["mmul"]
    benchmark.pedantic(
        lambda: run_workload(build(), paper_config(8), prefetch=False),
        rounds=1,
        iterations=1,
    )

    runs = {name: pair.base for name, pair in all_pairs.items()}
    print()
    print(table5(runs))

    params = SCALES[current_scale()]
    n = params["mmul"]["n"]
    mmul = runs["mmul"].stats.mix
    assert mmul.reads == 2 * n**3
    assert mmul.writes == n**2
    assert mmul.loads + mmul.stores < 0.01 * mmul.total

    zn, zz = params["zoom"]["n"], params["zoom"]["z"]
    zoom = runs["zoom"].stats.mix
    assert zoom.writes == (zn * zz) ** 2
    assert zoom.reads == 2 * zoom.writes
    assert zoom.loads + zoom.stores < 0.01 * zoom.total

    bit = runs["bitcnt"].stats.mix
    assert bit.loads + bit.stores > bit.reads, (
        "bitcnt exchanges data mostly through frame memory"
    )
    assert bit.reads < 0.10 * bit.total
    assert bit.writes == params["bitcnt"]["iterations"]


def test_table5_prefetch_rewrites_reads(all_pairs, benchmark):
    """After the pass, mmul/zoom READs are gone; bitcnt keeps ~1/3."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all_pairs["mmul"].prefetch.stats.mix.reads == 0
    assert all_pairs["zoom"].prefetch.stats.mix.reads == 0
    frac = all_pairs["bitcnt"].decoupled_fraction
    assert 0.5 < frac < 0.8, (
        f"paper decouples 62% of bitcnt READs; measured {frac:.0%}"
    )
