"""Tables 2, 3 and 4 — the simulated machine parameters.

These are configuration tables, not measurements: the benchmark asserts
that the default machine the whole harness runs on is exactly the one the
paper describes, and prints the tables for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.isa.opcodes import Op, spec_of
from repro.sim.config import paper_config


def test_table2_memory_parameters(benchmark):
    cfg = benchmark.pedantic(paper_config, rounds=1, iterations=1)
    assert cfg.main_memory.size == 512 * 1024 * 1024
    assert cfg.main_memory.latency == 150
    assert cfg.main_memory.ports == 1
    assert cfg.local_store.size == 156 * 1024
    assert cfg.local_store.latency == 6
    assert cfg.local_store.ports == 3
    print()
    print("Table 2 — memory subsystem")
    print(
        format_table(
            ["Memory", "Parameter", "Value"],
            [
                ["Main memory", "Size", "512 MB"],
                ["", "Latency", f"{cfg.main_memory.latency} cycles"],
                ["", "Ports", cfg.main_memory.ports],
                ["Local Store", "Size", "156 kB"],
                ["", "Latency", f"{cfg.local_store.latency} cycles"],
                ["", "Ports", cfg.local_store.ports],
            ],
        )
    )


def test_table3_dma_command_format(benchmark):
    spec = benchmark.pedantic(spec_of, args=(Op.DMAGET,), rounds=1, iterations=1)
    # Table 3: LS address, MEM address, data size, tag ID.
    fields = [f for f in spec.signature.split(",") if f]
    assert fields == ["ra", "rb", "imm", "tag"], (
        "DMAGET must take LS address, MEM address, size, tag"
    )
    print()
    print("Table 3 — DMA command parameters")
    print(
        format_table(
            ["Name", "Carried by"],
            [
                ["LS address", "register operand ra"],
                ["MEM address", "register operand rb"],
                ["Data size", "immediate"],
                ["Tag ID", "tag field"],
            ],
        )
    )


def test_table4_communication_parameters(benchmark):
    cfg = benchmark.pedantic(paper_config, rounds=1, iterations=1)
    assert cfg.bus.num_buses == 4
    assert cfg.bus.bytes_per_cycle == 8
    assert cfg.bus.total_bandwidth == 32  # "transfers of 32 bytes in one cycle"
    assert cfg.mfc.command_queue_size == 16
    assert cfg.mfc.command_latency == 30
    print()
    print("Table 4 — communication subsystem")
    print(
        format_table(
            ["Unit", "Parameter", "Value"],
            [
                ["Bus", "Number of buses", cfg.bus.num_buses],
                ["", "BW of each bus", f"{cfg.bus.bytes_per_cycle} bytes/cycle"],
                ["MFC", "Command queue size", cfg.mfc.command_queue_size],
                ["", "Command latency", f"{cfg.mfc.command_latency} cycles"],
            ],
        )
    )
