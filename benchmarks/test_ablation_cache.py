"""Ablation A8 — data cache vs DMA prefetching.

The paper's conclusion: "considering that prefetching introduces a little
overhead, this indicates that this prefetching scheme can almost
eliminate the need for caches."  The authors could only bound a perfect
cache (the latency-1 study) because their cache module was "still under
development"; this reproduction has one, so the comparison runs directly:

* **baseline** — CellDTA, no cache, no prefetch (memory-stall bound);
* **cache** — an 8 kB, 2-way, 64 B-line write-through cache per SPE;
* **prefetch** — the paper's mechanism, no cache hardware at all.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.runner import run_workload
from repro.bench.scale import builders
from repro.sim.config import cached_config, paper_config


def test_cache_vs_prefetch(benchmark):
    rows = []
    results = {}
    cfg = paper_config(8)
    ccfg = cached_config(8)
    wl_mmul = builders()["mmul"]()
    cached_run = benchmark.pedantic(
        lambda: run_workload(wl_mmul, ccfg, prefetch=False),
        rounds=1,
        iterations=1,
    )
    for name, build in builders().items():
        wl = build()
        base = run_workload(wl, cfg, prefetch=False)
        cached = (
            cached_run if name == "mmul"
            else run_workload(wl, ccfg, prefetch=False)
        )
        prefetch = run_workload(wl, cfg, prefetch=True)
        results[name] = (base, cached, prefetch)
        rows.append(
            [
                name,
                base.cycles,
                cached.cycles,
                prefetch.cycles,
                f"{cached.cycles / prefetch.cycles:.2f}x",
            ]
        )
    print()
    print("cache vs prefetch @8 SPEs, lat=150 (cache: 8kB/2-way/64B lines)")
    print(
        format_table(
            ["benchmark", "baseline", "cache", "prefetch",
             "cache/prefetch"],
            rows,
        )
    )

    for name, (base, cached, prefetch) in results.items():
        # Both mechanisms demolish the baseline's memory stalls.
        assert cached.cycles < base.cycles
        assert prefetch.cycles < base.cycles
    # The paper's claim, directly: for the regular (streaming) benchmarks
    # prefetching lands in the same ballpark as real cache hardware.
    for name in ("mmul", "zoom"):
        base, cached, prefetch = results[name]
        assert prefetch.cycles < 1.6 * cached.cycles, (
            f"{name}: prefetching should nearly match a cache"
        )
    # bitcnt's irregular table lookups are where a cache still helps more
    # than the (worthwhileness-limited) prefetcher — an honest caveat.
    base, cached, prefetch = results["bitcnt"]
    assert cached.cycles <= prefetch.cycles
