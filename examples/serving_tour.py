#!/usr/bin/env python3
"""Simulation as a service: the gateway, end to end, in one process.

Boots a `repro.serve` gateway on a loopback port, then walks the whole
client surface:

1. submit a sweep and stream its NDJSON progress events;
2. submit the *same* sweep from four concurrent clients and watch the
   requests coalesce onto one job (one simulation, four readers);
3. check the result is bit-identical to a direct in-process
   `runner.sweep`;
4. overload a tiny queue and read the 503 + Retry-After answer;
5. scrape /metricsz, then drain the server losslessly.

Run:  python examples/serving_tour.py        (~30 s at test scale)
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.bench.export import scaling_to_dict
from repro.bench.runner import sweep
from repro.bench.scale import builders
from repro.compiler.passes import PrefetchOptions
from repro.serve import ServeApp, ServeClient, ServeError
from repro.sim.config import paper_config

SPES = [1, 2]


def main() -> None:
    app = ServeApp(port=0, cache=None, workers=2)
    thread = threading.Thread(target=app.run, daemon=True)
    thread.start()
    app.ready.wait(15)
    port = app.bound_port
    print(f"gateway up on 127.0.0.1:{port}\n")

    print("1. One sweep, events streamed as they happen:")
    client = ServeClient(port=port, client="tour")
    job = client.submit("sweep", "bitcnt", scale="test", spes=SPES)
    for event in client.events(job["id"]):
        detail = event.get("message", "")
        print(f"   seq {event['seq']:>2}  {event['event']:<9} {detail}")
    payload = client.result(job["id"])
    print(f"   -> schema_version={payload['schema_version']}, "
          f"{len(payload['points'])} SPE points\n")

    print("2. Four concurrent clients ask for the same sweep:")

    def ask(name: str) -> tuple[str, dict]:
        c = ServeClient(port=port, client=name)
        j = c.submit("sweep", "bitcnt", scale="test", spes=SPES)
        c.wait(j["id"], timeout=300)
        return j["id"], c.result(j["id"])

    with ThreadPoolExecutor(4) as pool:
        outcomes = list(pool.map(ask, [f"client-{i}" for i in range(4)]))
    ids = {job_id for job_id, _ in outcomes}
    blobs = {json.dumps(p, sort_keys=True) for _, p in outcomes}
    print(f"   {len(outcomes)} clients -> {len(ids)} job(s), "
          f"{len(blobs)} distinct payload(s)\n")

    print("3. The served payload equals a direct in-process sweep:")
    direct = scaling_to_dict(sweep(
        builders("test")["bitcnt"], spes=tuple(SPES),
        config_for=paper_config,
        options=PrefetchOptions(worthwhile_threshold=0.5),
    ))
    direct["schema_version"] = payload["schema_version"]
    direct["kind"] = "sweep"
    print(f"   bit-identical: {outcomes[0][1] == direct}\n")

    print("4. Honest backpressure on a full queue:")
    tiny = ServeApp(port=0, cache=None, workers=1, max_depth=1)
    tiny_thread = threading.Thread(target=tiny.run, daemon=True)
    tiny_thread.start()
    tiny.ready.wait(15)
    squeezed = ServeClient(port=tiny.bound_port, client="flood")
    for spes in (8, 4, 2, 1):
        try:
            squeezed.submit("run", "mmul", scale="test", spes=spes)
            print(f"   spes={spes}: accepted")
        except ServeError as exc:
            print(f"   spes={spes}: {exc.status} — retry after "
                  f"{exc.retry_after}s")
    tiny.request_drain()
    tiny_thread.join(120)
    print()

    print("5. Metrics, then a lossless drain:")
    for line in client.metrics().splitlines():
        if line.startswith("repro_serve_jobs"):
            print(f"   {line}")
    app.request_drain()
    thread.join(120)
    print("   gateway drained and gone")


if __name__ == "__main__":
    main()
