#!/usr/bin/env python3
"""Debugging a DTA program: golden model, traces, scheduler snapshots.

Three tools turn "my activity is slow/wrong/stuck" into a diagnosis:

1. the **functional interpreter** (`repro.isa.interpreter`) separates
   *wrong program* from *wrong timing model* in milliseconds;
2. the **tracer** (`repro.sim.trace`) shows each thread's lifecycle —
   when it was created, became ready, yielded for DMA and resumed;
3. **scheduler snapshots** (`repro.core.scheduler`) expose frame
   occupancy and ready queues, the first thing to look at when a fork
   storm wedges.

Run:  python examples/debugging_tour.py
"""

from repro import Machine, prefetch_transform, run_functional
from repro.core.scheduler import SchedulerSnapshot
from repro.sim.trace import Tracer
from repro.testing import small_config
from repro.workloads import matmul


def main() -> None:
    workload = matmul.build(n=8, threads=4)
    activity = prefetch_transform(workload.activity)

    print("1. Functional check (no timing): does the program compute C?")
    golden = run_functional(activity)
    ok = golden.read_global("C") == workload.oracle["C"]
    print(f"   golden model: {golden.threads_run} threads, "
          f"{golden.instructions} instructions, result "
          f"{'matches' if ok else 'DIVERGES FROM'} the oracle")
    print()

    print("2. Traced simulation: one worker's life, cycle by cycle")
    machine = Machine(small_config(num_spes=2).with_latency(150))
    tracer = Tracer(kinds={
        "thread-created", "thread-ready", "dispatch", "yield-dma",
        "dma-command", "dma-tag-done", "thread-done",
    })
    machine.attach_tracer(tracer)
    machine.load(activity)
    machine.run()
    workload.verify(machine)

    # Pick the first thread that yielded for DMA and print its story.
    yielders = tracer.of_kind("yield-dma")
    tid = yielders[0].fields["tid"]
    print(f"   thread {tid}:")
    for event in tracer.of_thread(tid):
        print(f"     {event}")
    print()

    print("3. Scheduler snapshot after completion (everything drained):")
    snap = SchedulerSnapshot.capture(machine)
    print("   " + snap.format().replace("\n", "\n   "))
    problems = snap.check_invariants()
    print(f"   invariants: {'all hold' if not problems else problems}")


if __name__ == "__main__":
    main()
