#!/usr/bin/env python3
"""Writing your own DTA program: a parallel dot product, end to end.

Shows the full authoring workflow a downstream user follows:

1. write thread templates with the :class:`~repro.isa.ThreadBuilder`
   assembler (PL / EX / PS code blocks, frame slots, symbolic registers);
2. annotate global READs with :class:`~repro.isa.GlobalAccess` region
   descriptors so the prefetch pass can reason about them;
3. bundle templates + global data + root spawns into a
   :class:`~repro.TLPActivity`;
4. run baseline and prefetched variants and compare.

The program: ``dot = sum(x[i] * y[i])`` with the index range split over
worker threads; each worker post-stores its partial sum into a reducer
thread's frame (dataflow synchronization via the SC — no locks anywhere).

Run:  python examples/custom_workload.py
"""

from repro import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
    ThreadBuilder,
    paper_config,
    prefetch_transform,
    run_activity,
)
from repro.isa import BlockKind, GlobalAccess, LinExpr
from repro.workloads.common import lcg_words, split_range

VECTOR_WORDS = 256
WORKERS = 8


def build_worker(chunk_words: int) -> ThreadBuilder:
    b = ThreadBuilder("dot_worker")
    x_slot = b.pointer_slot("x_ptr", obj="x")
    y_slot = b.pointer_slot("y_ptr", obj="y")
    start_slot = b.slot("start")          # first element index of my chunk
    reducer_slot = b.slot("reducer")      # frame handle of the reducer
    my_slot = b.slot("my_slot")           # which reducer slot I fill

    # Each worker touches x[start .. start+chunk] and the same of y:
    # a parameter-dependent region the compiler can DMA as one block.
    x_access = GlobalAccess(
        obj="x", base_slot=x_slot,
        region_start=LinExpr(param_slot=start_slot, scale=4),
        region_bytes=4 * chunk_words,
        expected_uses=chunk_words,
    )
    y_access = GlobalAccess(
        obj="y", base_slot=y_slot,
        region_start=LinExpr(param_slot=start_slot, scale=4),
        region_bytes=4 * chunk_words,
        expected_uses=chunk_words,
    )

    with b.block(BlockKind.PL):           # frame -> registers
        b.load("rx", x_slot)
        b.load("ry", y_slot)
        b.load("start", start_slot)
        b.load("rred", reducer_slot)
        b.load("slot", my_slot)

    with b.block(BlockKind.EX):           # registers only (+ global READs)
        b.muli("off", "start", 4)
        b.add("px", "rx", "off")
        b.add("py", "ry", "off")
        b.li("acc", 0)
        with b.for_range("i", 0, chunk_words):
            b.read("vx", "px", 0, access=x_access)
            b.read("vy", "py", 0, access=y_access)
            b.mul("t", "vx", "vy")
            b.add("acc", "acc", "t")
            b.addi("px", "px", 4)
            b.addi("py", "py", 4)

    with b.block(BlockKind.PS):           # results -> other frames
        # STORE decrements the reducer's SC; when all partials arrive the
        # reducer becomes ready. NOTE: slot must be an immediate in this
        # ISA, so each worker template instance uses a fixed slot id via
        # self-modifying spawn parameters -- here we emit one store per
        # possible slot, guarded by the slot id.
        for k in range(WORKERS):
            b.seqi("is_k", "slot", k)
            b.beqz("is_k", f"skip{k}")
            b.store("rred", k + 1, "acc")
            b.label(f"skip{k}")
        b.stop()
    return b


def build_reducer() -> ThreadBuilder:
    b = ThreadBuilder("dot_reduce")
    out_slot = b.slot("out")
    partial_slots = [b.slot(f"p{k}") for k in range(WORKERS)]
    with b.block(BlockKind.PL):
        b.load("rout", out_slot)
        for k in range(WORKERS):
            b.load(f"p{k}", partial_slots[k])
    with b.block(BlockKind.EX):
        b.mov("acc", "p0")
        for k in range(1, WORKERS):
            b.add("acc", "acc", f"p{k}")
        b.write("rout", 0, "acc")
        b.stop()
    return b


def main() -> None:
    x = lcg_words(VECTOR_WORDS, seed=1, hi=100)
    y = lcg_words(VECTOR_WORDS, seed=2, hi=100)
    expected = sum(a * b for a, b in zip(x, y))
    chunk = VECTOR_WORDS // WORKERS

    worker = build_worker(chunk)
    reducer = build_reducer()

    spawns = [
        # Reducer first: SC = out pointer + one partial per worker.
        SpawnSpec(template="dot_reduce", stores={0: ObjRef("out")},
                  extra_sc=WORKERS),
    ]
    for w, (start, _end) in enumerate(split_range(VECTOR_WORDS, WORKERS)):
        spawns.append(
            SpawnSpec(
                template="dot_worker",
                stores={
                    worker.slot("x_ptr"): ObjRef("x"),
                    worker.slot("y_ptr"): ObjRef("y"),
                    worker.slot("start"): start,
                    worker.slot("reducer"): SpawnRef(0),
                    worker.slot("my_slot"): w,
                },
            )
        )

    activity = TLPActivity(
        name="dot-product",
        templates=[worker.build(), reducer.build()],
        globals_=[
            GlobalObject("x", tuple(x)),
            GlobalObject("y", tuple(y)),
            GlobalObject.zeros("out", 1),
        ],
        spawns=spawns,
    )

    config = paper_config(num_spes=4)
    base = run_activity(activity, config)
    fast = run_activity(prefetch_transform(activity), config)

    machine_result = None
    for label, run in (("baseline", base), ("prefetch", fast)):
        print(f"{label:9s}: {run.cycles:7d} cycles, "
              f"{run.stats.mix.reads} READs, "
              f"{run.stats.mix.loads} LOADs")
    # Re-run to read the result out of memory (run_activity is one-shot).
    from repro import Machine

    m = Machine(config)
    m.load(prefetch_transform(activity))
    m.run()
    got = m.read_global("out")[0]
    print(f"dot product = {got} (expected {expected}) "
          f"{'OK' if got == expected else 'MISMATCH'}")
    print(f"speedup: {base.cycles / fast.cycles:.2f}x")
    assert got == expected


if __name__ == "__main__":
    main()
