#!/usr/bin/env python3
"""Scaling study: regenerate the paper's Figures 6-9 series at one go.

Sweeps 1..8 SPEs for all three benchmarks, with and without prefetching,
and prints the execution-time, scalability and pipeline-usage tables the
paper plots — plus the latency-1 "perfect cache" bound of Section 4.3.

Run:  python examples/scaling_study.py            (default scale)
      REPRO_BENCH_SCALE=test python examples/scaling_study.py   (fast)
"""

from repro.bench import (
    breakdown_table,
    builders,
    execution_table,
    pipeline_usage_table,
    run_pair,
    scalability_table,
    sweep,
)
from repro.sim.config import latency1_config, paper_config


def main() -> None:
    pairs_at_8 = {}
    for name, build in builders().items():
        scaling = sweep(build, spes=(1, 2, 4, 8))
        pairs_at_8[name] = scaling.pairs[8]
        print(execution_table(scaling))
        print()
        print(scalability_table(scaling))
        print()

    print(breakdown_table(pairs_at_8, prefetch=False))
    print()
    print(breakdown_table(pairs_at_8, prefetch=True))
    print()
    print(pipeline_usage_table(pairs_at_8))
    print()

    print("Latency-1 study (Sec. 4.3: 'the best situation when cache")
    print("accesses would always hit'):")
    for name, build in builders().items():
        pair = run_pair(build(), latency1_config(8))
        lat150 = pairs_at_8[name]
        print(
            f"  {name:7s}: speedup {pair.speedup:5.2f}x at latency 1 "
            f"(vs {lat150.speedup:5.2f}x at latency 150)"
        )


if __name__ == "__main__":
    main()
