#!/usr/bin/env python3
"""Quickstart: the paper's headline experiment in thirty lines.

Builds the mmul benchmark, runs it on an 8-SPE CellDTA machine with the
paper's memory parameters (150-cycle main memory), then applies the
DMA-prefetch compiler pass and runs again — reproducing the central
claim: prefetching turns a memory-stall-bound execution into a
compute-bound one, roughly an order of magnitude faster.

Run:  python examples/quickstart.py
"""

from repro import paper_config, prefetch_transform, run_activity
from repro.sim.stats import Bucket
from repro.workloads import matmul


def main() -> None:
    workload = matmul.build(n=16, threads=16)
    config = paper_config(num_spes=8)

    print(f"machine: {config.num_spes} SPEs, "
          f"memory latency {config.main_memory.latency} cycles")
    print(f"workload: {workload.name}")
    print()

    # Original DTA: global READs block the pipeline.
    base = run_activity(workload.activity, config)

    # This paper: the compiler adds PF code blocks that program the DMA
    # unit; READs become local-store LOADs; threads wait for DMA off the
    # pipeline.
    prefetched = prefetch_transform(workload.activity)
    fast = run_activity(prefetched, config)

    for label, run in (("original DTA", base), ("with prefetching", fast)):
        frac = run.stats.bucket_fractions()
        print(f"{label:18s}: {run.cycles:8d} cycles   "
              f"working {frac[Bucket.WORKING]:5.1%}   "
              f"memory stalls {frac[Bucket.MEM_STALL]:5.1%}   "
              f"prefetch overhead {frac[Bucket.PREFETCH]:5.1%}")
    print()
    print(f"speedup: {base.cycles / fast.cycles:.2f}x "
          f"(paper, mmul(32) on 8 SPEs: 11.18x)")
    print(f"READs left in the program: {base.stats.mix.reads} -> "
          f"{fast.stats.mix.reads}")


if __name__ == "__main__":
    main()
