#!/usr/bin/env python3
"""Beyond the paper: the future-work extensions, demonstrated.

The paper closes with "we are planning ... to experiment with some other
advanced mechanism".  This tour runs the four mechanisms this
reproduction adds on top of the paper's initial implementation:

1. **Write-back prefetching** (DMAPUT) — read-modify-write regions are
   DMA'd in, updated at LS speed and DMA'd back in the PS block.
2. **Strided gather** (DMAGETS) — a matrix column is fetched as one DMA
   command instead of n transactions or an n x larger block.
3. **LSE SP/XP dual pipelines** — the scheduler element runs PF blocks,
   removing the SPU-side prefetch overhead entirely.
4. **Virtual frame pointers** — fork storms survive tiny frame tables
   that deadlock a physical-only machine.

Run:  python examples/extensions_tour.py
"""

import dataclasses

from repro import PrefetchOptions, paper_config, prefetch_transform, run_activity
from repro.sim.engine import SimulationDeadlock
from repro.sim.stats import Bucket
from repro.workloads import bitcount, colsum, inplace


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    cfg = paper_config(num_spes=8)

    section("1. Write-back prefetching: in-place image brighten")
    wl = inplace.build(n=16, threads=16)
    base = run_activity(wl.activity, cfg)
    read_only = run_activity(prefetch_transform(wl.activity), cfg)
    wb = run_activity(
        prefetch_transform(wl.activity, PrefetchOptions(allow_writeback=True)),
        cfg,
    )
    print(f"  baseline             : {base.cycles:6d} cycles "
          f"({base.stats.mix.reads} READs, {base.stats.mix.writes} WRITEs)")
    print(f"  read-only pass       : {read_only.cycles:6d} cycles "
          f"(refuses the written region - unchanged)")
    print(f"  write-back (DMAPUT)  : {wb.cycles:6d} cycles "
          f"({wb.stats.mix.reads} READs, {wb.stats.mix.writes} WRITEs)"
          f"  -> {base.cycles / wb.cycles:.1f}x")

    section("2. Strided gather: column sums of a row-major matrix")
    gather_wl = colsum.build(n=16, mode="gather")
    g_base = run_activity(gather_wl.activity, cfg)
    g_fast = run_activity(prefetch_transform(gather_wl.activity), cfg)
    block_wl = colsum.build(n=16, mode="block")
    g_block = run_activity(
        prefetch_transform(
            block_wl.activity, PrefetchOptions(worthwhile_threshold=0.0)
        ),
        cfg,
    )
    print(f"  baseline READ walk   : {g_base.cycles:6d} cycles, "
          f"{g_base.stats.mfc.bytes_transferred:6d} B DMA")
    print(f"  block prefetch       : {g_block.cycles:6d} cycles, "
          f"{g_block.stats.mfc.bytes_transferred:6d} B DMA "
          f"(whole matrix per worker)")
    print(f"  strided gather       : {g_fast.cycles:6d} cycles, "
          f"{g_fast.stats.mfc.bytes_transferred:6d} B DMA "
          f"(exactly the needed words)")

    section("3. LSE SP/XP dual pipelines: prefetch overhead off the SPU")
    from repro.workloads import matmul

    mm = matmul.build(n=16, threads=16)
    pf_act = prefetch_transform(mm.activity)
    sp_only = run_activity(pf_act, cfg)
    dual_cfg = cfg.replace(
        lse=dataclasses.replace(cfg.lse, dual_pipelines=True)
    )
    sp_xp = run_activity(pf_act, dual_cfg)
    print(f"  SP only (CellDTA)    : {sp_only.cycles:6d} cycles, "
          f"PF overhead "
          f"{sp_only.stats.bucket_fractions()[Bucket.PREFETCH]:.1%}")
    print(f"  SP + XP (DTA-C)      : {sp_xp.cycles:6d} cycles, "
          f"PF overhead "
          f"{sp_xp.stats.bucket_fractions()[Bucket.PREFETCH]:.1%}")

    section("4. Virtual frame pointers: surviving the bitcnt fork storm")
    storm = bitcount.build(iterations=24)
    tiny = cfg.replace(lse=dataclasses.replace(cfg.lse, num_frames=3))
    try:
        run_activity(storm.activity, tiny)
        print("  physical-only 3-frame table: completed (unexpected!)")
    except SimulationDeadlock:
        print("  physical-only 3-frame table: DEADLOCK "
              "(frames held by blocked forkers)")
    virtual = tiny.replace(
        lse=dataclasses.replace(tiny.lse, virtual_frame_pointers=True)
    )
    ok = run_activity(storm.activity, virtual)
    print(f"  with virtual frames        : {ok.cycles} cycles, completed")


if __name__ == "__main__":
    main()
