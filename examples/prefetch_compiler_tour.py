#!/usr/bin/env python3
"""A tour of the prefetch compiler pass (the paper's Section 3).

Walks through what the pass actually does to a thread, printing the
before/after disassembly and the analysis it is based on:

* region grouping and the worthwhileness rule (why bitcnt's 256-entry
  byte table is *not* prefetched while its 16-entry nibble table is);
* the synthesized PF code block (LSALLOC -> address math -> DMAGET ->
  translated-pointer STOREF), ordered by CDFG priority;
* the PL pointer redirection and the READ -> LLOAD rewrite;
* the split-transaction alternative the paper dismisses.

Run:  python examples/prefetch_compiler_tour.py
"""

from repro.compiler import (
    PrefetchOptions,
    analyze_program,
    select_regions,
    transform_program,
    undefined_uses,
)
from repro.isa import BlockKind
from repro.workloads import bitcount, matmul


def show_analysis(template, threshold=0.5) -> None:
    analysis = analyze_program(template)
    chosen = {id(r) for r in select_regions(analysis, threshold)}
    print(f"  regions of {template.name!r}:")
    if not analysis.regions:
        print("    (none — template has no annotated global READs)")
    for region in analysis.regions:
        verdict = "PREFETCH" if id(region) in chosen else "leave as READ"
        print(
            f"    {region.obj:8s} {region.size_bytes:5d} B, "
            f"{len(region.read_indices)} sites, "
            f"~{region.expected_uses} uses/run, "
            f"utilization {region.utilization:5.2f} -> {verdict}"
        )


def main() -> None:
    print("=" * 72)
    print("1. mmul worker: both input regions are worth prefetching")
    print("=" * 72)
    wl = matmul.build(n=8, threads=4)
    worker = wl.activity.template("mmul_worker")
    show_analysis(worker)
    print()
    out = transform_program(worker)
    print("generated PF code block:")
    start, _ = out.block_ranges[BlockKind.PF]
    for i, instr in enumerate(out.block(BlockKind.PF)):
        print(f"  {start + i:3d}  {instr}")
    print()
    print("PL block after pointer redirection:")
    for instr in out.block(BlockKind.PL):
        print(f"       {instr}")
    print()
    n_reads = sum(1 for i in worker.flat if i.op.value == "READ")
    n_lloads = sum(1 for i in out.flat if i.op.value == "LLOAD")
    print(f"READ sites rewritten to LLOAD: {n_reads} -> {n_lloads}")
    print()

    print("=" * 72)
    print("2. bitcnt kernels: the worthwhileness rule in action")
    print("=" * 72)
    wl2 = bitcount.build(iterations=8, unroll=4)
    for name in ("k_btbl", "k_ntbl"):
        show_analysis(wl2.activity.template(name))
    print()
    print("  (the paper: 'it is faster to leave one memory access inside")
    print("   the thread rather than prefetch all elements of the array")
    print("   when only one will be used')")
    print()

    print("=" * 72)
    print("3. The registers-die-at-the-yield discipline")
    print("=" * 72)
    report = undefined_uses(out)
    print(f"  read-before-write lint of the transformed worker: "
          f"{ {k.value: sorted(v) for k, v in report.items()} }")
    print("  (PF entries are expected: PF starts from a cold register file)")
    print()

    print("=" * 72)
    print("4. Split transactions (ablation A1): one transfer per element")
    print("=" * 72)
    split = transform_program(
        worker, PrefetchOptions(split_transactions=True)
    )
    n_block = sum(1 for i in out.block(BlockKind.PF) if i.op.value == "DMAGET")
    n_split = sum(
        1 for i in split.block(BlockKind.PF) if i.op.value == "DMAGET"
    )
    print(f"  DMA commands per thread: block mode {n_block}, "
          f"split mode {n_split}")
    print("  ('it could generate too many transactions (and DMA performs")
    print("    it in one transaction)')")


if __name__ == "__main__":
    main()
