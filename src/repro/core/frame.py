"""Frames and frame handles.

A *frame* is the per-thread input buffer in frame memory (held in the
Local Store on CellDTA).  Producers STORE into a consumer's frame through
the scheduler; each store decrements the consumer's Synchronization
Counter and the thread becomes ready when the counter hits zero.

A *frame handle* is the architectural name of a frame: it packs the owning
PE id and the frame's byte address inside that PE's Local Store into one
register-sized integer, so handles can be passed between threads like any
other value (they are, in fact, routinely STOREd into children's frames so
the children know where to send their results).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HANDLE_ADDR_BITS",
    "pack_handle",
    "unpack_handle",
    "handle_pe",
    "handle_addr",
    "Frame",
]

#: Bits reserved for the LS byte address inside a handle (LS < 1 MiB).
HANDLE_ADDR_BITS = 20
_ADDR_MASK = (1 << HANDLE_ADDR_BITS) - 1


def pack_handle(pe_id: int, frame_addr: int) -> int:
    """Pack (PE id, LS byte address) into an integer frame handle."""
    if pe_id < 0:
        raise ValueError(f"negative PE id {pe_id}")
    if not 0 <= frame_addr <= _ADDR_MASK:
        raise ValueError(
            f"frame address {frame_addr:#x} does not fit in "
            f"{HANDLE_ADDR_BITS} bits"
        )
    if frame_addr % 4:
        raise ValueError(f"frame address {frame_addr:#x} is not word-aligned")
    return (pe_id << HANDLE_ADDR_BITS) | frame_addr


def unpack_handle(handle: int) -> tuple[int, int]:
    """Inverse of :func:`pack_handle`: returns ``(pe_id, frame_addr)``."""
    if handle < 0:
        raise ValueError(f"negative frame handle {handle}")
    return handle >> HANDLE_ADDR_BITS, handle & _ADDR_MASK


def handle_pe(handle: int) -> int:
    return unpack_handle(handle)[0]


def handle_addr(handle: int) -> int:
    return unpack_handle(handle)[1]


@dataclass(slots=True)
class Frame:
    """Bookkeeping for one physical frame slot in an LSE's frame table."""

    #: Byte address of the frame inside the Local Store frame region.
    addr: int
    #: Capacity in words.
    size_words: int
    #: Thread currently owning the frame (``None`` when free).
    owner_tid: int | None = None
    #: Slots written so far (diagnostics; duplicates are legal overwrites).
    writes: int = field(default=0)

    @property
    def free(self) -> bool:
        return self.owner_tid is None

    def assign(self, tid: int) -> None:
        if self.owner_tid is not None:
            raise RuntimeError(
                f"frame @{self.addr:#x} already owned by thread {self.owner_tid}"
            )
        self.owner_tid = tid
        self.writes = 0

    def release(self) -> None:
        if self.owner_tid is None:
            raise RuntimeError(f"frame @{self.addr:#x} is already free")
        self.owner_tid = None
        self.writes = 0
