"""Distributed Scheduler Element.

One DSE per node (paper Sec. 2).  It receives FALLOC requests from the
LSEs (and the PPE), picks a target PE by workload-distribution policy,
and forwards an AllocFrame command to the chosen LSE.  It also keeps the
per-PE load estimate up to date from FrameFreed notifications, and — in
multi-node machines — forwards requests to the next node's DSE when its
own node's resources are exhausted ("forwarding it to other nodes when
internal resources are finished").

All DSEs plus all LSEs together form the DTA Distributed Scheduler.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.core.messages import AllocFrame, FallocRequest, FrameFreed, Message
from repro.sim.component import Component
from repro.sim.config import DSEConfig
from repro.sim.stats import SchedulerStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.machine import Machine

__all__ = ["DSE"]


class DSE(Component):
    """The per-node workload distributor."""

    priority = 45
    node_id = 0  # overwritten per instance

    def __init__(
        self,
        name: str,
        node_id: int,
        spe_ids: list[int],
        config: DSEConfig,
        frames_per_lse: int,
        stats: SchedulerStats | None = None,
    ) -> None:
        super().__init__(name)
        self.node_id = node_id
        self.spe_ids = list(spe_ids)
        if not self.spe_ids:
            raise ValueError(f"{name}: a DSE needs at least one SPE")
        self.config = config
        self.frames_per_lse = frames_per_lse
        self.stats = stats if stats is not None else SchedulerStats()
        #: Estimated live+pending frames per SPE in this node.
        self.load: dict[int, int] = {s: 0 for s in self.spe_ids}
        self._queue: deque[Message] = deque()
        self._rr_next = 0
        self._bus = None
        self._machine: "Machine | None" = None
        self._next_dse = None  # ring neighbour for inter-node forwarding
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_routed = None
        self._m_forwarded = None

    def _bind_metrics(self, hub) -> None:
        self._m_routed = hub.counter(f"{self.name}.fallocs_routed")
        self._m_forwarded = hub.counter(f"{self.name}.fallocs_forwarded")

    def wire(self, bus, machine, next_dse=None) -> None:
        self._bus = bus
        self._machine = machine
        self._next_dse = next_dse

    # -- bus endpoint ------------------------------------------------------------

    def deliver(self, msg: Message) -> None:
        self._queue.append(msg)
        self.wake()

    # -- component ----------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        if not self._queue:
            return None
        msg = self._queue.popleft()
        self.stats.messages += 1
        if isinstance(msg, FallocRequest):
            self._route(msg)
        elif isinstance(msg, FrameFreed):
            if msg.spe_id in self.load:
                self.load[msg.spe_id] = max(0, self.load[msg.spe_id] - 1)
        else:
            raise RuntimeError(f"{self.name}: unexpected {type(msg).__name__}")
        return now + self.config.request_latency if self._queue else None

    # -- policy ---------------------------------------------------------------------

    def _pick_spe(self) -> int:
        if self.config.policy == "round-robin":
            spe = self.spe_ids[self._rr_next % len(self.spe_ids)]
            self._rr_next += 1
            return spe
        # least-loaded (ties broken by SPE id for determinism)
        return min(self.spe_ids, key=lambda s: (self.load[s], s))

    def _node_full(self) -> bool:
        return all(self.load[s] >= self.frames_per_lse for s in self.spe_ids)

    def _route(self, msg: FallocRequest) -> None:
        assert self._machine is not None
        if (
            self._next_dse is not None
            and self._node_full()
            and msg.hops < self._machine.num_nodes - 1
        ):
            # Internal resources exhausted: forward to the next node.
            fwd = FallocRequest(
                request_id=msg.request_id,
                requester_spe=msg.requester_spe,
                template_id=msg.template_id,
                sc=msg.sc,
                hops=msg.hops + 1,
            )
            self._bus.send(self, self._next_dse, fwd)
            if self._m_forwarded is not None:
                self._m_forwarded.add()
            self._trace("falloc-forwarded", requester=msg.requester_spe,
                        hops=msg.hops + 1)
            return
        spe = self._pick_spe()
        self.load[spe] += 1
        if self._m_routed is not None:
            self._m_routed.add()
        self._trace("falloc-routed", spe=spe, requester=msg.requester_spe)
        self._bus.send(
            self,
            self._machine.endpoint_of(spe),
            AllocFrame(
                request_id=msg.request_id,
                requester_spe=msg.requester_spe,
                template_id=msg.template_id,
                sc=msg.sc,
            ),
        )

    def describe_state(self) -> str:
        return f"{len(self._queue)} queued, load={self.load}"
