"""Thread instances and the DTA thread lifecycle.

The paper's Figure 4 lifecycle (prefetching enabled):

1.  *Wait for a Frame* — a frame must be assigned before data can arrive.
    (With virtual frame pointers a thread can exist in this state while
    the physical frame is still pending; without them, frame assignment
    and thread creation coincide.)
2.  *Wait for stores* — the Synchronization Counter (SC) counts down as
    producers STORE into the frame.
3.  *Ready* — all inputs present; waiting for the pipeline.
4.  2a. *Program DMA* — the PF code block runs on the pipeline and
    programs the MFC (prefetch overhead).
    2b. *Wait for DMA* — the thread releases the pipeline until the MFC
    signals completion of its tag group (this is the paper's key
    non-blocking step).
5.  *Execution* — PL, EX, PS code blocks run to STOP.

:class:`ThreadInstance` is pure bookkeeping — all timing lives in the SPU,
LSE and MFC components — which keeps the lifecycle unit-testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.program import ThreadProgram

__all__ = ["ThreadState", "ThreadInstance", "LifecycleError"]


class LifecycleError(RuntimeError):
    """An illegal thread state transition was attempted."""


class ThreadState(enum.Enum):
    WAIT_FRAME = "wait-frame"
    WAIT_STORES = "wait-stores"
    READY = "ready"
    PROGRAM_DMA = "program-dma"
    WAIT_DMA = "wait-dma"
    EXECUTING = "executing"
    DONE = "done"


#: Legal state transitions (Figure 4, plus the no-PF shortcuts).
_TRANSITIONS: dict[ThreadState, frozenset[ThreadState]] = {
    ThreadState.WAIT_FRAME: frozenset({ThreadState.WAIT_STORES}),
    ThreadState.WAIT_STORES: frozenset({ThreadState.READY}),
    ThreadState.READY: frozenset({ThreadState.PROGRAM_DMA, ThreadState.EXECUTING}),
    ThreadState.PROGRAM_DMA: frozenset(
        {ThreadState.WAIT_DMA, ThreadState.EXECUTING, ThreadState.READY}
    ),
    ThreadState.WAIT_DMA: frozenset({ThreadState.READY}),
    # EXECUTING -> READY is the data-fault recovery squash: a thread that
    # read a poisoned frame word is pulled off the pipeline pre-commit
    # and re-enqueued for re-execution (frame intact, SC preserved).
    ThreadState.EXECUTING: frozenset({ThreadState.DONE, ThreadState.READY}),
    ThreadState.DONE: frozenset(),
}


@dataclass(slots=True)
class ThreadInstance:
    """One dynamic thread: a template bound to a frame and an SC.

    Thousands are allocated per benchmark run, hence ``slots=True``.
    """

    tid: int
    template_id: int
    program: ThreadProgram
    spe_id: int
    #: Frame byte address in the owning SPE's Local Store (None while a
    #: virtual-frame thread waits for a physical frame).
    frame_addr: int | None
    handle: int
    sc: int
    state: ThreadState = ThreadState.WAIT_STORES
    #: Outstanding DMA tag ids programmed by the PF block.
    pending_tags: set[int] = field(default_factory=set)
    #: LS prefetch buffers owned by this thread (freed at STOP).
    ls_buffers: list[tuple[int, int]] = field(default_factory=list)
    #: True once the PF block has run (a resumed thread skips PF).
    prefetch_done: bool = False
    #: True once the LSE released this thread's frame (STOP or FFREE).
    frame_freed: bool = False
    #: True once the thread has committed work visible outside its own
    #: registers/LS buffers (PS stores, WRITEs, spawns, non-PF DMA) — a
    #: thread with side effects can no longer be squashed for recovery.
    side_effects: bool = False
    #: Recovery re-executions performed on this thread (bounded by the
    #: fault plan's ``data_max_reexecs``).
    reexecs: int = 0
    #: Cycle bookkeeping (diagnostics only).
    created_at: int = 0
    ready_at: int | None = None
    finished_at: int | None = None
    #: Lifecycle observer, called as ``on_transition(thread, old, new)``
    #: after every successful transition (observability hook; never
    #: affects the lifecycle itself).
    on_transition: object = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.sc < 0:
            raise ValueError(f"thread {self.tid}: negative SC {self.sc}")

    # -- SC handling ---------------------------------------------------------

    def count_store(self) -> bool:
        """Record one synchronizing store; returns True when SC hits zero.

        Only legal while waiting for stores — a store arriving for a
        ready/running thread indicates a producer SC mismatch, which DTA
        hardware would treat as a protocol violation.
        """
        if self.state not in (ThreadState.WAIT_STORES, ThreadState.WAIT_FRAME):
            raise LifecycleError(
                f"thread {self.tid}: store arrived in state {self.state.value}"
            )
        if self.sc <= 0:
            raise LifecycleError(
                f"thread {self.tid}: more stores than its SC allowed"
            )
        self.sc -= 1
        return self.sc == 0 and self.state is ThreadState.WAIT_STORES

    # -- transitions ------------------------------------------------------------

    def transition(self, new: ThreadState) -> None:
        if new not in _TRANSITIONS[self.state]:
            raise LifecycleError(
                f"thread {self.tid}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        old, self.state = self.state, new
        observer = self.on_transition
        if observer is not None:
            observer(self, old, new)

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.READY

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def describe(self) -> str:
        return (
            f"tid={self.tid} tmpl={self.program.name} spe={self.spe_id} "
            f"state={self.state.value} sc={self.sc} "
            f"tags={sorted(self.pending_tags)}"
        )
