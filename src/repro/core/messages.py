"""Scheduler message protocol.

DTA scheduler elements (LSEs and DSEs) communicate exclusively by sending
messages (paper Sec. 2): FALLOC-Request / FALLOC-Response for frame
allocation, FFREE for releasing frames, and remote-store messages for
writing into frames of threads on other PEs.  On CellDTA these ride the
element interconnect bus, so every message declares its size in bytes for
bus timing.

The reproduction adds two bookkeeping messages that a hardware
implementation would fold into the same wires: ``FrameFreed`` (LSE -> DSE
load accounting) and ``DmaComplete`` (MFC -> local LSE; never crosses the
bus because MFC and LSE sit in the same SPE).

Messages are allocated on the simulator's hot path (one per store, per
bus flit, per DMA chunk), so every class uses ``slots=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Message",
    "FallocRequest",
    "AllocFrame",
    "FallocResponse",
    "StoreMsg",
    "FFreeMsg",
    "FrameFreed",
    "ReadRequest",
    "WriteRequest",
    "ReadResponse",
    "WriteAck",
    "CacheFillRequest",
    "CacheFillResponse",
    "DmaReadRequest",
    "DmaGatherRequest",
    "DmaReadResponse",
    "DmaWriteRequest",
]


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message knows its wire size."""

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class FallocRequest(Message):
    """LSE -> DSE: a thread asked for a new frame (FALLOC).

    ``requester`` names the LSE waiting for the response; ``request_id``
    correlates the eventual :class:`FallocResponse`.
    """

    request_id: int
    requester_spe: int
    template_id: int
    sc: int
    #: How many DSE->DSE forwards this request has taken (wire-delay model).
    hops: int = 0


@dataclass(frozen=True, slots=True)
class AllocFrame(Message):
    """DSE -> target LSE: allocate a frame for a new thread here."""

    request_id: int
    requester_spe: int
    template_id: int
    sc: int


@dataclass(frozen=True, slots=True)
class FallocResponse(Message):
    """Target LSE -> requesting LSE: the new thread's frame handle."""

    request_id: int
    handle: int
    tid: int


@dataclass(frozen=True, slots=True)
class StoreMsg(Message):
    """LSE -> LSE: store one word into a remote frame (decrements SC)."""

    handle: int
    slot: int
    value: int
    #: Integrity check code of ``value`` (repro.faults.integrity), stamped
    #: when the message enters the bus under an active data-fault plan;
    #: 0 (and unverified) otherwise.
    check: int = 0

    @property
    def size_bytes(self) -> int:
        return 16  # header + address + 4-byte datum, rounded to flit


@dataclass(frozen=True, slots=True)
class FFreeMsg(Message):
    """Explicit FFREE of a remote frame handle."""

    handle: int

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class FrameFreed(Message):
    """LSE -> DSE: a frame was released (load bookkeeping)."""

    spe_id: int

    @property
    def size_bytes(self) -> int:
        return 8


# -- main-memory traffic -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ReadRequest(Message):
    """SPU -> main memory: scalar READ of one word."""

    addr: int
    reply_key: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class ReadResponse(Message):
    """Main memory -> SPU: the word for a scalar READ."""

    reply_key: int
    value: int

    @property
    def size_bytes(self) -> int:
        return 8  # 4-byte datum padded to one bus flit


@dataclass(frozen=True, slots=True)
class WriteRequest(Message):
    """SPU -> main memory: posted scalar WRITE of one word."""

    addr: int
    value: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 12


@dataclass(frozen=True, slots=True)
class WriteAck(Message):
    """Main memory -> SPU: a posted WRITE was accepted (store-queue credit)."""

    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class CacheFillRequest(Message):
    """Data cache -> main memory: fetch one line."""

    addr: int
    size: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class CacheFillResponse(Message):
    """Main memory -> data cache: one line of data."""

    addr: int
    words: tuple[int, ...]
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)


@dataclass(frozen=True, slots=True)
class DmaReadRequest(Message):
    """MFC -> main memory: fetch one DMA chunk."""

    addr: int
    size: int
    command_id: int
    chunk_index: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 8


@dataclass(frozen=True, slots=True)
class DmaGatherRequest(Message):
    """MFC -> main memory: gather ``count`` words, one every ``stride`` B."""

    addr: int
    count: int
    stride: int
    command_id: int
    chunk_index: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 16  # address + count + stride + ids


@dataclass(frozen=True, slots=True)
class DmaReadResponse(Message):
    """Main memory -> MFC: one DMA chunk of data."""

    command_id: int
    chunk_index: int
    ls_addr: int
    words: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)


@dataclass(frozen=True, slots=True)
class DmaWriteRequest(Message):
    """MFC -> main memory: one DMA write-back chunk (DMAPUT)."""

    addr: int
    words: tuple[int, ...]
    command_id: int
    chunk_index: int
    requester_spe: int

    @property
    def size_bytes(self) -> int:
        return 8 + 4 * len(self.words)
