"""Local Scheduler Element.

One LSE sits in every SPE (paper Sec. 2): it manages the local frame
table, tracks each local thread's Synchronization Counter, keeps the ready
queue, forwards resource requests to the node's DSE, and — new in this
paper — tracks outstanding DMA tag groups so a thread in the
*Wait-for-DMA* state is re-readied by the standard SC mechanism when its
prefetch completes.

The LSE processes one request per ``request_latency`` cycles from a FIFO
that merges pipeline-side requests (STORE, FALLOC, LSALLOC, STOP, FFREE)
with network messages (remote stores, AllocFrame from the DSE, FALLOC
responses).  The pipeline-side queue is bounded: a full queue
back-pressures the SPU, which is where bitcnt's "LSE stalls" come from
("this benchmark is forking a vast amount of threads in a small amount of
time and the LSE can't keep up").

Two optional features model the paper's discussion:

* ``virtual_frame_pointers`` (ablation A3) — FALLOC succeeds even when no
  physical frame is free; the returned handle names a *virtual* frame
  whose stores are buffered until a physical frame binds.
* ``dual_pipelines`` (ablation A2) — the LSE's XP pipeline executes PF
  code blocks itself, so DMA programming overlaps thread execution and
  the SPU never pays the prefetch overhead.
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import asdict, dataclass

from repro.cell.local_store import AllocationError, LocalStore, LSAllocator
from repro.cell.mfc import DmaKind
from repro.core.frame import Frame, pack_handle, unpack_handle
from repro.faults.integrity import (
    WORD_BITS,
    DataCorruptionError,
    store_corrected,
    store_syndrome,
)
from repro.core.messages import (
    AllocFrame,
    FallocRequest,
    FallocResponse,
    FFreeMsg,
    FrameFreed,
    Message,
    StoreMsg,
)
from repro.core.thread import ThreadInstance, ThreadState
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind
from repro.isa.semantics import alu_result
from repro.sim.component import Component
from repro.sim.config import LSEConfig, MachineConfig
from repro.sim.engine import Callback, register_callback
from repro.sim.stats import SchedulerStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.machine import Machine

__all__ = ["LSE", "SchedulerError"]

#: Virtual frame handles use LS addresses above this base (beyond any
#: physical LS) so they can never collide with physical frame addresses.
VIRTUAL_BASE = 1 << 19


class SchedulerError(RuntimeError):
    """A protocol violation inside the distributed scheduler."""


@dataclass(slots=True)
class _PendingAlloc:
    """An AllocFrame that found no free frame (non-virtual mode)."""

    msg: AllocFrame
    arrived: int


class LSE(Component):
    """The per-SPE scheduler element."""

    priority = 40

    #: Pipeline-side request queue bound (requests from this SPE's SPU).
    SPU_QUEUE_CAPACITY = 16

    def __init__(
        self,
        name: str,
        spe_id: int,
        config: LSEConfig,
        machine_config: MachineConfig,
        local_store: LocalStore,
        stats: SchedulerStats | None = None,
    ) -> None:
        super().__init__(name)
        self.spe_id = spe_id
        self.config = config
        self.machine_config = machine_config
        self.ls = local_store
        self.stats = stats if stats is not None else SchedulerStats()
        # Frame table occupies the front of the LS frame region.
        self.frames = [
            Frame(addr=i * config.frame_size_bytes, size_words=config.frame_size_words)
            for i in range(config.num_frames)
        ]
        self._free_frames: deque[Frame] = deque(self.frames)
        self._frame_by_addr = {f.addr: f for f in self.frames}
        self.allocator = LSAllocator(
            base=machine_config.local_store.frame_region,
            size=machine_config.local_store.prefetch_region,
        )
        # Thread bookkeeping.
        self.threads: dict[int, ThreadInstance] = {}  # tid -> instance
        self._thread_by_frame: dict[int, ThreadInstance] = {}  # frame addr -> thr
        self._virtual: dict[int, ThreadInstance] = {}  # virtual addr -> thread
        self._virtual_stores: dict[int, dict[int, int]] = {}  # vaddr -> pending
        self._next_virtual = VIRTUAL_BASE
        self._ready: deque[ThreadInstance] = deque()
        self._pending_allocs: deque[_PendingAlloc] = deque()
        # DMA tag tracking: (tid, tag) -> outstanding command count.
        self._dma_outstanding: dict[tuple[int, int], int] = {}
        self._dma_waiters: dict[tuple[int, int], object] = {}  # DMAWAIT resumes
        # Request pipeline.
        self._queue: deque[tuple] = deque()
        self._spu_queue_len = 0
        # LSALLOC requests that could not be satisfied yet.
        self._waiting_lsallocs: deque[tuple[ThreadInstance, int]] = deque()
        # Wiring (set by the SPE / machine).
        self._bus = None
        self._dse = None
        self._spu = None
        self._mfc = None
        self._endpoint = None
        self._machine: "Machine | None" = None
        self._falloc_seq = 0
        self._pending_falloc_rd: dict[int, None] = {}
        self._sanitizer = None  # optional Sanitizer
        self._injector = None  # optional FaultInjector
        # Data-fault recovery state: LS word address -> ECC-corrected
        # value for frame words a corrupted StoreMsg committed (scrubbed
        # at first read), plus the same for stores buffered in virtual
        # frames (keyed (vaddr, slot); remapped when the frame binds).
        self._poison: dict[int, int] = {}
        self._virtual_poison: dict[tuple[int, int], int] = {}
        #: Threads whose squash must wait for their in-flight DMA to drain.
        self._squash_pending: set[int] = set()
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_transitions: dict[ThreadState, object] | None = None
        self._m_fallocs = None
        self._m_falloc_waits = None
        self._m_reexecs = None

    def _bind_metrics(self, hub) -> None:
        self._m_transitions = {
            state: hub.counter(f"threads.to_{state.value}")
            for state in ThreadState
        }
        self._m_fallocs = hub.counter(f"lse{self.spe_id}.fallocs")
        self._m_falloc_waits = hub.counter(f"lse{self.spe_id}.falloc_waits")
        self._m_reexecs = hub.counter(f"lse{self.spe_id}.reexecs")

    def _observe_transition(self, thread, old, new) -> None:
        self._m_transitions[new].add()

    def wire(self, bus, dse, spu, mfc, endpoint, machine,
             sanitizer=None, injector=None) -> None:
        self._bus = bus
        self._dse = dse
        self._spu = spu
        self._mfc = mfc
        self._endpoint = endpoint
        self._machine = machine
        self._sanitizer = sanitizer
        self._injector = injector

    # -- queue plumbing -----------------------------------------------------

    def spu_can_accept(self) -> bool:
        """Whether the pipeline-side queue has room for one more request."""
        return self._spu_queue_len < self.SPU_QUEUE_CAPACITY

    def _push(self, item: tuple, from_spu: bool) -> None:
        if from_spu:
            if not self.spu_can_accept():
                raise SchedulerError(
                    f"{self.name}: SPU pushed into a full LSE queue"
                )
            self._spu_queue_len += 1
        self._queue.append((item, from_spu))
        self.wake()

    # Pipeline-side entry points (called by the SPU; all posted except
    # falloc/lsalloc whose responses unblock the SPU later).

    def spu_store(self, handle: int, slot: int, value: int) -> None:
        self._push(("store", handle, slot, value), from_spu=True)

    def spu_falloc(self, template_id: int, sc: int) -> None:
        self._push(("falloc", template_id, sc), from_spu=True)

    def spu_lsalloc(self, thread: ThreadInstance, size: int) -> None:
        self._push(("lsalloc", thread, size), from_spu=True)

    def spu_stop(self, thread: ThreadInstance) -> None:
        self._push(("stop", thread), from_spu=True)

    def spu_ffree(self, handle: int) -> None:
        self._push(("ffree", handle), from_spu=True)

    # Network entry point (via the SPE bus endpoint).

    def deliver(self, msg: Message) -> None:
        self._push(("msg", msg), from_spu=False)

    # MFC notifications (same SPE; no bus hop).

    def dma_command_issued(self, tid: int, tag: int) -> None:
        key = (tid, tag)
        self._dma_outstanding[key] = self._dma_outstanding.get(key, 0) + 1
        thread = self.threads.get(tid)
        if thread is None:
            raise SchedulerError(f"{self.name}: DMA issued for unknown thread {tid}")
        thread.pending_tags.add(tag)

    def dma_command_done(self, tid: int, tag: int) -> None:
        key = (tid, tag)
        left = self._dma_outstanding.get(key, 0) - 1
        if left < 0:
            raise SchedulerError(
                f"{self.name}: DMA completion underflow for thread {tid} tag {tag}"
            )
        if left:
            self._dma_outstanding[key] = left
            return
        self._dma_outstanding.pop(key, None)
        self._trace("dma-tag-done", tid=tid, tag=tag)
        thread = self.threads.get(tid)
        if thread is None:
            return  # thread already finished (PUT write-back after STOP)
        thread.pending_tags.discard(tag)
        waiter = self._dma_waiters.pop(key, None)
        if waiter is not None:
            waiter()  # resume a DMAWAIT-blocked SPU
        if (self._squash_pending and tid in self._squash_pending
                and thread.state is ThreadState.WAIT_DMA
                and not thread.pending_tags
                and not any(k[0] == tid for k in self._dma_outstanding)):
            # A corrupt transfer earlier in this thread's tag groups
            # deferred its squash until the rest of its DMA drained.
            self._squash_pending.discard(tid)
            self._squash_thread(thread, cause="dma-transfer", restart_pf=True)
            return
        if thread.state is ThreadState.WAIT_DMA and not thread.pending_tags:
            thread.transition(ThreadState.READY)
            self._make_ready(thread, resumed=True)

    def tag_outstanding(self, tid: int, tag: int) -> bool:
        return self._dma_outstanding.get((tid, tag), 0) > 0

    def register_dma_waiter(self, tid: int, tag: int, resume) -> None:
        key = (tid, tag)
        if key in self._dma_waiters:
            raise SchedulerError(f"{self.name}: duplicate DMAWAIT on {key}")
        self._dma_waiters[key] = resume

    # -- data-fault recovery ----------------------------------------------------

    def _corruption_error(self, kind: str, tid, detail: str,
                          tag=None, command_id=None) -> DataCorruptionError:
        stats = None
        if self._injector is not None:
            stats = asdict(self._injector.stats)
        return DataCorruptionError(
            kind=kind, site=self.name, spe_id=self.spe_id, tid=tid,
            tag=tag, command_id=command_id, detail=detail, fault_stats=stats,
        )

    def transfer_corrupt(self, cmd) -> None:
        """A GET transfer failed verification and its re-fetch budget is gone.

        The MFC has cancelled the command; retire its tag-group slot
        without resuming any waiter, then squash the owning thread for
        re-execution — or raise :class:`DataCorruptionError` when the
        thread can no longer be replayed safely.
        """
        tid, tag = cmd.tid, cmd.tag
        key = (tid, tag)
        left = self._dma_outstanding.get(key, 0) - 1
        if left < 0:
            raise SchedulerError(
                f"{self.name}: corrupt-transfer underflow for thread {tid} "
                f"tag {tag}"
            )
        if left:
            self._dma_outstanding[key] = left
        else:
            self._dma_outstanding.pop(key, None)
        thread = self.threads.get(tid)
        if thread is None:
            raise self._corruption_error(
                "dma-transfer", tid, "owning thread has already finished",
                tag=tag, command_id=cmd.command_id,
            )
        if not left:
            thread.pending_tags.discard(tag)
        if key in self._dma_waiters:
            raise self._corruption_error(
                "dma-transfer", tid,
                "a DMAWAIT is already blocked on the corrupt tag group",
                tag=tag, command_id=cmd.command_id,
            )
        if thread.side_effects:
            raise self._corruption_error(
                "dma-transfer", tid,
                "thread has committed side effects and cannot be replayed",
                tag=tag, command_id=cmd.command_id,
            )
        if thread.state is ThreadState.PROGRAM_DMA:
            # The thread may still be live on the SPU mid-PF; squashing
            # now would double-dispatch it.  thread_wait_dma (or the
            # last dma_command_done) completes the squash.
            self._squash_pending.add(tid)
            return
        if thread.state is not ThreadState.WAIT_DMA:
            raise self._corruption_error(
                "dma-transfer", tid,
                f"thread in unreplayable state {thread.state.value}",
                tag=tag, command_id=cmd.command_id,
            )
        if thread.pending_tags or any(
            k[0] == tid for k in self._dma_outstanding
        ):
            self._squash_pending.add(tid)  # drain the rest first
            return
        self._squash_thread(thread, cause="dma-transfer", restart_pf=True)

    def _squash_thread(self, thread: ThreadInstance, cause: str,
                       restart_pf: bool) -> None:
        """Re-enqueue a thread for re-execution, frame and SC intact.

        ``restart_pf`` additionally frees the thread's prefetch buffers
        and clears ``prefetch_done`` so the PF block (and its DMA) runs
        again from scratch.
        """
        inj = self._injector
        assert inj is not None
        if thread.reexecs >= inj.plan.data_max_reexecs:
            raise self._corruption_error(
                cause, thread.tid,
                f"re-execution budget exhausted after {thread.reexecs} "
                f"attempt(s)",
            )
        thread.reexecs += 1
        inj.stats.thread_reexecs += 1
        if self._m_reexecs is not None:
            self._m_reexecs.add()
        if restart_pf:
            for addr, size in thread.ls_buffers:
                self.allocator.free(addr, size)
            thread.ls_buffers.clear()
            self._retry_lsallocs()
            thread.prefetch_done = False
        self._trace("thread-reexec", tid=thread.tid,
                    attempt=thread.reexecs, cause=cause)
        thread.transition(ThreadState.READY)
        self._make_ready(thread, resumed=True)

    def check_poisoned_load(self, thread: ThreadInstance, addr: int) -> bool:
        """A LOAD is about to read LS word ``addr``.

        Returns True when the SPU must abort the instruction because the
        issuing thread was squashed for re-execution.  In every case the
        poisoned word (and, on a squash, every other poisoned word of
        the thread's frame) is scrubbed with its ECC-corrected value
        first, so corrupted data is never consumed.
        """
        corrected = self._poison.pop(addr, None)
        if corrected is None:
            return False
        inj = self._injector
        assert inj is not None
        self.ls.write_word(addr, corrected)
        inj.stats.frame_scrubs += 1
        self._trace("frame-scrub", tid=thread.tid, addr=addr)
        if thread.side_effects or thread.pending_tags:
            # The correction is trusted; with committed side effects (or
            # DMA in flight) re-execution is the riskier path, so the
            # thread continues on the scrubbed word.
            return False
        # Scrub the rest of the frame too: one squash per thread, even
        # when several producer stores were corrupted.
        if thread.frame_addr is not None:
            base = thread.frame_addr
            limit = base + 4 * self.config.frame_size_words
            for a in [a for a in self._poison if base <= a < limit]:
                self.ls.write_word(a, self._poison.pop(a))
                inj.stats.frame_scrubs += 1
        self._squash_thread(
            thread, cause="frame-store",
            restart_pf=not thread.prefetch_done,
        )
        return True

    # -- SPU dispatch interface -------------------------------------------------

    def pop_ready(self) -> ThreadInstance | None:
        """Hand the next ready thread to the SPU (None when idle)."""
        while self._ready:
            thread = self._ready.popleft()
            if thread.state is ThreadState.READY:
                return thread
        return None

    def thread_wait_dma(self, thread: ThreadInstance) -> bool:
        """Called by the SPU at the end of a PF block.

        Returns True when the thread must yield the pipeline (outstanding
        DMA tags remain); the thread will be re-readied by
        :meth:`dma_command_done`.
        """
        thread.prefetch_done = True
        if (self._squash_pending and thread.tid in self._squash_pending
                and not thread.pending_tags
                and not any(
                    k[0] == thread.tid for k in self._dma_outstanding
                )):
            # A corrupt transfer arrived mid-PF and every other command
            # has already drained: complete the deferred squash now that
            # the pipeline is handing the thread back.
            self._squash_pending.discard(thread.tid)
            self._squash_thread(thread, cause="dma-transfer", restart_pf=True)
            return True
        if thread.pending_tags:
            thread.transition(ThreadState.WAIT_DMA)
            return True
        return False

    def _make_ready(self, thread: ThreadInstance, resumed: bool = False) -> None:
        """Queue a READY thread per the configured dispatch discipline.

        Resumed (post-DMA) threads always go to the front: their data is
        hot in the LS and holding their buffers longer only adds
        pressure.  New threads go to the front under the default "lifo"
        (depth-first) policy — which bounds the live frames of fork trees
        the way depth-first schedulers bound space — or to the back under
        "fifo".
        """
        thread.ready_at = self.now
        self._trace("thread-ready", tid=thread.tid, resumed=resumed)
        if resumed or self.config.ready_policy == "lifo":
            self._ready.appendleft(thread)
        else:
            self._ready.append(thread)
        self._notify_spu()

    def _notify_spu(self) -> None:
        if self._spu is not None:
            self._spu.notify_ready()

    # -- XP-pipeline prefetch offload (ablation A2) ---------------------------

    def offload_prefetch(self, thread: ThreadInstance) -> bool:
        """Run ``thread``'s PF block on the LSE's XP pipeline if enabled.

        Returns True when the LSE took ownership of the PF phase: the
        thread transitions to PROGRAM_DMA immediately and will re-enter
        the ready queue (prefetch done) without ever occupying the SPU —
        the overlap the paper attributes to the original DTA LSE's SP/XP
        dual pipelines ("it can overlap this with the execution of other
        threads, but in the CellDTA this is not yet available").
        """
        if not self.config.dual_pipelines:
            return False
        if thread.prefetch_done or not thread.program.has_prefetch:
            return False
        thread.transition(ThreadState.PROGRAM_DMA)
        if self._sanitizer is not None:
            self._sanitizer.thread_started(self.name, thread.tid)
        pf = thread.program.block(BlockKind.PF)
        # XP pipeline occupancy: one PF instruction per request_latency.
        delay = max(1, len(pf) * self.config.request_latency)
        self.engine.call_at(
            self.now + delay, Callback("lse.xp_run", self, (thread,))
        )
        return True

    def _xp_run(self, thread: ThreadInstance) -> None:
        """Functionally execute the PF block on the XP pipeline."""
        pf = thread.program.block(BlockKind.PF)
        regs: dict[int, int] = {}

        def val(operand) -> int:
            from repro.isa.instructions import Imm, Reg

            if isinstance(operand, Imm):
                return operand.value
            if isinstance(operand, Reg):
                return regs.get(operand.index, 0)
            raise SchedulerError(f"{self.name}: bad XP operand {operand!r}")

        # First pass: check resources so the whole block applies atomically.
        total_alloc = sum(i.imm for i in pf if i.op is Op.LSALLOC)
        dma_count = sum(1 for i in pf if i.op in (Op.DMAGET, Op.DMAPUT))
        if total_alloc and not self.allocator.can_alloc(total_alloc):
            self.engine.call_at(
                self.now + 16, Callback("lse.xp_run", self, (thread,))
            )
            return
        if dma_count and len(pf) and not self._mfc.queue_free:
            self.engine.call_at(
                self.now + 8, Callback("lse.xp_run", self, (thread,))
            )
            return
        assert thread.frame_addr is not None
        for instr in pf:
            if instr.op is Op.LOAD:
                la = thread.frame_addr + 4 * instr.imm
                if self._poison and la in self._poison:
                    # XP applies the PF block atomically with nothing
                    # committed yet, so a poisoned word is simply
                    # scrubbed in place before the read.
                    self.ls.write_word(la, self._poison.pop(la))
                    self._injector.stats.frame_scrubs += 1
                    self._trace("frame-scrub", tid=thread.tid, addr=la)
                regs[instr.rd] = self.ls.read_word(la)
            elif instr.op is Op.STOREF:
                self.ls.write_word(
                    thread.frame_addr + 4 * instr.imm, val(instr.ra)
                )
            elif instr.op is Op.LSALLOC:
                addr = self.allocator.alloc(instr.imm)
                thread.ls_buffers.append((addr, instr.imm))
                regs[instr.rd] = addr
            elif instr.op is Op.DMAGET:
                ok = self._mfc.enqueue(
                    DmaKind.GET, val(instr.ra), val(instr.rb), instr.imm,
                    instr.tag, thread.tid,
                )
                if not ok:  # pragma: no cover - pre-checked above
                    raise SchedulerError(f"{self.name}: XP hit a full MFC queue")
            elif instr.spec.is_branch:
                raise SchedulerError(
                    f"{self.name}: XP pipeline cannot execute branches in PF"
                )
            elif instr.op is Op.NOP:
                pass
            else:
                a = val(instr.ra) if instr.ra is not None else 0
                b = val(instr.rb) if instr.rb is not None else (
                    instr.imm if instr.imm is not None else 0
                )
                regs[instr.rd] = alu_result(instr.op, a, b)
        thread.prefetch_done = True
        if thread.pending_tags:
            thread.transition(ThreadState.WAIT_DMA)
        else:
            thread.transition(ThreadState.READY)
            self._make_ready(thread, resumed=True)

    # -- component ---------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        if not self._queue:
            return None
        (item, from_spu) = self._queue.popleft()
        if from_spu:
            self._spu_queue_len -= 1
            if self._spu is not None:
                self._spu.lse_queue_drained()
        self._process(item, now)
        return now + self.config.request_latency if self._queue else None

    # -- request processing ---------------------------------------------------------

    def _process(self, item: tuple, now: int) -> None:
        kind = item[0]
        if kind == "store":
            _, handle, slot, value = item
            self._do_store(handle, slot, value, now)
        elif kind == "falloc":
            _, template_id, sc = item
            self._do_falloc(template_id, sc)
        elif kind == "lsalloc":
            _, thread, size = item
            self._do_lsalloc(thread, size)
        elif kind == "stop":
            self._do_stop(item[1], now)
        elif kind == "ffree":
            self._do_ffree(item[1])
        elif kind == "msg":
            self._process_msg(item[1], now)
        else:  # pragma: no cover - defensive
            raise SchedulerError(f"{self.name}: unknown request {kind!r}")

    def _process_msg(self, msg: Message, now: int) -> None:
        self.stats.messages += 1
        if isinstance(msg, StoreMsg):
            # Verify the integrity code stamped when the store entered
            # the bus.  A single-bit error is correctable: the raw value
            # commits (modeling read-time-checked ECC memory) and the
            # corrected word is recorded for scrubbing at first read.
            corrected = None
            inj = self._injector
            if inj is not None and inj.plan.data_active:
                syndrome = store_syndrome(msg.value, msg.check)
                if syndrome:
                    if not 1 <= syndrome <= WORD_BITS:
                        raise self._corruption_error(
                            "frame-store", None,
                            f"uncorrectable store syndrome {syndrome:#x} "
                            f"(handle {msg.handle:#x}, slot {msg.slot})",
                        )
                    corrected = store_corrected(msg.value, syndrome)
            self._apply_local_store(
                msg.handle, msg.slot, msg.value, now, corrected=corrected
            )
        elif isinstance(msg, AllocFrame):
            self._do_alloc_frame(msg, now)
        elif isinstance(msg, FallocResponse):
            # The handle for a FALLOC this SPE's SPU is blocked on.
            self._spu.unblock(msg.handle)
        elif isinstance(msg, FFreeMsg):
            self._free_frame_by_handle(msg.handle)
        else:
            raise SchedulerError(
                f"{self.name}: unexpected message {type(msg).__name__}"
            )

    # FALLOC (requesting side): forward to the DSE.

    def _do_falloc(self, template_id: int, sc: int) -> None:
        self.stats.fallocs += 1
        if self._m_fallocs is not None:
            self._m_fallocs.add()
        self._falloc_seq += 1
        self._bus.send(
            self._endpoint,
            self._dse,
            FallocRequest(
                request_id=(self.spe_id << 24) | self._falloc_seq,
                requester_spe=self.spe_id,
                template_id=template_id,
                sc=sc,
            ),
        )

    # AllocFrame (target side): create the thread here.

    def _do_alloc_frame(self, msg: AllocFrame, now: int) -> None:
        if self._free_frames:
            frame = self._free_frames.popleft()
            thread = self._create_thread(msg, frame, now)
            self._respond_falloc(msg, thread)
        elif self.config.virtual_frame_pointers:
            if len(self._virtual) >= self.config.virtual_frame_depth:
                self.stats.falloc_waits += 1
                if self._m_falloc_waits is not None:
                    self._m_falloc_waits.add()
                self._pending_allocs.append(_PendingAlloc(msg=msg, arrived=now))
                return
            vaddr = self._next_virtual
            self._next_virtual += 4
            thread = self._create_thread(msg, None, now, vaddr=vaddr)
            self._virtual[vaddr] = thread
            self._virtual_stores[vaddr] = {}
            self._respond_falloc(msg, thread)
        else:
            self.stats.falloc_waits += 1
            if self._m_falloc_waits is not None:
                self._m_falloc_waits.add()
            self._pending_allocs.append(_PendingAlloc(msg=msg, arrived=now))

    def _create_thread(
        self, msg: AllocFrame, frame: Frame | None, now: int, vaddr: int | None = None
    ) -> ThreadInstance:
        assert self._machine is not None
        tid = self._machine.next_tid()
        program = self._machine.program_of(msg.template_id)
        if program.frame_words > self.config.frame_size_words:
            raise SchedulerError(
                f"{self.name}: template {program.name!r} needs "
                f"{program.frame_words} frame words > "
                f"{self.config.frame_size_words}"
            )
        addr = frame.addr if frame is not None else vaddr
        assert addr is not None
        thread = ThreadInstance(
            tid=tid,
            template_id=msg.template_id,
            program=program,
            spe_id=self.spe_id,
            frame_addr=frame.addr if frame is not None else None,
            handle=pack_handle(self.spe_id, addr),
            sc=msg.sc,
            state=ThreadState.WAIT_FRAME if frame is None else ThreadState.WAIT_STORES,
            created_at=now,
        )
        if frame is not None:
            if self._sanitizer is not None:
                self._sanitizer.frame_assigned(self.name, frame.addr)
            frame.assign(tid)
            self._thread_by_frame[frame.addr] = thread
        if self._m_transitions is not None:
            thread.on_transition = self._observe_transition
            self._m_transitions[thread.state].add()  # count the birth state
        self.threads[tid] = thread
        self._machine.thread_created()
        self._trace("thread-created", tid=tid, template=program.name,
                    sc=msg.sc, virtual=frame is None)
        if msg.sc == 0 and frame is not None:
            thread.transition(ThreadState.READY)
            self._make_ready(thread)
        return thread

    def _respond_falloc(self, msg: AllocFrame, thread: ThreadInstance) -> None:
        response = FallocResponse(
            request_id=msg.request_id, handle=thread.handle, tid=thread.tid
        )
        requester = self._machine.endpoint_of(msg.requester_spe)
        self._bus.send(self._endpoint, requester, response)

    # Stores.

    def _do_store(self, handle: int, slot: int, value: int, now: int) -> None:
        pe, _ = unpack_handle(handle)
        if pe == self.spe_id:
            self._apply_local_store(handle, slot, value, now)
        else:
            self.stats.remote_stores += 1
            target = self._machine.endpoint_of(pe)
            self._bus.send(
                self._endpoint, target, StoreMsg(handle=handle, slot=slot, value=value)
            )

    def _apply_local_store(self, handle: int, slot: int, value: int, now: int,
                           corrected: int | None = None) -> None:
        pe, addr = unpack_handle(handle)
        if pe != self.spe_id:
            raise SchedulerError(
                f"{self.name}: store for PE {pe} delivered to PE {self.spe_id}"
            )
        if addr >= VIRTUAL_BASE:
            redirect = getattr(self, "_virtual_redirect", {})
            if addr in redirect:
                # The virtual frame was bound meanwhile; route to the
                # physical frame it became.
                addr = redirect[addr]
            else:
                thread = self._virtual.get(addr)
                if thread is None:
                    raise SchedulerError(
                        f"{self.name}: store to stale virtual frame"
                    )
                self._virtual_stores[addr][slot] = value
                if corrected is not None:
                    self._virtual_poison[(addr, slot)] = corrected
                    self._injector.stats.frame_poisons += 1
                    self._trace("data-fault", what="frame-poison",
                                tid=thread.tid, slot=slot)
                if self._sanitizer is not None:
                    self._sanitizer.frame_store(self.name, thread.tid)
                    self._sanitizer.sc_decrement(self.name, thread.tid, thread.sc)
                thread.count_store()
                return
        frame = self._frame_by_addr.get(addr)
        if frame is None or frame.free:
            raise SchedulerError(
                f"{self.name}: store to unallocated frame @{addr:#x}"
            )
        thread = self._thread_by_frame[addr]
        if slot >= self.config.frame_size_words:
            raise SchedulerError(
                f"{self.name}: store to slot {slot} beyond frame size"
            )
        self.ls.write_word(addr + 4 * slot, value)
        if corrected is not None:
            self._poison[addr + 4 * slot] = corrected
            self._injector.stats.frame_poisons += 1
            self._trace("data-fault", what="frame-poison",
                        tid=thread.tid, slot=slot)
        self.ls.reserve_port(self.now)
        frame.writes += 1
        if self._sanitizer is not None:
            self._sanitizer.frame_store(self.name, thread.tid)
            self._sanitizer.sc_decrement(self.name, thread.tid, thread.sc)
        if thread.count_store():
            thread.transition(ThreadState.READY)
            self._make_ready(thread)

    # LSALLOC.

    def _do_lsalloc(self, thread: ThreadInstance, size: int) -> None:
        try:
            addr = self.allocator.alloc(size)
        except AllocationError:
            self._waiting_lsallocs.append((thread, size))
            return
        thread.ls_buffers.append((addr, size))
        self._spu.unblock(addr)

    def _retry_lsallocs(self) -> None:
        # Serve as many queued LSALLOCs as now fit, in order.
        while self._waiting_lsallocs:
            thread, size = self._waiting_lsallocs[0]
            if not self.allocator.can_alloc(size):
                return
            self._waiting_lsallocs.popleft()
            addr = self.allocator.alloc(size)
            thread.ls_buffers.append((addr, size))
            self._spu.unblock(addr)

    # STOP / frame release.

    def _do_stop(self, thread: ThreadInstance, now: int) -> None:
        thread.transition(ThreadState.DONE)
        thread.finished_at = now
        for addr, size in thread.ls_buffers:
            self.allocator.free(addr, size)
        thread.ls_buffers.clear()
        self._retry_lsallocs()
        if thread.frame_addr is not None and not thread.frame_freed:
            self._release_frame(thread)
        if self._sanitizer is not None:
            self._sanitizer.thread_done(thread.tid)
        del self.threads[thread.tid]
        self._machine.thread_completed()
        self._trace("thread-done", tid=thread.tid,
                    template=thread.program.name)

    def _release_frame(self, thread: ThreadInstance) -> None:
        assert thread.frame_addr is not None
        frame = self._frame_by_addr[thread.frame_addr]
        if self._poison:
            # Unread poison dies with the frame; it must not scrub a
            # later tenant of the same LS region.
            limit = frame.addr + 4 * self.config.frame_size_words
            for a in [a for a in self._poison if frame.addr <= a < limit]:
                del self._poison[a]
        if self._sanitizer is not None:
            self._sanitizer.frame_released(self.name, frame.addr)
        frame.release()
        del self._thread_by_frame[thread.frame_addr]
        thread.frame_addr = None
        thread.frame_freed = True
        self.stats.ffrees += 1
        self._bus.send(self._endpoint, self._dse, FrameFreed(spe_id=self.spe_id))
        self._serve_pending_alloc(frame)

    def _serve_pending_alloc(self, frame: Frame) -> None:
        """A frame just freed: bind a waiting alloc or virtual thread."""
        # Virtual threads first (they were promised frames earlier).
        # Prefer one whose inputs are already fully buffered (SC == 0): it
        # becomes runnable the moment it binds, so the frame turns over
        # quickly — binding a thread whose producers are themselves
        # unbound could park the frame indefinitely.
        if self._virtual:
            pick = None
            for vaddr, thread in self._virtual.items():
                if thread.sc == 0:
                    pick = (vaddr, thread)
                    break
                if pick is None:
                    pick = (vaddr, thread)
            assert pick is not None
            self._bind_virtual(pick[0], pick[1], frame)
            return
        if self._pending_allocs:
            pending = self._pending_allocs.popleft()
            self._free_frames.append(frame)
            # Re-run the allocation path with the frame we just returned.
            self._do_alloc_frame(pending.msg, self.now)
            return
        self._free_frames.append(frame)

    def _bind_virtual(self, vaddr: int, thread: ThreadInstance, frame: Frame) -> None:
        del self._virtual[vaddr]
        pending = self._virtual_stores.pop(vaddr)
        if self._sanitizer is not None:
            self._sanitizer.frame_assigned(self.name, frame.addr)
        frame.assign(thread.tid)
        thread.frame_addr = frame.addr
        self._thread_by_frame[frame.addr] = thread
        thread.transition(ThreadState.WAIT_STORES)
        # Re-point the handle: stores already in flight carry the virtual
        # address, so keep routing it.
        self._virtual_redirect = getattr(self, "_virtual_redirect", {})
        self._virtual_redirect[vaddr] = frame.addr
        for slot, value in pending.items():
            self.ls.write_word(frame.addr + 4 * slot, value)
            if (vaddr, slot) in self._virtual_poison:
                # The buffered store was corrupt: poison follows the
                # word into the physical frame.
                self._poison[frame.addr + 4 * slot] = (
                    self._virtual_poison.pop((vaddr, slot))
                )
        if thread.sc == 0:
            thread.transition(ThreadState.READY)
            self._make_ready(thread)

    def _do_ffree(self, handle: int) -> None:
        pe, _ = unpack_handle(handle)
        if pe == self.spe_id:
            self._free_frame_by_handle(handle)
        else:
            self._bus.send(
                self._endpoint,
                self._machine.endpoint_of(pe),
                FFreeMsg(handle=handle),
            )

    def _free_frame_by_handle(self, handle: int) -> None:
        _, addr = unpack_handle(handle)
        thread = self._thread_by_frame.get(addr)
        if thread is None:
            raise SchedulerError(
                f"{self.name}: FFREE of unallocated frame @{addr:#x}"
            )
        self._release_frame(thread)

    # -- diagnostics ------------------------------------------------------------------

    @property
    def live_threads(self) -> int:
        return len(self.threads)

    @property
    def free_frame_count(self) -> int:
        return len(self._free_frames)

    @property
    def ready_depth(self) -> int:
        return len(self._ready)

    def describe_state(self) -> str:
        return (
            f"{len(self._queue)} queued reqs, {len(self._ready)} ready, "
            f"{self.live_threads} live threads, "
            f"{self.free_frame_count}/{self.config.num_frames} frames free, "
            f"{len(self._pending_allocs)} pending allocs, "
            f"{len(self._waiting_lsallocs)} waiting LSALLOCs, "
            f"{sum(self._dma_outstanding.values())} DMA cmds outstanding"
        )


register_callback("lse.xp_run", LSE._xp_run)
