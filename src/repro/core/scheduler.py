"""Distributed Scheduler facade: whole-machine scheduling snapshots.

The DTA *Distributed Scheduler* (paper Sec. 2: "DSEs from all nodes,
together with all LSEs, constitute the (hardware) Distributed Scheduler")
is physically spread over every SPE and node.  This module provides the
aggregate view of it — a :class:`SchedulerSnapshot` capturing, at one
instant, every LSE's frame occupancy, ready-queue depth, live threads by
state, DMA tags in flight and the DSEs' load estimates.

Snapshots power debugging (they render compactly), tests (asserting
system-wide invariants like "every live thread is tracked by exactly one
LSE") and capacity analysis (peak frame occupancy across a run).
"""

from __future__ import annotations

import typing
from collections import Counter
from dataclasses import dataclass, field

from repro.core.thread import ThreadState

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.machine import Machine

__all__ = ["LSEView", "DSEView", "SchedulerSnapshot"]


@dataclass(frozen=True)
class LSEView:
    """One LSE's scheduling state at the capture instant."""

    spe_id: int
    frames_total: int
    frames_free: int
    ready: int
    live_threads: int
    threads_by_state: dict[str, int]
    pending_allocs: int
    virtual_threads: int
    dma_commands_outstanding: int
    prefetch_bytes_allocated: int

    @property
    def frames_used(self) -> int:
        return self.frames_total - self.frames_free


@dataclass(frozen=True)
class DSEView:
    """One DSE's load estimates at the capture instant."""

    node_id: int
    load: dict[int, int]
    queued_requests: int


@dataclass(frozen=True)
class SchedulerSnapshot:
    """The whole Distributed Scheduler, at one simulated instant."""

    cycle: int
    lses: tuple[LSEView, ...]
    dses: tuple[DSEView, ...]
    threads_created: int
    threads_completed: int

    @staticmethod
    def capture(machine: "Machine") -> "SchedulerSnapshot":
        lses = []
        for spe in machine.spes:
            lse = spe.lse
            states = Counter(
                t.state.value for t in lse.threads.values()
            )
            lses.append(
                LSEView(
                    spe_id=spe.spe_id,
                    frames_total=lse.config.num_frames,
                    frames_free=lse.free_frame_count,
                    ready=len(lse._ready),
                    live_threads=lse.live_threads,
                    threads_by_state=dict(states),
                    pending_allocs=len(lse._pending_allocs),
                    virtual_threads=len(lse._virtual),
                    dma_commands_outstanding=sum(
                        lse._dma_outstanding.values()
                    ),
                    prefetch_bytes_allocated=lse.allocator.allocated_bytes,
                )
            )
        dses = [
            DSEView(
                node_id=dse.node_id,
                load=dict(dse.load),
                queued_requests=len(dse._queue),
            )
            for dse in machine.dses
        ]
        return SchedulerSnapshot(
            cycle=machine.engine.now,
            lses=tuple(lses),
            dses=tuple(dses),
            threads_created=machine.threads_created,
            threads_completed=machine.threads_completed,
        )

    # -- aggregates ----------------------------------------------------------

    @property
    def live_threads(self) -> int:
        return sum(v.live_threads for v in self.lses)

    @property
    def ready_threads(self) -> int:
        return sum(v.ready for v in self.lses)

    @property
    def frames_used(self) -> int:
        return sum(v.frames_used for v in self.lses)

    @property
    def waiting_dma(self) -> int:
        return sum(
            v.threads_by_state.get(ThreadState.WAIT_DMA.value, 0)
            for v in self.lses
        )

    def check_invariants(self) -> list[str]:
        """System-wide consistency checks; returns violations (ideally [])."""
        problems: list[str] = []
        if self.live_threads != self.threads_created - self.threads_completed:
            problems.append(
                f"live threads ({self.live_threads}) != created - completed "
                f"({self.threads_created} - {self.threads_completed})"
            )
        for view in self.lses:
            physical = view.live_threads - view.virtual_threads
            if physical > view.frames_used:
                problems.append(
                    f"LSE {view.spe_id}: {physical} physical threads but "
                    f"only {view.frames_used} frames in use"
                )
            if view.ready > view.live_threads:
                problems.append(
                    f"LSE {view.spe_id}: more ready entries than live threads"
                )
        return problems

    def format(self) -> str:
        lines = [
            f"scheduler @ cycle {self.cycle}: "
            f"{self.live_threads} live ({self.ready_threads} ready, "
            f"{self.waiting_dma} waiting for DMA), "
            f"{self.threads_completed}/{self.threads_created} done"
        ]
        for v in self.lses:
            lines.append(
                f"  lse{v.spe_id}: frames {v.frames_used}/{v.frames_total}, "
                f"ready {v.ready}, live {v.live_threads}, "
                f"dma {v.dma_commands_outstanding}, "
                f"heap {v.prefetch_bytes_allocated}B"
            )
        for d in self.dses:
            lines.append(f"  dse{d.node_id}: load {d.load}")
        return "\n".join(lines)
