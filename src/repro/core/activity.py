"""TLP activities: what the PPE offloads to the DTA hardware.

A :class:`TLPActivity` bundles

* the **thread templates** (compiled :class:`~repro.isa.program.ThreadProgram`
  objects, indexed by a small integer template id used by FALLOC);
* the **global data objects** the activity reads/writes in main memory,
  with their initial contents and base addresses; and
* the **root spawns** the PPE performs to kick the activity off (paper:
  "TLP activities are offloaded by the general purpose processor to the
  SPEs, which execute them in parallel").

Activities are plain data so a workload generator can build one, the
prefetch compiler can transform it, and the machine can run either
version — that pairing is exactly the paper's with/without-prefetching
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.program import ThreadProgram

__all__ = ["GlobalObject", "SpawnSpec", "ObjRef", "SpawnRef", "TLPActivity"]

#: Main-memory base address of the first global object (clear of address 0
#: so null-pointer bugs in hand-written assembly fault loudly).
GLOBAL_BASE = 0x1000
#: Alignment for global objects (matches the MFC max transfer size).
GLOBAL_ALIGN = 128


@dataclass(frozen=True)
class GlobalObject:
    """A named array in main memory.

    ``data`` holds the initial word values; an output object simply starts
    zeroed.  Addresses are assigned by :meth:`TLPActivity.layout`.
    """

    name: str
    data: tuple[int, ...]
    addr: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("global object needs a name")
        if len(self.data) == 0:
            raise ValueError(f"global object {self.name!r} is empty")

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.data)

    @staticmethod
    def zeros(name: str, words: int) -> "GlobalObject":
        return GlobalObject(name=name, data=(0,) * words)


@dataclass(frozen=True)
class SpawnSpec:
    """One root thread the PPE creates: template + SC + initial stores.

    ``stores`` maps frame slots to values; names of global objects may be
    used as values and are resolved to their base addresses at layout
    time via :class:`ObjRef`.
    """

    template: str
    stores: dict[int, "int | ObjRef"] = field(default_factory=dict)
    #: Extra SC beyond the PPE's own stores (for stores arriving later
    #: from sibling root threads).  Normally zero.
    extra_sc: int = 0

    @property
    def sc(self) -> int:
        return len(self.stores) + self.extra_sc


@dataclass(frozen=True)
class ObjRef:
    """A reference to a global object's base address (+ byte offset)."""

    name: str
    offset: int = 0


@dataclass(frozen=True)
class SpawnRef:
    """A reference to the frame handle of an earlier root spawn.

    Resolved by the PPE at spawn time (the handle only exists once the
    scheduler answers the earlier FALLOC), so e.g. worker threads can be
    handed the handle of a join/reduction thread spawned before them.
    """

    spawn_index: int

    def __post_init__(self) -> None:
        if self.spawn_index < 0:
            raise ValueError(f"negative spawn index {self.spawn_index}")


class TLPActivity:
    """A complete offloadable parallel activity."""

    def __init__(
        self,
        name: str,
        templates: "dict[str, ThreadProgram] | list[ThreadProgram]",
        globals_: "list[GlobalObject] | None" = None,
        spawns: "list[SpawnSpec] | None" = None,
    ) -> None:
        self.name = name
        if isinstance(templates, dict):
            programs = list(templates.values())
        else:
            programs = list(templates)
        if not programs:
            raise ValueError(f"activity {name!r} has no thread templates")
        names = [p.name for p in programs]
        if len(set(names)) != len(names):
            raise ValueError(f"activity {name!r}: duplicate template names")
        #: template name -> integer id (FALLOC immediate).
        self.template_ids: dict[str, int] = {p.name: i for i, p in enumerate(programs)}
        self.templates: tuple[ThreadProgram, ...] = tuple(programs)
        self.globals: list[GlobalObject] = list(globals_ or [])
        gnames = [g.name for g in self.globals]
        if len(set(gnames)) != len(gnames):
            raise ValueError(f"activity {name!r}: duplicate global object names")
        self.spawns: list[SpawnSpec] = list(spawns or [])
        self._laid_out = False
        self.layout()

    # -- template access ---------------------------------------------------------

    def template(self, ref: "str | int") -> ThreadProgram:
        if isinstance(ref, str):
            return self.templates[self.template_ids[ref]]
        return self.templates[ref]

    def template_id(self, name: str) -> int:
        return self.template_ids[name]

    def with_templates(self, programs: "list[ThreadProgram]") -> "TLPActivity":
        """A copy of this activity with replaced templates (same names/order).

        Used by the prefetch pass, which rewrites each template but keeps
        the activity structure (globals, spawns) identical.
        """
        if [p.name for p in programs] != [p.name for p in self.templates]:
            raise ValueError("replacement templates must match names and order")
        return TLPActivity(
            name=self.name,
            templates=programs,
            globals_=self.globals,
            spawns=self.spawns,
        )

    # -- global data layout ----------------------------------------------------------

    def layout(self) -> None:
        """Assign main-memory addresses to global objects (idempotent)."""
        addr = GLOBAL_BASE
        placed: list[GlobalObject] = []
        for obj in self.globals:
            placed.append(replace(obj, addr=addr))
            size = obj.size_bytes
            addr += ((size + GLOBAL_ALIGN - 1) // GLOBAL_ALIGN) * GLOBAL_ALIGN
        self.globals = placed
        self._laid_out = True

    def global_obj(self, name: str) -> GlobalObject:
        for obj in self.globals:
            if obj.name == name:
                return obj
        raise KeyError(f"activity {self.name!r} has no global object {name!r}")

    def resolve(
        self,
        value: "int | ObjRef | SpawnRef",
        spawned_handles: "list[int] | None" = None,
    ) -> int:
        """Resolve a spawn-store value.

        Object references become base addresses; spawn references become
        the frame handle of the named earlier spawn (``spawned_handles``
        is supplied by the PPE at run time).
        """
        if isinstance(value, ObjRef):
            obj = self.global_obj(value.name)
            assert obj.addr is not None
            return obj.addr + value.offset
        if isinstance(value, SpawnRef):
            if spawned_handles is None:
                raise ValueError("SpawnRef can only be resolved at spawn time")
            if value.spawn_index >= len(spawned_handles):
                raise ValueError(
                    f"SpawnRef({value.spawn_index}) refers to a spawn that "
                    f"has not happened yet"
                )
            return spawned_handles[value.spawn_index]
        return value

    # -- sanity --------------------------------------------------------------------------

    def validate(self) -> None:
        """Check spawn references and template-id consistency."""
        for index, spawn in enumerate(self.spawns):
            if spawn.template not in self.template_ids:
                raise ValueError(
                    f"activity {self.name!r}: spawn references unknown "
                    f"template {spawn.template!r}"
                )
            for value in spawn.stores.values():
                if isinstance(value, ObjRef):
                    self.global_obj(value.name)
                elif isinstance(value, SpawnRef) and value.spawn_index >= index:
                    raise ValueError(
                        f"activity {self.name!r}: spawn {index} references "
                        f"spawn {value.spawn_index}, which is not earlier"
                    )

    @property
    def has_prefetch(self) -> bool:
        """True if any template carries a PF block."""
        return any(t.has_prefetch for t in self.templates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TLPActivity {self.name!r}: {len(self.templates)} templates, "
            f"{len(self.globals)} globals, {len(self.spawns)} spawns>"
        )
