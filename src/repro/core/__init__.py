"""The DTA core: threads, frames, scheduler elements, activities."""

from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.core.dse import DSE
from repro.core.frame import (
    Frame,
    handle_addr,
    handle_pe,
    pack_handle,
    unpack_handle,
)
from repro.core.lse import LSE, SchedulerError
from repro.core.scheduler import DSEView, LSEView, SchedulerSnapshot
from repro.core.thread import LifecycleError, ThreadInstance, ThreadState

__all__ = [
    "TLPActivity",
    "GlobalObject",
    "SpawnSpec",
    "ObjRef",
    "Frame",
    "pack_handle",
    "unpack_handle",
    "handle_pe",
    "handle_addr",
    "LSE",
    "DSE",
    "SchedulerSnapshot",
    "LSEView",
    "DSEView",
    "SchedulerError",
    "ThreadInstance",
    "ThreadState",
    "LifecycleError",
]
