"""Control-Data Flow Graph utilities.

The paper schedules prefetches "with a priority given by the Control-Data
Flow Graph (CDFG) of the program".  This module builds a light-weight
CDFG over a thread template — instruction-level def/use edges within each
code block plus the block-order control edges — and derives from it:

* the **prefetch priority order** (regions whose data is consumed earlier
  in EX are DMA'd first, so the earliest consumer waits least), and
* a **read-before-write lint** used by tests and workload authors: DTA
  discipline demands every register EX consumes be defined in EX or
  pre-loaded in PL, because registers do not survive the Wait-for-DMA
  yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Reg
from repro.isa.program import BlockKind, ThreadProgram

__all__ = ["CDFG", "build_cdfg", "prefetch_order", "undefined_uses"]


def _sources(instr: Instruction) -> list[int]:
    regs = []
    if isinstance(instr.ra, Reg):
        regs.append(instr.ra.index)
    if isinstance(instr.rb, Reg):
        regs.append(instr.rb.index)
    return regs


def _dest(instr: Instruction) -> int | None:
    return instr.rd


@dataclass
class CDFG:
    """Flat-index nodes; ``data_edges[i]`` are the producers instruction i reads."""

    program: ThreadProgram
    #: consumer flat index -> list of producer flat indices
    data_edges: dict[int, list[int]] = field(default_factory=dict)
    #: (from_block, to_block) control edges in execution order
    control_edges: list[tuple[BlockKind, BlockKind]] = field(default_factory=list)

    def producers(self, index: int) -> list[int]:
        return self.data_edges.get(index, [])

    def consumers(self, index: int) -> list[int]:
        return [c for c, ps in self.data_edges.items() if index in ps]


def build_cdfg(program: ThreadProgram) -> CDFG:
    """Def/use graph per block (conservative: last writer wins, branches
    treated as straight-line, which over-approximates loop-carried uses)."""
    graph = CDFG(program=program)
    kinds = [k for k in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS)
             if k in program.block_ranges]
    for a, b in zip(kinds, kinds[1:]):
        graph.control_edges.append((a, b))
    for kind in kinds:
        start, end = program.block_ranges[kind]
        last_writer: dict[int, int] = {}
        for i in range(start, end):
            instr = program.flat[i]
            producers = [
                last_writer[r] for r in _sources(instr) if r in last_writer
            ]
            if producers:
                graph.data_edges[i] = producers
            d = _dest(instr)
            if d is not None:
                last_writer[d] = i
    return graph


def prefetch_order(regions: "list") -> "list":
    """Order regions by earliest consumption in EX (CDFG priority)."""
    return sorted(regions, key=lambda r: (r.first_use, r.obj))


def undefined_uses(program: ThreadProgram) -> dict[BlockKind, set[int]]:
    """Registers read before any write, per block.

    Registers do not survive the PF yield or thread dispatch, so a
    non-empty EX/PS entry (beyond values defined in PL for EX, or PL/EX
    for PS) flags code that would read garbage after a context switch.
    The caller decides severity; PL feeding EX is the normal DTA pattern,
    so this function tracks definitions cumulatively from PL onward (PF
    is excluded: its registers are genuinely lost at the yield).
    """
    result: dict[BlockKind, set[int]] = {}
    defined: set[int] = set()
    for kind in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS):
        rng = program.block_ranges.get(kind)
        if rng is None:
            continue
        block_defined = set() if kind is BlockKind.PF else defined
        undefined: set[int] = set()
        for i in range(*rng):
            instr = program.flat[i]
            for r in _sources(instr):
                if r not in block_defined:
                    undefined.add(r)
            d = _dest(instr)
            if d is not None:
                block_defined.add(d)
        result[kind] = undefined
        if kind is not BlockKind.PF:
            defined = block_defined
    return result
