"""Static linting for TLP activities.

Workload authors hand-code DTA assembly; several mistakes that the
program validator cannot reject (it only sees one template at a time)
are cheap to catch statically at the *activity* level:

* registers read in EX/PS that no earlier block defined (they are zero
  after the Wait-for-DMA yield, almost never what was meant);
* FALLOC SC arguments that cannot match any template's frame usage;
* frame slots stored by spawns that the target template never loads;
* unannotated global READs (legal — the pass will skip them — but worth
  a warning when the rest of the template is annotated);
* templates so large they approach the register file.

:func:`lint_activity` returns a list of human-readable findings; an
empty list is a clean bill.  The workload test suites assert exactly
that for every shipped benchmark.
"""

from __future__ import annotations

from repro.compiler.cdfg import undefined_uses
from repro.core.activity import TLPActivity
from repro.isa.instructions import Imm, Reg
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ThreadProgram

__all__ = ["lint_activity", "lint_template"]


def _used_registers(program: ThreadProgram) -> set[int]:
    used: set[int] = set()
    for instr in program.flat:
        if instr.rd is not None:
            used.add(instr.rd)
        for operand in (instr.ra, instr.rb):
            if isinstance(operand, Reg):
                used.add(operand.index)
    return used


def lint_template(program: ThreadProgram) -> list[str]:
    """Single-template findings."""
    findings: list[str] = []

    # Read-before-write (registers do not survive the PF yield).
    report = undefined_uses(program)
    for kind, regs in report.items():
        if kind is BlockKind.PF or not regs:
            continue
        findings.append(
            f"{program.name}: registers {sorted(regs)} are read in "
            f"{kind.value} before any block defines them (they will be 0)"
        )

    # Loaded frame slots beyond the declared frame size.
    for instr in program.flat:
        if instr.op is Op.LOAD and instr.imm is not None:
            if instr.imm >= program.frame_words:
                findings.append(
                    f"{program.name}: LOAD of slot {instr.imm} beyond "
                    f"frame_words={program.frame_words}"
                )

    # Unannotated global READs alongside annotated ones.
    reads = [i for i in program.flat if i.op is Op.READ]
    if reads:
        annotated = [i for i in reads if i.access is not None]
        if annotated and len(annotated) != len(reads):
            findings.append(
                f"{program.name}: {len(reads) - len(annotated)} of "
                f"{len(reads)} READs lack region annotations; the prefetch "
                f"pass will leave them blocking"
            )

    # Register pressure (the compiler reserves the top of the file).
    # Only meaningful before the pass runs: transformed templates use the
    # reserved range themselves, by construction.
    if not program.has_prefetch:
        used = _used_registers(program)
        if used and max(used) >= 100:
            findings.append(
                f"{program.name}: uses register r{max(used)}; the prefetch "
                f"pass reserves the range above r112"
            )
    return findings


def lint_activity(activity: TLPActivity) -> list[str]:
    """Activity-wide findings (templates, spawns, FALLOC consistency)."""
    findings: list[str] = []
    for template in activity.templates:
        findings.extend(lint_template(template))

    # Spawn stores must land in slots the target actually loads.  A
    # transformed template is exempt: the pass redirects parameter loads
    # (pointer and stride slots) to scratch slots, so the original slot
    # is stored — its store still counts toward the SC — but no longer
    # read.
    for index, spawn in enumerate(activity.spawns):
        template = activity.template(spawn.template)
        if template.has_prefetch:
            continue
        loaded = {
            i.imm for i in template.flat if i.op is Op.LOAD
        }
        for slot in spawn.stores:
            if slot not in loaded:
                findings.append(
                    f"spawn {index} ({spawn.template}): stores slot {slot}, "
                    f"which the template never LOADs"
                )
        if spawn.sc == 0 and spawn.stores:
            findings.append(
                f"spawn {index} ({spawn.template}): has stores but SC 0"
            )

    # FALLOC SC arguments: an immediate SC larger than the target's frame
    # could still be correct (repeated-slot stores), but an SC of zero for
    # a template that LOADs parameters is a starved thread.
    for template in activity.templates:
        for instr in template.flat:
            if instr.op is not Op.FALLOC:
                continue
            target = activity.templates[instr.imm]
            target_loads = any(i.op is Op.LOAD for i in target.flat)
            sc = instr.ra.value if isinstance(instr.ra, Imm) else None
            if sc == 0 and target_loads:
                findings.append(
                    f"{template.name}: FALLOCs {target.name!r} with SC 0 "
                    f"but the target loads frame parameters"
                )
    return findings
