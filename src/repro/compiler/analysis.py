"""Global-access analysis for the prefetch pass.

The paper requires the compiler to "recognize when a thread uses
different types of global data" and to decide what to prefetch.  In this
reproduction the front-end's knowledge arrives as
:class:`~repro.isa.instructions.GlobalAccess` annotations on READ/WRITE
instructions (object name, pointer parameter slot, the region the thread
may touch, whether the index is statically known, and the estimated use
count).  This module groups annotated READs into prefetch *regions* and
applies the paper's worthwhileness rule:

    "In certain threads of bitcnt, a thread is reading one element of the
    256-element array, and the element to be read is not known before the
    execution starts, so the entire array needs to be prefetched.  In this
    case, it is faster to leave one memory access inside the thread rather
    than prefetch all elements of the array when only one will be used."

i.e. a region is prefetched only when the expected bytes actually used
amortize the bytes transferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ThreadProgram

__all__ = ["Region", "AccessAnalysis", "analyze_program", "AnalysisError"]


class AnalysisError(ValueError):
    """The access annotations are inconsistent with the program."""


@dataclass
class Region:
    """One candidate prefetch region inside a thread template."""

    obj: str
    base_slot: int
    start: LinExpr
    size_bytes: int
    #: Flat instruction indices of the READs hitting this region.
    read_indices: list[int] = field(default_factory=list)
    #: Flat instruction indices of annotated WRITEs hitting this region
    #: (write-back prefetching rewrites them to LSTOREs and emits a
    #: DMAPUT in PS).
    write_indices: list[int] = field(default_factory=list)
    #: Estimated dynamic executions of those accesses per thread run.
    expected_uses: int = 0
    #: True when any access has a statically-unknown index.
    dynamic: bool = False
    #: Byte distance between consecutive elements (4 = contiguous; larger
    #: values are gathered with a strided DMA command).
    stride_bytes: int = 4
    #: Frame slot holding the program's stride parameter (strided only).
    stride_param_slot: "int | None" = None

    @property
    def utilization(self) -> float:
        """Expected bytes touched per byte transferred."""
        return (4 * self.expected_uses) / self.size_bytes

    @property
    def first_use(self) -> int:
        """Flat index of the earliest access (CDFG scheduling priority)."""
        return min(self.read_indices + self.write_indices)

    @property
    def written(self) -> bool:
        """True when the thread also writes into this region."""
        return bool(self.write_indices)

    @property
    def is_strided(self) -> bool:
        return self.stride_bytes > 4

    @property
    def span_bytes(self) -> int:
        """Main-memory footprint (>= size_bytes for strided regions)."""
        if not self.is_strided:
            return self.size_bytes
        return (self.size_bytes // 4) * self.stride_bytes


@dataclass
class AccessAnalysis:
    """Everything the prefetch pass needs to know about one template."""

    program: ThreadProgram
    regions: list[Region]
    #: Objects the template WRITEs (annotated), by name.
    written_objects: set[str]
    #: Flat indices of READs with no annotation (never transformed).
    unannotated_reads: list[int]


def analyze_program(program: ThreadProgram) -> AccessAnalysis:
    """Group the template's annotated global READs into regions."""
    pointer_objs = {p.slot: p.obj for p in program.pointer_params}
    regions: dict[tuple, Region] = {}
    written: set[str] = set()
    unannotated: list[int] = []
    ex_range = program.block_ranges.get(BlockKind.EX)
    for index, instr in enumerate(program.flat):
        is_read = instr.op is Op.READ
        is_write = instr.op is Op.WRITE
        if not (is_read or is_write):
            continue
        access: GlobalAccess | None = instr.access
        if access is None:
            if is_read:
                unannotated.append(index)
            continue
        if is_write:
            written.add(access.obj)
            # A WRITE joins a region only when its pointer parameter is
            # declared (the write-back case); otherwise the annotation
            # just names the output object.
            if pointer_objs.get(access.base_slot) != access.obj:
                continue
        if ex_range is None or not ex_range[0] <= index < ex_range[1]:
            raise AnalysisError(
                f"{program.name}: annotated access outside the EX block"
            )
        declared = pointer_objs.get(access.base_slot)
        if declared is None:
            raise AnalysisError(
                f"{program.name}: READ of {access.obj!r} uses frame slot "
                f"{access.base_slot}, which is not a declared pointer param"
            )
        if declared != access.obj:
            raise AnalysisError(
                f"{program.name}: slot {access.base_slot} points into "
                f"{declared!r} but the access claims {access.obj!r}"
            )
        key = access.region_key
        region = regions.get(key)
        if region is None:
            region = Region(
                obj=access.obj,
                base_slot=access.base_slot,
                start=access.region_start,
                size_bytes=access.region_bytes,
                stride_bytes=access.stride_bytes,
                stride_param_slot=access.stride_param_slot,
            )
            regions[key] = region
        elif region.stride_param_slot != access.stride_param_slot:
            raise AnalysisError(
                f"{program.name}: accesses to one region disagree on the "
                f"stride parameter slot"
            )
        if is_read:
            region.read_indices.append(index)
        else:
            region.write_indices.append(index)
        region.expected_uses += access.expected_uses
        region.dynamic = region.dynamic or access.dynamic_index
    ordered = sorted(regions.values(), key=lambda r: r.first_use)
    return AccessAnalysis(
        program=program,
        regions=ordered,
        written_objects=written,
        unannotated_reads=unannotated,
    )


def select_regions(
    analysis: AccessAnalysis,
    worthwhile_threshold: float,
    allow_writeback: bool = False,
) -> list[Region]:
    """Apply the worthwhileness rule and structural constraints.

    A region is selected when

    * its expected utilization reaches ``worthwhile_threshold`` (the
      bitcnt rule), and
    * its object is not also written by the same template — unless
      ``allow_writeback`` is set *and* the writes are annotated into the
      same region, in which case the pass keeps the LS copy coherent
      with a DMAPUT write-back in PS, and
    * no other *selected* region shares its base pointer slot (the
      pointer-translation rewrite redirects the slot once).
    """
    selected: list[Region] = []
    used_slots: set[int] = set()
    for region in analysis.regions:
        if region.utilization < worthwhile_threshold:
            continue
        if region.obj in analysis.written_objects:
            if not allow_writeback:
                continue
            if not region.written:
                # Written through some other, un-annotated path: the LS
                # copy could go stale; skip.
                continue
            if region.is_strided:
                # Strided scatter-back is not implemented; leave it alone.
                continue
        if region.base_slot in used_slots:
            continue
        used_slots.add(region.base_slot)
        selected.append(region)
    return selected
