"""The prefetch compiler: analysis, CDFG utilities and the transform pass."""

from repro.compiler.analysis import (
    AccessAnalysis,
    AnalysisError,
    Region,
    analyze_program,
    select_regions,
)
from repro.compiler.cdfg import CDFG, build_cdfg, prefetch_order, undefined_uses
from repro.compiler.lint import lint_activity, lint_template
from repro.compiler.passes import (
    PassError,
    PrefetchOptions,
    prefetch_transform,
    transform_program,
)

__all__ = [
    "prefetch_transform",
    "transform_program",
    "PrefetchOptions",
    "PassError",
    "analyze_program",
    "select_regions",
    "AccessAnalysis",
    "AnalysisError",
    "Region",
    "CDFG",
    "build_cdfg",
    "prefetch_order",
    "undefined_uses",
    "lint_activity",
    "lint_template",
]
