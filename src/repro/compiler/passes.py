"""The prefetch transformation (the paper's Section 3 mechanism).

Given a thread template whose EX block READs global data, the pass

1. groups the annotated READs into regions and applies the
   worthwhileness rule (:mod:`repro.compiler.analysis`);
2. synthesizes a **PF code block** that, per selected region and in CDFG
   priority order (:mod:`repro.compiler.cdfg`), allocates an LS buffer
   (LSALLOC), computes the region's main-memory address from the thread's
   pointer parameter, programs the MFC (DMAGET, the Table 3 command), and
   stashes the *translated* pointer — ``buffer - region_start`` — into a
   reserved frame slot (STOREF);
3. redirects the PL load of the pointer parameter to the translated slot,
   so all address arithmetic downstream lands in the Local Store; and
4. rewrites every READ of a selected region into an **LLOAD** ("all READ
   instructions ... are replaced by the compiler with LOAD instructions
   that now access the prefetched data in the local memory").

Registers used by the generated PF code are taken from the top of the
register file; they are dead after the Wait-for-DMA yield (the register
file does not survive a context switch), which is why translated pointers
travel through the frame rather than registers.

Two extensions beyond the paper's initial implementation:

* ``allow_writeback=True`` — regions the thread also *writes* (with
  matching annotations) are prefetched too: their WRITEs become LSTOREs
  and the PS block gains a **DMAPUT** (+ DMAWAIT) that writes the buffer
  back before any post-stores signal consumers.  This is the "more
  advanced mechanism" direction of the paper's future work.
* ``split_transactions=True`` — ablation A1: one word-sized transfer per
  element instead of a block DMA command per region, modeling the
  split-transaction alternative the paper dismisses because a strided
  access "could generate too many transactions (and DMA performs it in
  one transaction)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.analysis import (
    Region,
    analyze_program,
    select_regions,
)
from repro.compiler.cdfg import prefetch_order
from repro.core.activity import TLPActivity
from repro.isa.instructions import Instruction, LinExpr, Reg
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ThreadProgram

__all__ = ["PrefetchOptions", "prefetch_transform", "transform_program", "PassError"]


class PassError(ValueError):
    """The prefetch pass cannot be applied to this program."""


@dataclass(frozen=True)
class PrefetchOptions:
    """Tuning knobs of the prefetch pass."""

    #: Minimum expected bytes-used / bytes-transferred for a region to be
    #: worth prefetching (the bitcnt rule).
    worthwhile_threshold: float = 0.5
    #: Frame capacity the transformed template must still fit in.
    max_frame_words: int = 32
    #: First register index the generated code may clobber.  PF scratch
    #: uses the first six; write-back regions take three persistent
    #: registers each above those.
    compiler_reg_base: int = 112
    #: First DMA tag id assigned to generated commands.
    tag_base: int = 0
    #: Prefetch regions the thread also writes: rewrite WRITEs into
    #: LSTOREs and DMAPUT the buffer back in PS.
    allow_writeback: bool = False
    #: Ablation A1: emit one word-sized transfer per element instead of a
    #: single block DMA command per region.
    split_transactions: bool = False


def prefetch_transform(
    activity: TLPActivity, options: PrefetchOptions | None = None
) -> TLPActivity:
    """Transform every template of ``activity``; structure is preserved.

    Templates without global READs "remain unchanged as in the original
    DTA" (Sec. 3).
    """
    opts = options or PrefetchOptions()
    new_templates = [transform_program(t, opts) for t in activity.templates]
    return activity.with_templates(new_templates)


def transform_program(
    program: ThreadProgram, options: PrefetchOptions | None = None
) -> ThreadProgram:
    """Transform one template (returns it unchanged if nothing to do)."""
    opts = options or PrefetchOptions()
    if program.has_prefetch:
        raise PassError(f"{program.name}: already has a PF block")
    analysis = analyze_program(program)
    regions = select_regions(
        analysis, opts.worthwhile_threshold, opts.allow_writeback
    )
    if not regions:
        return program
    regions = prefetch_order(regions)
    writeback = [r for r in regions if r.written]

    # Reserve one frame slot per region for the translated pointer, plus
    # one per strided region for the redirected (unit) stride value.
    next_slot = program.frame_words
    trans_slot: dict[int, int] = {}
    stride_slot: dict[int, int] = {}
    for r in regions:
        trans_slot[id(r)] = next_slot
        next_slot += 1
        if r.is_strided:
            stride_slot[id(r)] = next_slot
            next_slot += 1
    new_frame_words = next_slot
    if new_frame_words > opts.max_frame_words:
        raise PassError(
            f"{program.name}: transformed template needs {new_frame_words} "
            f"frame words > max {opts.max_frame_words}"
        )
    _check_register_budget(program, regions, writeback, opts)

    pf = _build_pf_block(regions, trans_slot, stride_slot, opts)
    pl_appendix, ps_prefix = _build_writeback(
        writeback, regions, trans_slot, opts
    )

    # Per-block flat-index shifts caused by the inserted code.
    shift_of = {
        BlockKind.PL: len(pf),
        BlockKind.EX: len(pf) + len(pl_appendix),
        BlockKind.PS: len(pf) + len(pl_appendix) + len(ps_prefix),
    }

    slot_redirect = {r.base_slot: trans_slot[id(r)] for r in regions}
    # Strided regions also redirect the program's stride parameter: the
    # gathered copy is contiguous, so the walk stride becomes one word.
    for r in regions:
        if r.is_strided:
            assert r.stride_param_slot is not None
            slot_redirect[r.stride_param_slot] = stride_slot[id(r)]
    selected_reads = {i for r in regions for i in r.read_indices}
    selected_writes = {i for r in regions for i in r.write_indices}

    new_blocks: dict[BlockKind, list[Instruction]] = {BlockKind.PF: pf}
    for kind in (BlockKind.PL, BlockKind.EX, BlockKind.PS):
        rng = program.block_ranges.get(kind)
        if rng is None:
            if kind is BlockKind.PL and pl_appendix:
                new_blocks[BlockKind.PL] = list(pl_appendix)
            if kind is BlockKind.PS and ps_prefix:
                raise PassError(
                    f"{program.name}: write-back needs a PS block to host "
                    f"the DMAPUT (STOP currently ends the EX block)"
                )
            continue
        out: list[Instruction] = []
        for index in range(*rng):
            instr = program.flat[index]
            if (
                kind is BlockKind.PL
                and instr.op is Op.LOAD
                and instr.imm in slot_redirect
            ):
                instr = Instruction(
                    op=Op.LOAD,
                    rd=instr.rd,
                    imm=slot_redirect[instr.imm],
                    comment=(instr.comment + " [translated ptr]").strip(),
                )
            elif index in selected_reads:
                assert instr.op is Op.READ
                instr = instr.replace_op(Op.LLOAD, drop_access=True)
            elif index in selected_writes:
                assert instr.op is Op.WRITE
                instr = instr.replace_op(Op.LSTORE, drop_access=True)
            if instr.spec.is_branch:
                assert isinstance(instr.target, int)
                instr = instr.with_target(instr.target + shift_of[kind])
            out.append(instr)
        if kind is BlockKind.PL:
            out.extend(pl_appendix)
        if kind is BlockKind.PS:
            out = list(ps_prefix) + out
        new_blocks[kind] = out

    _check_redirected(new_blocks, slot_redirect, program)

    return ThreadProgram(
        name=program.name,
        blocks={k: tuple(v) for k, v in new_blocks.items()},
        pointer_params=program.pointer_params,
        frame_words=new_frame_words,
    )


def _check_redirected(
    new_blocks: dict[BlockKind, list[Instruction]],
    slot_redirect: dict[int, int],
    program: ThreadProgram,
) -> None:
    """Every selected base pointer must have been loaded in PL.

    If the PL block never loads the pointer parameter the rewritten EX
    would dereference an untranslated register and read garbage from the
    LS — fail at compile time instead.
    """
    loaded = {
        i.imm for i in new_blocks.get(BlockKind.PL, []) if i.op is Op.LOAD
    }
    for base_slot, trans in slot_redirect.items():
        if trans not in loaded:
            raise PassError(
                f"{program.name}: pointer param in slot {base_slot} is never "
                f"loaded in PL; cannot redirect it to the prefetch buffer"
            )


def _region_offset(
    emit, region: Region, ROFF: int, RP: int, load_param,
) -> bool:
    """Emit code leaving the region's byte offset in ROFF.

    Returns False when the offset is statically zero (nothing emitted).
    ``load_param(dst_reg, slot)`` emits the parameter fetch (a frame LOAD
    in PF, or a register move in PS where the value was preloaded).
    """
    start = region.start
    if start.is_constant:
        if start.offset == 0:
            return False
        emit(Op.LI, rd=ROFF, imm=start.offset, comment="region start offset")
        return True
    load_param(RP, start.param_slot)
    emit(Op.MULI, rd=ROFF, ra=Reg(RP), imm=start.scale)
    if start.offset:
        emit(Op.ADDI, rd=ROFF, ra=Reg(ROFF), imm=start.offset)
    return True


def _build_pf_block(
    regions: list[Region],
    trans_slot: dict[int, int],
    stride_slot: dict[int, int],
    opts: PrefetchOptions,
) -> list[Instruction]:
    base = opts.compiler_reg_base
    RB, RP, ROFF, RMEM, RBUF, RTRANS = range(base, base + 6)
    pf: list[Instruction] = []

    def emit(op: Op, **kw) -> None:
        pf.append(Instruction(op=op, **kw))

    for i, region in enumerate(regions):
        tag = opts.tag_base + i
        emit(Op.LOAD, rd=RB, imm=region.base_slot,
             comment=f"base ptr of {region.obj}")
        have_off = _region_offset(
            emit, region, ROFF, RP,
            load_param=lambda rd, slot: emit(
                Op.LOAD, rd=rd, imm=slot, comment="region start parameter"
            ),
        )
        if have_off:
            emit(Op.ADD, rd=RMEM, ra=Reg(RB), rb=Reg(ROFF),
                 comment=f"mem addr of {region.obj} region")
        else:
            emit(Op.MOV, rd=RMEM, ra=Reg(RB))
        emit(Op.LSALLOC, rd=RBUF, imm=region.size_bytes,
             comment=f"LS buffer for {region.obj}")
        if opts.split_transactions:
            # Ablation A1: one transfer per word ("too many transactions").
            for w in range(region.size_bytes // 4):
                if w:
                    emit(Op.ADDI, rd=RMEM, ra=Reg(RMEM),
                         imm=region.stride_bytes)
                    emit(Op.ADDI, rd=RBUF, ra=Reg(RBUF), imm=4)
                emit(Op.DMAGET, ra=Reg(RBUF), rb=Reg(RMEM), imm=4, tag=tag)
            # Restore RBUF to the buffer base for the translation below.
            emit(Op.SUBI, rd=RBUF, ra=Reg(RBUF), imm=region.size_bytes - 4)
        elif region.is_strided:
            emit(Op.DMAGETS, ra=Reg(RBUF), rb=Reg(RMEM),
                 imm=region.size_bytes // 4, tag=tag,
                 stride=region.stride_bytes,
                 comment=f"gather {region.size_bytes // 4} words of "
                         f"{region.obj} (stride {region.stride_bytes})")
        else:
            emit(Op.DMAGET, ra=Reg(RBUF), rb=Reg(RMEM), imm=region.size_bytes,
                 tag=tag, comment=f"prefetch {region.size_bytes}B of {region.obj}")
        if have_off:
            emit(Op.SUB, rd=RTRANS, ra=Reg(RBUF), rb=Reg(ROFF),
                 comment="translated base = buf - start")
        else:
            emit(Op.MOV, rd=RTRANS, ra=Reg(RBUF))
        emit(Op.STOREF, ra=Reg(RTRANS), imm=trans_slot[id(region)],
             comment=f"stash translated {region.obj} ptr")
        if region.is_strided:
            # The gathered copy is contiguous: walk it one word at a time.
            emit(Op.LI, rd=RP, imm=4, comment="unit stride for the LS copy")
            emit(Op.STOREF, ra=Reg(RP), imm=stride_slot[id(region)],
                 comment=f"redirected {region.obj} stride")
    return pf


def _writeback_regs(index: int, opts: PrefetchOptions) -> tuple[int, int, int]:
    """The three persistent registers of write-back region ``index``.

    They are loaded at the end of PL and consumed at the start of PS —
    legal because the only register-clearing yield sits at the PF
    boundary, before PL.
    """
    first = opts.compiler_reg_base + 6 + 3 * index
    return first, first + 1, first + 2  # base ptr, translated ptr, param


def _build_writeback(
    writeback: list[Region],
    regions: list[Region],
    trans_slot: dict[int, int],
    opts: PrefetchOptions,
) -> tuple[list[Instruction], list[Instruction]]:
    """PL appendix (persistent loads) and PS prefix (DMAPUT + DMAWAIT)."""
    if not writeback:
        return [], []
    base = opts.compiler_reg_base
    _RB, _RP, ROFF, RMEM, RBUF, _RT = range(base, base + 6)
    pl: list[Instruction] = []
    ps: list[Instruction] = []

    for j, region in enumerate(writeback):
        W_RB, W_RT, W_RP = _writeback_regs(j, opts)
        pl.append(Instruction(op=Op.LOAD, rd=W_RB, imm=region.base_slot,
                              comment=f"[wb] real {region.obj} ptr"))
        pl.append(Instruction(op=Op.LOAD, rd=W_RT, imm=trans_slot[id(region)],
                              comment=f"[wb] translated {region.obj} ptr"))
        if not region.start.is_constant:
            pl.append(Instruction(op=Op.LOAD, rd=W_RP,
                                  imm=region.start.param_slot,
                                  comment="[wb] region start parameter"))

    for j, region in enumerate(writeback):
        W_RB, W_RT, W_RP = _writeback_regs(j, opts)
        tag = opts.tag_base + len(regions) + j

        def emit(op: Op, **kw) -> None:
            ps.append(Instruction(op=op, **kw))

        have_off = _region_offset(
            emit, region, ROFF, W_RP,
            load_param=lambda rd, slot: None,  # already in W_RP from PL
        )
        if have_off:
            emit(Op.ADD, rd=RMEM, ra=Reg(W_RB), rb=Reg(ROFF))
            emit(Op.ADD, rd=RBUF, ra=Reg(W_RT), rb=Reg(ROFF))
        else:
            emit(Op.MOV, rd=RMEM, ra=Reg(W_RB))
            emit(Op.MOV, rd=RBUF, ra=Reg(W_RT))
        emit(Op.DMAPUT, ra=Reg(RBUF), rb=Reg(RMEM), imm=region.size_bytes,
             tag=tag, comment=f"write back {region.size_bytes}B of {region.obj}")
        # Wait before any post-store signals a consumer that data is
        # ready (and before STOP frees the LS buffer under the MFC).
        emit(Op.DMAWAIT, tag=tag)
    return pl, ps


def _check_register_budget(
    program: ThreadProgram,
    regions: list[Region],
    writeback: list[Region],
    opts: PrefetchOptions,
) -> None:
    """Generated code must not clobber program registers (or overflow).

    PF scratch registers die at the yield, but if the MFC finishes
    *before* the PF block ends the thread falls straight through into PL
    without a register reset — so a clash with registers the program
    expects to survive would be a silent corruption.
    """
    base = opts.compiler_reg_base
    top = base + 6 + 3 * len(writeback)
    if top > 128:
        raise PassError(
            f"{program.name}: {len(writeback)} write-back regions need "
            f"registers r{base}..r{top - 1}, beyond the register file"
        )
    for instr in program.flat:
        used = [instr.rd] if instr.rd is not None else []
        for operand in (instr.ra, instr.rb):
            if isinstance(operand, Reg):
                used.append(operand.index)
        for r in used:
            if r is not None and r >= base:
                raise PassError(
                    f"{program.name}: register r{r} collides with the "
                    f"compiler-reserved range (>= r{base})"
                )
