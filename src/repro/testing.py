"""Utilities for testing DTA programs and for users exploring the ISA.

:func:`run_program` wraps a single thread template into a one-spawn
activity, runs it on a small machine and returns the
:class:`ProgramResult` — final cycle count, run statistics and helpers to
read memory.  It is the easiest way to execute a few instructions:

>>> from repro.isa import BlockKind, ThreadBuilder
>>> from repro.testing import run_program
>>> b = ThreadBuilder("add")
>>> s0, s1 = b.slot("a"), b.slot("b")
>>> with b.block(BlockKind.PL):
...     b.load("x", s0)
...     b.load("y", s1)
>>> with b.block(BlockKind.EX):
...     b.add("x", "x", "y")
...     b.write("rout", 0, "x")    # doctest: +SKIP
...     b.stop()                   # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.machine import Machine, RunResult
from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.isa.builder import ThreadBuilder
from repro.isa.program import ThreadProgram
from repro.sim.config import MachineConfig

__all__ = ["ProgramResult", "run_program", "run_templates", "small_config"]


def small_config(num_spes: int = 1, **overrides) -> MachineConfig:
    """A small, fast machine for unit tests (1 SPE by default)."""
    cfg = MachineConfig(num_spes=num_spes)
    if overrides:
        cfg = cfg.replace(**overrides)
    return cfg


@dataclass
class ProgramResult:
    """Outcome of a :func:`run_program` call."""

    machine: Machine
    result: RunResult

    @property
    def cycles(self) -> int:
        return self.result.cycles

    def read_global(self, name: str) -> list[int]:
        return self.machine.read_global(name)

    def word(self, name: str, index: int = 0) -> int:
        return self.read_global(name)[index]


def run_program(
    program: "ThreadProgram | ThreadBuilder",
    stores: "dict[int | str, int | ObjRef] | None" = None,
    globals_: "list[GlobalObject] | None" = None,
    config: MachineConfig | None = None,
    max_cycles: int = 5_000_000,
) -> ProgramResult:
    """Run one thread template to completion.

    ``stores`` maps frame slots (indices, or names if a builder is given)
    to initial values; :class:`~repro.core.activity.ObjRef` values resolve
    to global-object addresses.
    """
    builder: ThreadBuilder | None = None
    if isinstance(program, ThreadBuilder):
        builder = program
        program = builder.build()
    resolved: dict[int, "int | ObjRef"] = {}
    for slot, value in (stores or {}).items():
        if isinstance(slot, str):
            if builder is None:
                raise ValueError("named slots need a ThreadBuilder argument")
            slot = builder.slot(slot)
        resolved[slot] = value
    return run_templates(
        templates=[program],
        spawns=[SpawnSpec(template=program.name, stores=resolved)],
        globals_=globals_,
        config=config,
        max_cycles=max_cycles,
    )


def run_templates(
    templates: list[ThreadProgram],
    spawns: list[SpawnSpec],
    globals_: "list[GlobalObject] | None" = None,
    config: MachineConfig | None = None,
    max_cycles: int = 5_000_000,
) -> ProgramResult:
    """Run an ad-hoc activity built from ``templates`` and ``spawns``."""
    activity = TLPActivity(
        name=f"test:{templates[0].name}",
        templates=templates,
        globals_=globals_ or [],
        spawns=spawns,
    )
    machine = Machine(config if config is not None else small_config())
    machine.load(activity)
    result = machine.run(max_cycles=max_cycles)
    return ProgramResult(machine=machine, result=result)
