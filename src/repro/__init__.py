"""repro — a reproduction of "Exploiting DMA to enable non-blocking
execution in Decoupled Threaded Architecture" (Giorgi, Popovic, Puzovic,
IPPS/IPDPS workshops 2009).

The package provides:

* ``repro.sim`` — an event-skipping cycle engine, machine configuration
  (the paper's Tables 2/3/4) and statistics (Figures 5/9, Table 5);
* ``repro.isa`` — the DTA/SPU instruction set and an assembler DSL;
* ``repro.core`` — DTA threads, frames, synchronization counters and the
  distributed scheduler (LSE + DSE);
* ``repro.cell`` — the CellDTA machine model (SPU pipelines, Local
  Stores, MFC/DMA, bus, main memory, PPE);
* ``repro.compiler`` — the paper's contribution: the prefetch
  transformation that adds PF code blocks and rewrites global READs into
  local-store LOADs;
* ``repro.workloads`` — the paper's benchmarks (bitcnt, mmul, zoom) as
  parameterized DTA activity generators;
* ``repro.bench`` — the experiment harness regenerating every table and
  figure of the evaluation.

Quickstart
----------
>>> from repro import paper_config, run_activity, prefetch_transform
>>> from repro.workloads import matmul
>>> wl = matmul.build(n=8, threads=4)
>>> base = run_activity(wl.activity, paper_config(num_spes=4))
>>> pf = run_activity(prefetch_transform(wl.activity), paper_config(num_spes=4))
>>> base.cycles > pf.cycles
True
"""

from repro.cell.machine import Machine, RunResult, run_activity
from repro.compiler import PrefetchOptions, prefetch_transform
from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa import BlockKind, ThreadBuilder, ThreadProgram
from repro.isa.interpreter import FunctionalMachine, run_functional
from repro.sim.config import MachineConfig, latency1_config, paper_config
from repro.sim.stats import Bucket, MachineStats, TimeBreakdown

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "RunResult",
    "run_activity",
    "TLPActivity",
    "GlobalObject",
    "SpawnSpec",
    "ObjRef",
    "SpawnRef",
    "ThreadBuilder",
    "ThreadProgram",
    "BlockKind",
    "FunctionalMachine",
    "run_functional",
    "MachineConfig",
    "paper_config",
    "latency1_config",
    "prefetch_transform",
    "PrefetchOptions",
    "Bucket",
    "TimeBreakdown",
    "MachineStats",
    "__version__",
]
