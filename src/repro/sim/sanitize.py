"""Opt-in invariant sanitizer.

The simulator's components already fail loudly on many protocol
violations (``LifecycleError`` on SC underflow, ``Frame.release`` on a
free frame).  The sanitizer is an *independent* cross-check layer: it
keeps its own shadow state and verifies, from outside the component, the
invariants the DTA protocol relies on:

* a thread's Synchronization Counter is never decremented below zero;
* a frame is never freed twice, nor assigned while already assigned;
* two in-flight DMA commands never write overlapping Local Store ranges
  on the same SPE;
* every bus transfer is delivered to its endpoint exactly once (the
  fault injector may *duplicate* transfers — the bus must absorb the
  duplicates before they reach an endpoint);
* a producer store (PS) never writes a frame word of a thread that has
  already started executing — the data-fault recovery squash preserves
  SC bookkeeping, so a late store would silently corrupt a re-executing
  thread's inputs.

It is opt-in (``MachineConfig.sanitize`` / ``repro ... --sanitize``)
because the shadow state costs memory and every hook costs time.  A
violation raises :class:`InvariantViolation` immediately, at the cycle
and site where the invariant broke.
"""

from __future__ import annotations

__all__ = ["Sanitizer", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A protocol invariant the simulator relies on was broken."""


class Sanitizer:
    """Shadow-state invariant checker shared by a machine's components."""

    def __init__(self) -> None:
        #: site -> set of currently-assigned frame addresses.
        self._frames: dict[str, set[int]] = {}
        #: site -> command_id -> (start, end) of the in-flight LS write.
        self._dma: dict[str, dict[int, tuple[int, int]]] = {}
        #: bus-transfer sequence numbers already delivered.
        self._delivered: set[int] = set()
        #: tids that have started executing (PF or EX) and not yet
        #: stopped; their frames must receive no further producer stores.
        self._started: set[int] = set()
        #: Total hook invocations (lets tests assert the sanitizer ran).
        self.checks = 0

    # -- synchronization counters -------------------------------------------

    def sc_decrement(self, site: str, tid: int, sc_before: int) -> None:
        """About to decrement thread ``tid``'s SC, currently ``sc_before``."""
        self.checks += 1
        if sc_before <= 0:
            raise InvariantViolation(
                f"{site}: SC underflow — store would decrement thread "
                f"{tid}'s synchronization counter below zero "
                f"(sc={sc_before})"
            )

    # -- frame lifecycle ----------------------------------------------------

    def frame_assigned(self, site: str, addr: int) -> None:
        self.checks += 1
        assigned = self._frames.setdefault(site, set())
        if addr in assigned:
            raise InvariantViolation(
                f"{site}: frame @{addr:#x} assigned while already assigned"
            )
        assigned.add(addr)

    def frame_released(self, site: str, addr: int) -> None:
        self.checks += 1
        assigned = self._frames.setdefault(site, set())
        if addr not in assigned:
            raise InvariantViolation(
                f"{site}: double free of frame @{addr:#x} "
                f"(not currently assigned)"
            )
        assigned.discard(addr)

    # -- DMA local-store writes ---------------------------------------------

    def dma_write_begin(
        self, site: str, command_id: int, ls_addr: int, size: int
    ) -> None:
        """A DMA GET command will write LS ``[ls_addr, ls_addr+size)``."""
        self.checks += 1
        inflight = self._dma.setdefault(site, {})
        end = ls_addr + size
        for other_id, (o_start, o_end) in inflight.items():
            if ls_addr < o_end and o_start < end:
                raise InvariantViolation(
                    f"{site}: DMA command {command_id} writes LS "
                    f"[{ls_addr:#x}, {end:#x}) overlapping in-flight "
                    f"command {other_id} [{o_start:#x}, {o_end:#x})"
                )
        inflight[command_id] = (ls_addr, end)

    def dma_write_end(self, site: str, command_id: int) -> None:
        self.checks += 1
        self._dma.setdefault(site, {}).pop(command_id, None)

    # -- thread execution vs frame stores -----------------------------------

    def thread_started(self, site: str, tid: int) -> None:
        """Thread ``tid`` was dispatched (SPU pipeline or XP offload).

        Idempotent: a squashed-and-re-executed thread registers again.
        The tid intentionally stays registered across a recovery squash —
        the squash preserves SC bookkeeping, so no producer store may
        legally arrive even while the thread waits to re-execute.
        """
        self.checks += 1
        self._started.add(tid)

    def frame_store(self, site: str, tid: int) -> None:
        """A producer store is about to commit into ``tid``'s frame."""
        self.checks += 1
        if tid in self._started:
            raise InvariantViolation(
                f"{site}: PS store into the frame of thread {tid}, "
                f"which has already started executing"
            )

    def thread_done(self, tid: int) -> None:
        self.checks += 1
        self._started.discard(tid)

    # -- bus delivery -------------------------------------------------------

    def message_delivered(self, seq: int) -> None:
        """Transfer ``seq`` just reached its endpoint's ``deliver``."""
        self.checks += 1
        if seq in self._delivered:
            raise InvariantViolation(
                f"bus transfer #{seq} delivered more than once "
                f"(duplicate not absorbed)"
            )
        self._delivered.add(seq)
