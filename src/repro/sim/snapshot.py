"""Deterministic whole-machine checkpoint/restore.

A checkpoint captures *everything mutable* about a running
:class:`~repro.cell.machine.Machine` mid-flight — SPU pipelines and
fast-forward state, LSE/DSE queues, MFC in-flight transfers, bus
arbitration, main-memory contents and queues, frames/threads, statistics,
fault-injector RNG streams, sanitizer bookkeeping and attached hub/tracer
state — such that a fresh process can rebuild the machine and continue
**bit-identically**: run-to-completion equals run-to-checkpoint +
restore + continue, for stats, workload outputs and profiles alike.

Approach
--------
Structure that is *derivable from the config* (the component graph, the
wiring, registration order) is not serialized: restore rebuilds it by
constructing ``Machine(config)`` and re-loading the activity, then lays
the saved mutable state over it.  Long-lived structural objects — the
machine, the engine, every registered component, the SPE shells, the
activity and its thread programs, the config — cross the pickle boundary
as *persistent references* resolved against the freshly built machine.
Everything else (stats, local stores, frames, thread instances, DMA
commands, in-flight messages, metric instruments, RNG streams) is pickled
by value in **one** pickle, whose memo preserves every shared-object
identity: the ``DmaCommand`` inside ``mfc._inflight`` and the one inside
a pending ``mfc.retry`` heap callback deserialize to the same object,
exactly as they were.

The event heap serializes because :meth:`Engine.call_at` sites schedule
:class:`~repro.sim.engine.Callback` descriptors (a registered *kind*
plus plain payload) instead of closures; a heap holding a bare callable
cannot be checkpointed and is rejected loudly.

File format
-----------
Line 1 is a JSON header::

    {"magic": "repro-checkpoint", "version": 1, "cycle": N,
     "payload_bytes": M, "digest": "<sha256 of the payload>"}

followed by exactly ``payload_bytes`` of payload: two concatenated
pickles — part A (config + activity + metadata, loadable without an
existing machine) and part B (the persistent-reference state).  The
digest covers the whole payload, so torn writes, truncation and bit rot
are detected and rejected (:class:`CheckpointError`), never silently
loaded.  Writes go through a temp file + ``os.replace`` so a crash
mid-save can never produce a half-written file under the final name.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import typing

from repro.sim.component import Component
from repro.sim.engine import Callback

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.machine import Machine

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint",
           "read_header", "FORMAT_VERSION", "MAGIC"]

MAGIC = "repro-checkpoint"
FORMAT_VERSION = 1

#: Machine attributes that belong to the *run harness*, not the machine
#: state: re-initialized fresh on restore, never serialized.
_MACHINE_EXCLUDE = frozenset({
    "_resumed", "_last_checkpoint", "_ckpt_dir", "_ckpt_name",
})


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, or is unusable and was rejected."""


# -- persistent-reference pickling -------------------------------------------


class _Pickler(pickle.Pickler):
    """Maps structural objects to persistent IDs; all else by value."""

    def __init__(self, file, machine: "Machine") -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._machine = machine
        self._engine = machine.engine
        # id()-keyed maps: every key is kept alive by the machine for the
        # duration of the dump, so ids are stable and collision-free.
        # (Keying by the objects themselves would invoke user __eq__/
        # __hash__, which ThreadProgram and friends do not guarantee.)
        self._components = {
            id(c): c._order for c in machine.engine.components
        }
        self._spes = {id(s): i for i, s in enumerate(machine.spes)}
        self._programs = {id(p): i for i, p in enumerate(machine._programs)}

    def persistent_id(self, obj):
        if obj is self._machine:
            return ("machine",)
        if obj is self._engine:
            return ("engine",)
        if obj is self._machine.config:
            return ("config",)
        if obj is self._machine._activity:
            return ("activity",)
        oid = id(obj)
        order = self._components.get(oid)
        if order is not None:
            return ("component", order)
        spe = self._spes.get(oid)
        if spe is not None:
            return ("spe", spe)
        prog = self._programs.get(oid)
        if prog is not None:
            return ("program", prog)
        return None


class _Unpickler(pickle.Unpickler):
    """Resolves persistent IDs against a freshly constructed machine."""

    def __init__(self, file, machine: "Machine") -> None:
        super().__init__(file)
        self._machine = machine

    def persistent_load(self, pid):
        kind = pid[0]
        m = self._machine
        if kind == "machine":
            return m
        if kind == "engine":
            return m.engine
        if kind == "config":
            return m.config
        if kind == "activity":
            return m._activity
        if kind == "component":
            return m.engine.components[pid[1]]
        if kind == "spe":
            return m.spes[pid[1]]
        if kind == "program":
            return m._programs[pid[1]]
        raise CheckpointError(f"unknown persistent reference {pid!r}")


# -- save ---------------------------------------------------------------------


def _check_heap_serializable(machine: "Machine") -> None:
    for entry in machine.engine._heap:
        target = entry[4]
        if not isinstance(target, (Component, Callback)):
            raise CheckpointError(
                f"cannot checkpoint: pending event at cycle {entry[0]} is a "
                f"bare callable ({target!r}); production call_at sites must "
                f"schedule Callback descriptors"
            )


def _capture(machine: "Machine") -> dict:
    """The persistent-reference state dict (part B)."""
    engine = machine.engine
    return {
        "engine": {
            "now": engine._now,
            "heap": list(engine._heap),
            "seq": engine._seq,
            "live": engine._live,
            "callbacks": engine._callbacks,
            "ticks_dispatched": engine.ticks_dispatched,
            "callbacks_dispatched": engine.callbacks_dispatched,
            "stale_skipped": engine.stale_skipped,
            "compactions": engine.compactions,
        },
        "components": [c.snapshot_state() for c in engine.components],
        "spes": [dict(spe.__dict__) for spe in machine.spes],
        "machine": {
            k: v for k, v in machine.__dict__.items()
            if k not in _MACHINE_EXCLUDE
        },
    }


def save_checkpoint(machine: "Machine", path: str) -> str:
    """Write a checkpoint of ``machine`` to ``path`` atomically.

    Returns ``path``.  The machine must have an activity loaded; the
    pending event heap must hold only serializable descriptors.
    """
    if machine._activity is None:
        raise CheckpointError("cannot checkpoint a machine with no activity")
    _check_heap_serializable(machine)
    meta = {
        "cycle": machine.engine.now,
        "activity": machine._activity.name,
        "num_components": len(machine.engine.components),
        "hub_attached": machine.hub is not None,
        "tracer_attached": machine.tracer is not None,
    }
    buf = io.BytesIO()
    try:
        # Part A: loadable with no machine (plain pickle, no persistent
        # refs) — what restore needs to *construct* one.
        pickle.dump(
            {"config": machine.config, "activity": machine._activity,
             "meta": meta},
            buf, protocol=pickle.HIGHEST_PROTOCOL,
        )
        # Part B: the full mutable state, one pickle, shared memo.
        _Pickler(buf, machine).dump(_capture(machine))
    except (TypeError, AttributeError, pickle.PicklingError) as exc:
        raise CheckpointError(
            f"machine state is not serializable: {exc} (file-backed trace "
            f"sinks and ad-hoc closures cannot be checkpointed)"
        ) from exc
    payload = buf.getvalue()
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "cycle": meta["cycle"],
        "payload_bytes": len(payload),
        "digest": hashlib.sha256(payload).hexdigest(),
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header).encode("ascii") + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


# -- load ---------------------------------------------------------------------


def read_header(path: str) -> dict:
    """Validate and return the header of the checkpoint at ``path``."""
    try:
        with open(path, "rb") as fh:
            line = fh.readline()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        header = json.loads(line)
    except ValueError:
        raise CheckpointError(
            f"{path}: not a checkpoint (unparseable header)"
        ) from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise CheckpointError(f"{path}: not a checkpoint (bad magic)")
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format version {header.get('version')} is "
            f"not supported (this build reads version {FORMAT_VERSION})"
        )
    return header


def _read_payload(path: str) -> tuple[dict, bytes]:
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.readline()
        payload = fh.read()
    expected = header.get("payload_bytes")
    if len(payload) != expected:
        raise CheckpointError(
            f"{path}: truncated checkpoint ({len(payload)} of {expected} "
            f"payload bytes present)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("digest"):
        raise CheckpointError(
            f"{path}: checkpoint payload digest mismatch (file is corrupt)"
        )
    return header, payload


def load_checkpoint(path: str) -> "Machine":
    """Rebuild the machine checkpointed at ``path``, mid-flight.

    The returned machine is ready for ``run()``: calling it continues the
    simulation from the checkpointed cycle and produces results
    bit-identical to the uninterrupted run.
    """
    from repro.cell.machine import Machine

    _header, payload = _read_payload(path)
    buf = io.BytesIO(payload)
    try:
        part_a = pickle.load(buf)
    except Exception as exc:
        raise CheckpointError(
            f"{path}: checkpoint metadata is unreadable: {exc}"
        ) from exc
    meta = part_a["meta"]
    machine = Machine(part_a["config"])
    if meta["hub_attached"]:
        # Attach a placeholder hub *before* restoring, so the sampler
        # component exists at the same registration order as when the
        # checkpoint was taken; its state (and the machine's hub) are
        # then overwritten wholesale by the restore below.
        from repro.obs.hub import MetricsHub

        machine.attach_hub(MetricsHub())
    machine.load(part_a["activity"])
    if len(machine.engine.components) != meta["num_components"]:
        raise CheckpointError(
            f"{path}: rebuilt machine has "
            f"{len(machine.engine.components)} components, checkpoint "
            f"recorded {meta['num_components']} — config drift?"
        )
    try:
        state = _Unpickler(buf, machine).load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"{path}: checkpoint state is unreadable: {exc}"
        ) from exc

    engine = machine.engine
    es = state["engine"]
    engine._now = es["now"]
    engine._heap[:] = es["heap"]
    engine._seq = es["seq"]
    engine._live = es["live"]
    engine._callbacks = es["callbacks"]
    engine.ticks_dispatched = es["ticks_dispatched"]
    engine.callbacks_dispatched = es["callbacks_dispatched"]
    engine.stale_skipped = es["stale_skipped"]
    engine.compactions = es["compactions"]
    for component, cstate in zip(engine.components, state["components"]):
        component.restore_state(cstate)
    for spe, sstate in zip(machine.spes, state["spes"]):
        spe.__dict__.update(sstate)
    machine.__dict__.update(state["machine"])
    machine._resumed = True
    return machine
