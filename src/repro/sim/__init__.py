"""Simulation kernel: engine, components, configuration and statistics."""

from repro.sim.component import Component
from repro.sim.config import (
    BusConfig,
    DSEConfig,
    LocalStoreConfig,
    LSEConfig,
    MachineConfig,
    MainMemoryConfig,
    MFCConfig,
    SPUConfig,
    latency1_config,
    paper_config,
)
from repro.sim.engine import Engine, SimulationDeadlock, SimulationLimitExceeded
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.stats import (
    Bucket,
    BusStats,
    InstructionMix,
    MachineStats,
    MemoryStats,
    MFCStats,
    SchedulerStats,
    SpuStats,
    TimeBreakdown,
)

__all__ = [
    "Component",
    "Engine",
    "SimulationDeadlock",
    "SimulationLimitExceeded",
    "Tracer",
    "TraceEvent",
    "MachineConfig",
    "MainMemoryConfig",
    "LocalStoreConfig",
    "BusConfig",
    "MFCConfig",
    "SPUConfig",
    "LSEConfig",
    "DSEConfig",
    "paper_config",
    "latency1_config",
    "Bucket",
    "TimeBreakdown",
    "InstructionMix",
    "SpuStats",
    "BusStats",
    "MemoryStats",
    "MFCStats",
    "SchedulerStats",
    "MachineStats",
]
