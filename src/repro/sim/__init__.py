"""Simulation kernel: engine, components, configuration and statistics."""

from repro.sim.component import Component
from repro.sim.config import (
    BusConfig,
    DSEConfig,
    LocalStoreConfig,
    LSEConfig,
    MachineConfig,
    MainMemoryConfig,
    MFCConfig,
    SPUConfig,
    WatchdogConfig,
    latency1_config,
    paper_config,
)
from repro.sim.engine import (
    Callback,
    Engine,
    SimulationDeadlock,
    SimulationLimitExceeded,
    register_callback,
)
from repro.sim.sanitize import InvariantViolation, Sanitizer
from repro.sim.snapshot import CheckpointError, load_checkpoint, save_checkpoint
from repro.sim.watchdog import ProgressWatchdog, SimulationLivelock
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.stats import (
    Bucket,
    BusStats,
    FaultStats,
    InstructionMix,
    MachineStats,
    MemoryStats,
    MFCStats,
    SchedulerStats,
    SpuStats,
    TimeBreakdown,
)

__all__ = [
    "Component",
    "Engine",
    "Callback",
    "register_callback",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "SimulationDeadlock",
    "SimulationLimitExceeded",
    "SimulationLivelock",
    "ProgressWatchdog",
    "Sanitizer",
    "InvariantViolation",
    "Tracer",
    "TraceEvent",
    "MachineConfig",
    "MainMemoryConfig",
    "LocalStoreConfig",
    "BusConfig",
    "MFCConfig",
    "SPUConfig",
    "LSEConfig",
    "DSEConfig",
    "WatchdogConfig",
    "paper_config",
    "latency1_config",
    "Bucket",
    "TimeBreakdown",
    "InstructionMix",
    "SpuStats",
    "BusStats",
    "MemoryStats",
    "MFCStats",
    "SchedulerStats",
    "FaultStats",
    "MachineStats",
]
