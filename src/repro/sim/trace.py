"""Execution tracing.

A :class:`Tracer` records structured events from the simulated hardware —
thread lifecycle transitions, dispatches and DMA activity — so tests and
users can observe *why* a run behaved the way it did (e.g. verify that a
thread really yielded the pipeline at its PF boundary and resumed only
after its tag group completed).

Tracing is off by default (a ``None`` tracer costs one attribute check
per would-be event).  Attach one with
:meth:`repro.cell.machine.Machine.attach_tracer`:

>>> from repro.sim.trace import Tracer
>>> tracer = Tracer(kinds={"thread-ready", "dispatch"})   # doctest: +SKIP
>>> machine.attach_tracer(tracer)                         # doctest: +SKIP
>>> machine.run()                                         # doctest: +SKIP
>>> print(tracer.format())                                # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    source: str
    kind: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.cycle:>8}] {self.source:<8} {self.kind:<16} {extras}"


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered.

    Parameters
    ----------
    kinds:
        Only record these event kinds (``None`` records everything).
    limit:
        Stop recording after this many events (protects long runs from
        unbounded memory; the ``dropped`` counter keeps the total).
    """

    def __init__(
        self, kinds: "Iterable[str] | None" = None, limit: int | None = 100_000
    ) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def emit(self, cycle: int, source: str, kind: str, **fields: object) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(cycle=cycle, source=source, kind=kind, fields=fields)
        )

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.fields.get("tid") == tid]

    def kinds_seen(self) -> set[str]:
        return {e.kind for e in self.events}

    def __len__(self) -> int:
        return len(self.events)

    def format(self, max_lines: int | None = None) -> str:
        lines = [str(e) for e in self.events]
        if max_lines is not None and len(lines) > max_lines:
            omitted = len(lines) - max_lines
            lines = lines[:max_lines] + [f"... ({omitted} more events)"]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at the limit)")
        return "\n".join(lines)
