"""Execution tracing — backwards-compatible alias of :mod:`repro.obs.trace`.

The tracer grew sinks (JSONL streaming, tees, interval builders) and
moved into the observability subsystem as tracer v2.  This module keeps
the historical import path working: ``repro.sim.trace.Tracer`` *is*
:class:`repro.obs.trace.Tracer`, default-configured with the original
bounded in-memory event list.
"""

from __future__ import annotations

from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TeeSink,
    TraceEvent,
    Tracer,
    TraceSink,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
]
