"""The ``REPRO_SIM_FAST`` escape hatch.

The simulator carries two implementations of its hottest loops: the
original, straight-line-readable *slow path* and a decoded/fast-forward
*fast path* (see :mod:`repro.isa.decoded` and ``docs/PERFORMANCE.md``).
Both produce bit-identical architectural results and statistics — the
equivalence suite in ``tests/integration/test_fastpath.py`` enforces it —
but when chasing a suspected fast-path bug, ``REPRO_SIM_FAST=0`` restores
the original code everywhere.

The flag is read when a machine (or functional interpreter) is
*constructed*, never at import time, so tests can flip it per-run with
``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

__all__ = ["fast_enabled"]

_FALSEY = frozenset({"0", "false", "off", "no", ""})


def fast_enabled(default: bool = True) -> bool:
    """Whether the decoded/fast-forward simulator paths are enabled.

    Controlled by the ``REPRO_SIM_FAST`` environment variable; unset
    means ``default`` (on).  Any of ``0/false/off/no`` disables.
    """
    value = os.environ.get("REPRO_SIM_FAST")
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY
