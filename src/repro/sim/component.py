"""Base class for simulated hardware components.

A :class:`Component` is anything the :class:`~repro.sim.engine.Engine`
clocks: an SPU pipeline, a bus, the main memory, a scheduler element.  The
engine is *event-skipping*: a component is only ticked on cycles where it
asked to be ticked (via the return value of :meth:`Component.tick`) or where
another component woke it (via :meth:`Component.wake`).  A component that has
nothing to do simply returns ``None`` and sleeps until woken.

This keeps the simulator cycle-accurate while skipping the long dead periods
that dominate the paper's workloads (150-cycle memory stalls, idle SPUs).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = ["Component"]


class Component:
    """A clocked hardware unit.

    Subclasses implement :meth:`tick` and may override :meth:`describe_state`
    to improve deadlock diagnostics.  ``priority`` orders same-cycle ticks:
    lower values tick first (producers such as buses and memories should
    tick before consumers such as pipelines so responses arriving "this
    cycle" are visible).
    """

    #: Same-cycle tick ordering; lower ticks first.
    priority: int = 50

    #: Attributes excluded from :meth:`snapshot_state` — derived caches a
    #: subclass rebuilds in :meth:`restore_state` instead of serializing.
    _SNAPSHOT_EXCLUDE: frozenset = frozenset()

    def __init__(self, name: str) -> None:
        self.name = name
        self._engine: "Engine | None" = None
        #: Registration index; breaks same-(cycle, priority) tick ties.
        #: Stable across a run, so within-cycle order never depends on
        #: *when* a tick was pushed — a prerequisite for event-skipping
        #: optimizations that schedule ticks many cycles ahead.
        self._order: int = -1
        #: Next cycle at which a tick is already scheduled (lazy-deleted).
        self._scheduled_at: int | None = None
        #: Optional tracer (see :mod:`repro.sim.trace`); None = disabled.
        self._tracer = None
        #: Optional metrics hub (see :mod:`repro.obs.hub`); None = disabled.
        self._hub = None

    def _trace(self, kind: str, **fields: object) -> None:
        """Record a trace event if a tracer is attached (cheap otherwise)."""
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.now, self.name, kind, **fields)

    def bind_hub(self, hub) -> None:
        """Attach a :class:`~repro.obs.hub.MetricsHub` and bind instruments.

        Called once by ``Machine.attach_hub``; hot paths must only ever
        consult the instrument attributes created in
        :meth:`_bind_metrics` (``None`` when no hub is attached).
        """
        self._hub = hub
        self._bind_metrics(hub)

    def _bind_metrics(self, hub) -> None:
        """Create this component's hub instruments (override as needed)."""

    # -- engine wiring -----------------------------------------------------

    @property
    def engine(self) -> "Engine":
        """The engine this component is registered with."""
        if self._engine is None:
            raise RuntimeError(f"component {self.name!r} is not registered")
        return self._engine

    def _attach(self, engine: "Engine") -> None:
        if self._engine is not None and self._engine is not engine:
            raise RuntimeError(
                f"component {self.name!r} is already attached to another engine"
            )
        self._engine = engine

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.engine.now

    # -- scheduling --------------------------------------------------------

    def wake(self, cycle: int | None = None) -> None:
        """Request a tick at ``cycle`` (default: next cycle).

        Waking at or before an already-scheduled tick is a no-op, so
        components can be woken redundantly without flooding the event
        queue.
        """
        self.engine.schedule(self, cycle)

    def tick(self, now: int) -> int | None:
        """Advance the component at cycle ``now``.

        Returns the next cycle at which the component wants to tick, or
        ``None`` to sleep until explicitly woken.  Implementations must
        never return a cycle ``<= now``.
        """
        raise NotImplementedError

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Mutable state for a machine checkpoint.

        The default captures the full ``__dict__`` minus
        ``_SNAPSHOT_EXCLUDE``; the snapshot pickler maps engine/component/
        machine references inside it to persistent IDs, so subclasses only
        need to override when they hold state that must be *rebuilt*
        rather than serialized (see ``SPU``).
        """
        exclude = self._SNAPSHOT_EXCLUDE
        if not exclude:
            return dict(self.__dict__)
        return {k: v for k, v in self.__dict__.items() if k not in exclude}

    def restore_state(self, state: dict) -> None:
        """Apply a :meth:`snapshot_state` dict captured at the same cycle."""
        self.__dict__.update(state)

    # -- diagnostics -------------------------------------------------------

    def describe_state(self) -> str:
        """One-line state description used in deadlock dumps."""
        return "<no state description>"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
