"""Machine configuration for the CellDTA reproduction.

The dataclasses below encode every architectural parameter used by the
simulator.  The defaults reproduce Tables 2, 3 and 4 of the paper:

* Table 2 — memory subsystem: main memory of 512 MB with a 150-cycle
  latency and a single port; a 156 kB Local Store with a 6-cycle latency
  and three ports.
* Table 4 — communication subsystem: four buses of 8 bytes/cycle each
  (the paper quotes 8.1 GB/s at 2.4 GHz for a single bus) and an MFC
  (DMA controller) with a 16-entry command queue and a 30-cycle command
  latency.
* Table 3 is the DMA command format and lives in
  :mod:`repro.isa.instructions` (see :class:`~repro.isa.instructions.DmaGet`).

Everything is a plain frozen dataclass so configurations hash, compare and
serialize trivially, and so that an experiment can never mutate the machine
description of another experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan

__all__ = [
    "MainMemoryConfig",
    "LocalStoreConfig",
    "BusConfig",
    "MFCConfig",
    "SPUConfig",
    "CacheConfig",
    "LSEConfig",
    "DSEConfig",
    "WatchdogConfig",
    "MachineConfig",
    "paper_config",
    "latency1_config",
    "cached_config",
]

KIB = 1024
MIB = 1024 * KIB

#: Size in bytes of one machine word.  The paper's bandwidth argument relies
#: on a scalar READ moving 4 bytes while the network moves 32 bytes/cycle.
WORD_SIZE = 4


@dataclass(frozen=True)
class MainMemoryConfig:
    """Off-chip main memory (Table 2, "Main memory")."""

    #: Total capacity in bytes (address-space bound; storage is sparse).
    size: int = 512 * MIB
    #: Access latency in cycles from request acceptance to response.
    latency: int = 150
    #: Number of request ports; each port accepts one request per cycle.
    ports: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"main memory size must be positive, got {self.size}")
        if self.latency < 1:
            raise ValueError(f"main memory latency must be >= 1, got {self.latency}")
        if self.ports < 1:
            raise ValueError(f"main memory needs >= 1 port, got {self.ports}")


@dataclass(frozen=True)
class LocalStoreConfig:
    """Per-SPE Local Store (Table 2, "Local Store").

    The LS holds thread code (not modeled as storage), the frame region and
    the prefetch buffer region.  ``frame_region`` bytes are reserved for
    frames; the remainder is the prefetch heap.
    """

    size: int = 156 * KIB
    latency: int = 6
    ports: int = 3
    #: Bytes reserved for thread frames (the rest backs prefetch buffers).
    frame_region: int = 64 * KIB

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"local store size must be positive, got {self.size}")
        if self.latency < 1:
            raise ValueError(f"local store latency must be >= 1, got {self.latency}")
        if self.ports < 1:
            raise ValueError(f"local store needs >= 1 port, got {self.ports}")
        if not 0 < self.frame_region < self.size:
            raise ValueError(
                f"frame region must fit inside the local store "
                f"(got {self.frame_region} of {self.size})"
            )

    @property
    def prefetch_region(self) -> int:
        """Bytes available to the prefetch-buffer allocator."""
        return self.size - self.frame_region


@dataclass(frozen=True)
class BusConfig:
    """Element-interconnect bus (Table 4, "Bus")."""

    #: Number of independent buses; transfers are assigned round-robin.
    num_buses: int = 4
    #: Payload bytes each bus moves per cycle.
    bytes_per_cycle: int = 8
    #: Fixed per-message arbitration/propagation latency in cycles.
    arbitration_latency: int = 1

    def __post_init__(self) -> None:
        if self.num_buses < 1:
            raise ValueError(f"need >= 1 bus, got {self.num_buses}")
        if self.bytes_per_cycle < 1:
            raise ValueError(
                f"bus width must be >= 1 byte/cycle, got {self.bytes_per_cycle}"
            )
        if self.arbitration_latency < 0:
            raise ValueError(
                f"arbitration latency must be >= 0, got {self.arbitration_latency}"
            )

    @property
    def total_bandwidth(self) -> int:
        """Aggregate bytes per cycle across all buses."""
        return self.num_buses * self.bytes_per_cycle


@dataclass(frozen=True)
class MFCConfig:
    """Memory Flow Controller / DMA engine (Table 4, "MFC")."""

    #: DMA command queue depth; a full queue back-pressures the SPU.
    command_queue_size: int = 16
    #: Cycles the MFC spends decoding a command before issuing transfers.
    command_latency: int = 30
    #: Largest single bus transfer the MFC issues; bigger DMAs are split.
    max_transfer_size: int = 128
    #: Number of DMA tag groups available to software.
    num_tags: int = 32

    def __post_init__(self) -> None:
        if self.command_queue_size < 1:
            raise ValueError(
                f"MFC queue must hold >= 1 command, got {self.command_queue_size}"
            )
        if self.command_latency < 0:
            raise ValueError(
                f"MFC command latency must be >= 0, got {self.command_latency}"
            )
        if self.max_transfer_size < WORD_SIZE:
            raise ValueError(
                f"MFC max transfer must be >= {WORD_SIZE}, got {self.max_transfer_size}"
            )
        if self.num_tags < 1:
            raise ValueError(f"MFC needs >= 1 tag, got {self.num_tags}")


@dataclass(frozen=True)
class CacheConfig:
    """Optional per-SPE data cache for scalar main-memory accesses.

    Disabled by default — CellDTA has no cache (the paper's Sec. 4.3
    bounds a perfect one with latency-1 runs instead); enabling it lets
    the cache-vs-prefetch comparison be run directly (ablation A8).
    """

    enabled: bool = False
    size_bytes: int = 8 * KIB
    line_bytes: int = 64
    ways: int = 2
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ValueError(
                f"cache size must be a positive line multiple, got "
                f"{self.size_bytes}"
            )
        if self.line_bytes < 4 or self.line_bytes % 4:
            raise ValueError(
                f"line size must be a word multiple >= 4, got {self.line_bytes}"
            )
        if self.ways < 1:
            raise ValueError(f"need >= 1 way, got {self.ways}")
        if self.hit_latency < 1:
            raise ValueError(f"hit latency must be >= 1, got {self.hit_latency}")
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)


@dataclass(frozen=True)
class SPUConfig:
    """Synergistic Processing Unit pipeline model.

    The SPU is an in-order, dual-issue core: at most one memory-class and
    one compute/control-class instruction issue per cycle, in program
    order, with no branch prediction, caches or reorder buffer.
    """

    #: Maximum instructions issued per cycle (paper: "two instructions in
    #: each cycle (one memory and one calculation)").
    issue_width: int = 2
    #: Extra cycles charged when a branch is taken (no branch prediction).
    branch_taken_penalty: int = 3
    #: Architectural register count.
    num_registers: int = 128
    #: Depth of the posted-write queue for main-memory WRITEs.
    store_queue_size: int = 8

    def __post_init__(self) -> None:
        if self.issue_width not in (1, 2):
            raise ValueError(f"issue width must be 1 or 2, got {self.issue_width}")
        if self.branch_taken_penalty < 0:
            raise ValueError(
                f"branch penalty must be >= 0, got {self.branch_taken_penalty}"
            )
        if self.num_registers < 8:
            raise ValueError(f"need >= 8 registers, got {self.num_registers}")
        if self.store_queue_size < 1:
            raise ValueError(
                f"store queue must hold >= 1 entry, got {self.store_queue_size}"
            )


@dataclass(frozen=True)
class LSEConfig:
    """Local Scheduler Element.

    ``dual_pipelines`` models the SP/XP split of the original DTA LSE that
    lets DMA programming overlap thread execution (the paper notes CellDTA
    does *not* have it yet — so it defaults to off and is exercised by
    ablation A2).  ``virtual_frame_pointers`` models the DTA-C feature the
    paper cites as a fix for bitcnt's LSE stalls (ablation A3).
    """

    #: Frames each LSE manages (bounded by the LS frame region).
    num_frames: int = 64
    #: Words per frame.
    frame_size_words: int = 32
    #: Cycles the LSE needs to process one request.
    request_latency: int = 2
    #: Enable the SP/XP dual pipelines (overlaps DMA programming).
    dual_pipelines: bool = False
    #: Enable virtual frame pointers (decouples FALLOC from physical frames).
    virtual_frame_pointers: bool = False
    #: Pending FALLOCs a virtual-frame LSE may hold beyond physical frames.
    virtual_frame_depth: int = 256
    #: Ready-queue discipline: "lifo" (depth-first; newest ready thread
    #: runs first, bounding the live frames of fork trees the way
    #: depth-first schedulers bound space) or "fifo" (oldest first).
    ready_policy: str = "lifo"

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ValueError(f"need >= 1 frame, got {self.num_frames}")
        if self.frame_size_words < 1:
            raise ValueError(
                f"frame size must be >= 1 word, got {self.frame_size_words}"
            )
        if self.request_latency < 1:
            raise ValueError(
                f"LSE request latency must be >= 1, got {self.request_latency}"
            )
        if self.virtual_frame_depth < 1:
            raise ValueError(
                f"virtual frame depth must be >= 1, got {self.virtual_frame_depth}"
            )
        if self.ready_policy not in ("lifo", "fifo"):
            raise ValueError(f"unknown ready policy {self.ready_policy!r}")

    @property
    def frame_size_bytes(self) -> int:
        return self.frame_size_words * WORD_SIZE


@dataclass(frozen=True)
class DSEConfig:
    """Distributed Scheduler Element (one per node)."""

    #: Cycles the DSE needs to process one request.
    request_latency: int = 2
    #: Workload distribution policy: "least-loaded" or "round-robin".
    policy: str = "least-loaded"

    def __post_init__(self) -> None:
        if self.request_latency < 1:
            raise ValueError(
                f"DSE request latency must be >= 1, got {self.request_latency}"
            )
        if self.policy not in ("least-loaded", "round-robin"):
            raise ValueError(f"unknown DSE policy {self.policy!r}")


@dataclass(frozen=True)
class WatchdogConfig:
    """Progress watchdog (see :mod:`repro.sim.watchdog`).

    Enabled by default: the watchdog is pure observation — it never
    perturbs component timing — and turns a run that would silently burn
    to ``max_cycles`` into a rich :class:`~repro.sim.watchdog.SimulationLivelock`
    report as soon as forward progress (threads retired + instructions
    committed) stops for ``stall_cycles``.
    """

    enabled: bool = True
    #: Cycles between progress samples (each sample is one engine event).
    interval: int = 5_000
    #: Raise when no forward progress for this many cycles.  Must dwarf
    #: any legitimate stall (memory latency is ~150 cycles).
    stall_cycles: int = 200_000

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(
                f"watchdog interval must be >= 1 cycle, got {self.interval}"
            )
        if self.stall_cycles < self.interval:
            raise ValueError(
                f"watchdog stall_cycles ({self.stall_cycles}) must be >= "
                f"its sampling interval ({self.interval})"
            )


@dataclass(frozen=True)
class MachineConfig:
    """Complete CellDTA machine description."""

    #: Number of SPEs (paper sweeps 1..8).
    num_spes: int = 8
    #: Number of DTA nodes; SPEs are split evenly across nodes.
    num_nodes: int = 1
    #: Extra latency (cycles) for messages that cross a node boundary.
    inter_node_latency: int = 20
    main_memory: MainMemoryConfig = field(default_factory=MainMemoryConfig)
    local_store: LocalStoreConfig = field(default_factory=LocalStoreConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    mfc: MFCConfig = field(default_factory=MFCConfig)
    spu: SPUConfig = field(default_factory=SPUConfig)
    lse: LSEConfig = field(default_factory=LSEConfig)
    dse: DSEConfig = field(default_factory=DSEConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Deterministic fault plan (inert by default; see :mod:`repro.faults`).
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Opt-in invariant sanitizer (see :mod:`repro.sim.sanitize`).
    sanitize: bool = False
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    def __post_init__(self) -> None:
        if self.num_spes < 1:
            raise ValueError(f"need >= 1 SPE, got {self.num_spes}")
        if self.num_nodes < 1:
            raise ValueError(f"need >= 1 node, got {self.num_nodes}")
        if self.num_nodes > self.num_spes:
            raise ValueError(
                f"cannot spread {self.num_spes} SPEs over {self.num_nodes} nodes"
            )
        if self.inter_node_latency < 0:
            raise ValueError(
                f"inter-node latency must be >= 0, got {self.inter_node_latency}"
            )
        frame_bytes = self.lse.num_frames * self.lse.frame_size_bytes
        if frame_bytes > self.local_store.frame_region:
            raise ValueError(
                f"{self.lse.num_frames} frames of {self.lse.frame_size_bytes} B "
                f"({frame_bytes} B) exceed the {self.local_store.frame_region} B "
                f"frame region of the local store"
            )

    def replace(self, **changes: object) -> "MachineConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def with_latency(self, latency: int) -> "MachineConfig":
        """Return a copy whose main-memory latency is ``latency`` cycles."""
        return self.replace(
            main_memory=dataclasses.replace(self.main_memory, latency=latency)
        )

    def with_spes(self, num_spes: int) -> "MachineConfig":
        """Return a copy with ``num_spes`` SPEs."""
        return self.replace(num_spes=num_spes)

    def with_faults(self, faults: "FaultPlan | str") -> "MachineConfig":
        """Return a copy running under ``faults`` (a plan or CLI spec)."""
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        return self.replace(faults=faults)

    def node_of(self, spe_id: int) -> int:
        """Node index hosting SPE ``spe_id`` (even block partition)."""
        if not 0 <= spe_id < self.num_spes:
            raise ValueError(f"SPE id {spe_id} out of range 0..{self.num_spes - 1}")
        per_node = -(-self.num_spes // self.num_nodes)  # ceil division
        return spe_id // per_node

    def spes_of_node(self, node_id: int) -> list[int]:
        """SPE indices hosted by node ``node_id``."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node id {node_id} out of range 0..{self.num_nodes - 1}")
        return [s for s in range(self.num_spes) if self.node_of(s) == node_id]


def cached_config(num_spes: int = 8, **cache_overrides) -> MachineConfig:
    """The paper's machine plus an enabled per-SPE data cache (A8)."""
    base = MachineConfig(num_spes=num_spes)
    return base.replace(
        cache=dataclasses.replace(base.cache, enabled=True, **cache_overrides)
    )


def paper_config(num_spes: int = 8) -> MachineConfig:
    """The configuration of the paper's main experiments.

    Memory latency 150 cycles, 156 kB local stores, four 8 B/cycle buses,
    MFC with a 16-entry queue and a 30-cycle command latency (Tables 2/4).
    """
    return MachineConfig(num_spes=num_spes)


def latency1_config(num_spes: int = 8) -> MachineConfig:
    """The paper's "cache always hits" bound: every latency set to 1 cycle.

    Section 4.3 sets *all* memory latencies in the system to one cycle to
    model a perfect cache, keeping everything else unchanged.
    """
    base = MachineConfig(num_spes=num_spes)
    return base.replace(
        main_memory=dataclasses.replace(base.main_memory, latency=1),
        local_store=dataclasses.replace(base.local_store, latency=1),
    )
