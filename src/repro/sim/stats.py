"""Statistics containers for the CellDTA simulator.

The paper reports three kinds of numbers and everything here exists to
regenerate them:

* **Execution-time breakdown** (Figure 5): per-SPU cycles split into
  Working / Idle / Memory stalls / LS stalls / LSE stalls / Prefetching
  overhead.  :class:`TimeBreakdown` holds one such split and enforces the
  invariant that the buckets partition total time.
* **Pipeline usage** (Figure 9): fraction of cycles in which the SPU issued
  at least one instruction.
* **Dynamic instruction counts** (Table 5): total instructions plus the
  frame-memory (LOAD/STORE) and main-memory (READ/WRITE) access counts.
  :class:`InstructionMix` tracks them.

Component-local stats (bus bytes, MFC commands, scheduler messages, memory
requests) live in small dataclasses aggregated by
:class:`~repro.cell.machine.Machine` into a :class:`MachineStats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Bucket",
    "TimeBreakdown",
    "InstructionMix",
    "SpuStats",
    "BusStats",
    "MemoryStats",
    "MFCStats",
    "SchedulerStats",
    "FaultStats",
    "MachineStats",
]


class Bucket:
    """Names of the Figure 5 execution-time buckets."""

    WORKING = "working"
    IDLE = "idle"
    MEM_STALL = "mem_stall"
    LS_STALL = "ls_stall"
    LSE_STALL = "lse_stall"
    PREFETCH = "prefetch"

    ALL = (WORKING, IDLE, MEM_STALL, LS_STALL, LSE_STALL, PREFETCH)


@dataclass
class TimeBreakdown:
    """Cycles per Figure 5 bucket for one SPU (or averaged over SPUs)."""

    working: float = 0
    idle: float = 0
    mem_stall: float = 0
    ls_stall: float = 0
    lse_stall: float = 0
    prefetch: float = 0

    @property
    def total(self) -> float:
        return (
            self.working
            + self.idle
            + self.mem_stall
            + self.ls_stall
            + self.lse_stall
            + self.prefetch
        )

    def fraction(self, bucket: str) -> float:
        """Bucket share of total time (0 if the breakdown is empty)."""
        if bucket not in Bucket.ALL:
            raise KeyError(f"unknown bucket {bucket!r}")
        total = self.total
        return getattr(self, bucket) / total if total else 0.0

    def fractions(self) -> dict[str, float]:
        """All bucket shares, keyed by bucket name."""
        return {b: self.fraction(b) for b in Bucket.ALL}

    def as_dict(self) -> dict[str, float]:
        """Raw cycles per bucket, keyed by bucket name (for exports)."""
        return {b: getattr(self, b) for b in Bucket.ALL}

    def add(self, bucket: str, cycles: float) -> None:
        if bucket not in Bucket.ALL:
            raise KeyError(f"unknown bucket {bucket!r}")
        if cycles < 0:
            raise ValueError(f"cannot add negative cycles ({cycles}) to {bucket}")
        setattr(self, bucket, getattr(self, bucket) + cycles)

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            **{b: getattr(self, b) + getattr(other, b) for b in Bucket.ALL}
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every bucket multiplied by ``factor``."""
        return TimeBreakdown(**{b: getattr(self, b) * factor for b in Bucket.ALL})

    @staticmethod
    def average(parts: "list[TimeBreakdown]") -> "TimeBreakdown":
        """Arithmetic mean of several breakdowns (Figure 5 averages SPUs)."""
        if not parts:
            return TimeBreakdown()
        acc = TimeBreakdown()
        for p in parts:
            acc = acc + p
        return acc.scaled(1.0 / len(parts))


@dataclass
class InstructionMix:
    """Dynamic instruction counts in the Table 5 categories.

    ``by_opcode`` counts every executed instruction by mnemonic; the named
    properties expose the paper's categories: LOAD/STORE are *frame memory*
    accesses, READ/WRITE are *main memory* accesses.
    """

    by_opcode: Counter = field(default_factory=Counter)
    #: Local-store loads of prefetched data count as LOADs (the compiler
    #: literally rewrites READ into LOAD); kept separately for analysis.
    prefetched_loads: int = 0

    def record(self, mnemonic: str, count: int = 1) -> None:
        self.by_opcode[mnemonic] += count

    @property
    def total(self) -> int:
        return sum(self.by_opcode.values())

    @property
    def loads(self) -> int:
        """Frame-memory LOADs (including rewritten prefetched-data loads)."""
        return self.by_opcode["LOAD"] + self.by_opcode["LLOAD"]

    @property
    def stores(self) -> int:
        """Frame-memory STOREs."""
        return self.by_opcode["STORE"]

    @property
    def reads(self) -> int:
        """Main-memory READs left in the program."""
        return self.by_opcode["READ"]

    @property
    def writes(self) -> int:
        """Main-memory WRITEs."""
        return self.by_opcode["WRITE"]

    def merge(self, other: "InstructionMix") -> None:
        self.by_opcode.update(other.by_opcode)
        self.prefetched_loads += other.prefetched_loads

    def table5_row(self) -> dict[str, int]:
        """The Table 5 columns for this run."""
        return {
            "total": self.total,
            "LOAD": self.loads,
            "STORE": self.stores,
            "READ": self.reads,
            "WRITE": self.writes,
        }


@dataclass
class SpuStats:
    """Per-SPU statistics."""

    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    mix: InstructionMix = field(default_factory=InstructionMix)
    #: Cycles charged while each thread template occupied the pipeline
    #: (working + stalls; idle is unattributable).  Answers "where did
    #: the time go?" per template.
    template_cycles: Counter = field(default_factory=Counter)
    #: Cycles in which at least one instruction issued.
    issue_cycles: int = 0
    #: Cycles in which both issue slots were used.
    dual_issue_cycles: int = 0
    #: Threads run to completion on this SPU.
    threads_executed: int = 0
    #: Cycles the SPU was observed (first dispatch to finish).
    observed_cycles: int = 0

    @property
    def pipeline_usage(self) -> float:
        """Figure 9 metric: fraction of cycles with an instruction issued."""
        total = self.breakdown.total
        return self.issue_cycles / total if total else 0.0

    @property
    def slot_utilization(self) -> float:
        """Fraction of issue slots filled (dual-issue machine)."""
        total = self.breakdown.total
        if not total:
            return 0.0
        return (self.issue_cycles + self.dual_issue_cycles) / (2 * total)


@dataclass
class BusStats:
    """Interconnect statistics."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_bus_cycles: int = 0
    #: Cycles a transfer spent queued waiting for a free bus.
    queue_wait_cycles: int = 0


@dataclass
class MemoryStats:
    """Main-memory statistics."""

    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Cycles requests spent waiting for a port.
    port_wait_cycles: int = 0


@dataclass
class MFCStats:
    """DMA-controller statistics (one aggregated over all SPEs)."""

    commands: int = 0
    bytes_transferred: int = 0
    #: Commands rejected because the queue was full (SPU retried).
    queue_full_rejections: int = 0


@dataclass
class SchedulerStats:
    """Distributed-scheduler statistics."""

    fallocs: int = 0
    ffrees: int = 0
    remote_stores: int = 0
    messages: int = 0
    #: FALLOCs that had to wait for a free frame.
    falloc_waits: int = 0


@dataclass
class FaultStats:
    """Injected-fault and recovery counters (see :mod:`repro.faults`).

    All zeros when no fault plan is active; under faults these are the
    evidence that perturbations actually fired and were absorbed — the
    chaos tests require them nonzero while architectural outputs stay
    bit-identical to the fault-free run.
    """

    #: DMA chunk issues delayed, and the cycles added.
    dma_delays: int = 0
    dma_delay_cycles: int = 0
    #: Transient DMA chunk failures injected.
    dma_drops: int = 0
    #: Chunk re-issues performed after a transient failure.
    dma_retries: int = 0
    #: Cycles spent in exponential backoff before retries.
    dma_backoff_cycles: int = 0
    #: Chunks that exhausted retries and fell back to blocking reads.
    dma_fallbacks: int = 0
    #: Bus transfers delivered late, and the cycles added.
    bus_delays: int = 0
    bus_delay_cycles: int = 0
    #: Bus transfers duplicated, and duplicates absorbed on delivery.
    bus_duplicates: int = 0
    bus_duplicates_absorbed: int = 0
    #: Main-memory requests stalled, and the cycles added.
    mem_stalls: int = 0
    mem_stall_cycles: int = 0
    #: Data faults injected: GET chunk words bit-flipped, chunk writes
    #: truncated, chunk writes dropped (stale LS), frame-store messages
    #: corrupted on the bus.
    data_flips: int = 0
    data_truncations: int = 0
    data_stale_drops: int = 0
    data_store_corruptions: int = 0
    #: Detection/recovery: transfer checksum mismatches, whole-transfer
    #: re-fetches, frame words poisoned at the commit boundary, poisoned
    #: words scrubbed at read time, and thread-level re-executions.
    dma_verify_failures: int = 0
    dma_refetches: int = 0
    frame_poisons: int = 0
    frame_scrubs: int = 0
    thread_reexecs: int = 0

    @property
    def any_fired(self) -> bool:
        return any(
            getattr(self, f) > 0
            for f in ("dma_delays", "dma_drops", "bus_delays",
                      "bus_duplicates", "mem_stalls", "data_flips",
                      "data_truncations", "data_stale_drops",
                      "data_store_corruptions")
        )

    @property
    def any_data_fired(self) -> bool:
        """True when any corrupting fault actually fired."""
        return any(
            getattr(self, f) > 0
            for f in ("data_flips", "data_truncations", "data_stale_drops",
                      "data_store_corruptions")
        )

    @property
    def any_recovered(self) -> bool:
        """True when detection/recovery machinery actually acted."""
        return any(
            getattr(self, f) > 0
            for f in ("dma_refetches", "frame_scrubs", "thread_reexecs")
        )

    def recovery_counters(self) -> dict:
        """The data-fault/recovery counter block as a plain dict —
        embedded in degraded manifests, journal entries and exports."""
        return {
            "data_flips": self.data_flips,
            "data_truncations": self.data_truncations,
            "data_stale_drops": self.data_stale_drops,
            "data_store_corruptions": self.data_store_corruptions,
            "dma_verify_failures": self.dma_verify_failures,
            "dma_refetches": self.dma_refetches,
            "frame_poisons": self.frame_poisons,
            "frame_scrubs": self.frame_scrubs,
            "thread_reexecs": self.thread_reexecs,
        }

    def summary(self) -> str:
        """One-line counter rendering for reports."""
        line = (
            f"dma: {self.dma_delays} delayed / {self.dma_drops} dropped / "
            f"{self.dma_retries} retried / {self.dma_fallbacks} fell back "
            f"({self.dma_backoff_cycles} backoff cycles); "
            f"bus: {self.bus_delays} delayed / {self.bus_duplicates} "
            f"duplicated ({self.bus_duplicates_absorbed} absorbed); "
            f"memory: {self.mem_stalls} stalled "
            f"(+{self.mem_stall_cycles} cycles)"
        )
        if self.any_data_fired or self.any_recovered:
            line += (
                f"; data: {self.data_flips} flipped / "
                f"{self.data_truncations} truncated / "
                f"{self.data_stale_drops} stale / "
                f"{self.data_store_corruptions} store-corrupt — recovered "
                f"via {self.dma_refetches} re-fetches / "
                f"{self.frame_scrubs} scrubs / "
                f"{self.thread_reexecs} re-executions"
            )
        return line


@dataclass
class MachineStats:
    """Everything a run produces, aggregated over the machine."""

    cycles: int = 0
    spus: list[SpuStats] = field(default_factory=list)
    bus: BusStats = field(default_factory=BusStats)
    memory: MemoryStats = field(default_factory=MemoryStats)
    mfc: MFCStats = field(default_factory=MFCStats)
    scheduler: SchedulerStats = field(default_factory=SchedulerStats)
    faults: FaultStats = field(default_factory=FaultStats)

    @property
    def mix(self) -> InstructionMix:
        """Machine-wide dynamic instruction mix (Table 5)."""
        merged = InstructionMix()
        for spu in self.spus:
            merged.merge(spu.mix)
        return merged

    @property
    def template_cycles(self) -> Counter:
        """Machine-wide pipeline cycles per thread template."""
        merged: Counter = Counter()
        for spu in self.spus:
            merged.update(spu.template_cycles)
        return merged

    @property
    def average_breakdown(self) -> TimeBreakdown:
        """Figure 5's "average SPU execution time" breakdown."""
        return TimeBreakdown.average([s.breakdown for s in self.spus])

    @property
    def average_pipeline_usage(self) -> float:
        """Figure 9 metric averaged over SPUs."""
        if not self.spus:
            return 0.0
        return sum(s.pipeline_usage for s in self.spus) / len(self.spus)

    def bucket_fractions(self) -> Mapping[str, float]:
        return self.average_breakdown.fractions()
