"""Progress watchdog: turn silent livelocks into loud, rich reports.

The engine already converts a *drained* event queue into a
:class:`~repro.sim.engine.SimulationDeadlock`.  The failure mode it
cannot see is a **livelock**: components keep exchanging events (retries,
polls, periodic ticks) so the queue never drains, yet no thread retires
and no instruction commits — and the run silently burns to ``max_cycles``
before anyone learns anything.

:class:`ProgressWatchdog` is an ordinary engine-registered component that
samples a *progress snapshot* (for a machine: threads retired and
instructions committed) every ``interval`` cycles.  When the snapshot is
unchanged for ``stall_cycles``, it raises :class:`SimulationLivelock`
carrying a report with the stall window, the frozen snapshot, every
component's ``describe_state`` and the next pending events — the same
quality of diagnosis a deadlock gets, delivered long before the cycle
limit.

The watchdog is observation-only: it never wakes, blocks or messages
another component, so enabling it cannot change a run's cycle count.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.component import Component
from repro.sim.engine import SimulationDeadlock

__all__ = ["ProgressWatchdog", "SimulationLivelock"]


class SimulationLivelock(RuntimeError):
    """Events kept flowing but no forward progress was made for N cycles."""


class ProgressWatchdog(Component):
    """Engine-registered monitor that detects absence of forward progress."""

    priority = 90  # sample after every real component has ticked

    def __init__(
        self,
        name: str,
        interval: int,
        stall_cycles: int,
        progress: Callable[[], object],
        done: Callable[[], bool] | None = None,
        components: Sequence[Component] | None = None,
        detail: Callable[[], str] | None = None,
        checkpoint: "Callable[[], str | None] | None" = None,
        last_checkpoint: "Callable[[], tuple[int, str] | None] | None" = None,
    ) -> None:
        """``progress`` returns a comparable snapshot; any change counts
        as forward progress.  ``done`` (when given) retires the watchdog —
        it stops rescheduling so a post-run ``Engine.drain`` terminates.
        ``components`` are described in the report (default: everything
        registered with the engine); ``detail`` contributes extra report
        lines (in-flight DMA, ready-queue depths, ...).  ``checkpoint``
        (when given) is invoked just before raising
        :class:`SimulationLivelock` so the diagnosed state is *preserved*,
        not merely described — it returns the path written, or None when
        checkpointing is not configured for this run.  ``last_checkpoint``
        reports the (cycle, path) of the most recent periodic checkpoint.
        """
        super().__init__(name)
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if stall_cycles < interval:
            raise ValueError(
                f"stall_cycles ({stall_cycles}) must be >= interval "
                f"({interval})"
            )
        self.interval = interval
        self.stall_cycles = stall_cycles
        self._progress = progress
        self._done = done
        self._components = components
        self._detail = detail
        self._checkpoint = checkpoint
        self._last_checkpoint = last_checkpoint
        self._last_snapshot: object = None
        self._last_change = 0
        self._started = False

    def start(self) -> None:
        """Begin sampling (call once the component is registered)."""
        self._last_change = self.now
        self._started = True
        self.wake(self.now + self.interval)

    # -- component ---------------------------------------------------------

    def tick(self, now: int) -> int | None:
        if self._done is not None and self._done():
            return None  # run finished; let the engine drain
        if next(iter(self.engine.pending_events()), None) is None:
            # Our own reschedule is all that keeps the queue non-empty:
            # without us the engine would have raised SimulationDeadlock
            # at this cycle.  Surface that immediately instead of waiting
            # out the stall window.
            raise SimulationDeadlock(self.engine._deadlock_report())
        snapshot = self._progress()
        if snapshot != self._last_snapshot:
            self._last_snapshot = snapshot
            self._last_change = now
        elif now - self._last_change >= self.stall_cycles:
            saved = self._checkpoint() if self._checkpoint is not None else None
            report = self.report(now)
            if saved is not None:
                report += f"\nstate checkpointed to: {saved}"
            raise SimulationLivelock(report)
        return now + self.interval

    # -- diagnostics -------------------------------------------------------

    def report(self, now: int) -> str:
        lines = [
            f"simulation livelock at cycle {now}: no forward progress "
            f"for {now - self._last_change} cycles "
            f"(snapshot frozen at {self._last_snapshot!r})",
        ]
        if self._detail is not None:
            lines.append(self._detail())
        engine = self.engine
        lines.append(
            f"engine: {engine.pending_count} live events pending "
            f"({engine.stale_count} stale), {engine.ticks_dispatched} ticks "
            f"and {engine.callbacks_dispatched} callbacks dispatched, "
            f"{engine.compactions} heap compactions"
        )
        last = (
            self._last_checkpoint() if self._last_checkpoint is not None
            else None
        )
        if last is not None:
            lines.append(
                f"last checkpoint: cycle {last[0]} -> {last[1]}"
            )
        else:
            lines.append("last checkpoint: none taken")
        components = (
            self._components
            if self._components is not None
            else [c for c in self.engine.components if c is not self]
        )
        lines.append("component states:")
        for comp in components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        pending = self.engine.peek_events(8)
        if pending:
            lines.append("next pending events:")
            lines.extend(f"  {line}" for line in pending)
        return "\n".join(lines)

    def describe_state(self) -> str:
        if not self._started:
            return "not started"
        return (
            f"last progress at cycle {self._last_change}, "
            f"snapshot {self._last_snapshot!r}, "
            f"sampling every {self.interval} cycles"
        )
