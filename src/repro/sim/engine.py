"""Event-skipping cycle engine.

The engine owns the global cycle counter and a priority queue of pending
component ticks.  It is *cycle-accurate* — every component sees a coherent
integer cycle — but *event-skipping*: cycles on which no component has work
are never visited.  This is the standard discrete-event optimization of
clocked simulators (the UNISIM kernel the paper builds on does the same in
its distributed-event mode) and is what makes a pure-Python reproduction of
150-cycle-latency workloads tractable.

Correctness depends on a simple wake discipline: any component that makes
another component runnable must :meth:`~repro.sim.component.Component.wake`
it.  If the queue drains before the run's stop condition is met the engine
raises :class:`SimulationDeadlock` with a per-component state dump, turning
a missed wakeup into a loud, debuggable failure instead of a hang.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.sim.component import Component

__all__ = ["Engine", "SimulationDeadlock", "SimulationLimitExceeded"]


class SimulationDeadlock(RuntimeError):
    """The event queue drained before the stop condition was satisfied."""


class SimulationLimitExceeded(RuntimeError):
    """The run hit ``max_cycles`` before the stop condition was satisfied."""


class Engine:
    """Owns simulated time and dispatches component ticks."""

    def __init__(self) -> None:
        self._now = 0
        self._heap: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self._components: list[Component] = []
        #: Cycles actually visited (for event-skip efficiency metrics).
        self.ticks_dispatched = 0

    # -- registration ------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Attach ``component`` to this engine and return it."""
        component._attach(self)
        self._components.append(component)
        return component

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Queued events, including lazily-deleted stale entries.

        An O(1) upper bound on the real backlog, good enough for the
        metrics sampler's ``engine.pending_events`` gauge.
        """
        return len(self._heap)

    # -- scheduling --------------------------------------------------------

    def schedule(self, component: Component, cycle: int | None = None) -> None:
        """Schedule a tick of ``component`` at ``cycle`` (default next cycle).

        Scheduling is idempotent per target cycle: if the component already
        has a tick scheduled at or before ``cycle`` the call is a no-op.
        Requests for the current or past cycles are clamped to ``now + 1``
        (a component cannot re-tick within its own cycle).
        """
        if component._engine is not self:
            raise RuntimeError(
                f"component {component.name!r} is not registered with this engine"
            )
        if cycle is None or cycle <= self._now:
            cycle = self._now + 1
        already = component._scheduled_at
        if already is not None and already <= cycle:
            return
        component._scheduled_at = cycle
        self._seq += 1
        heapq.heappush(self._heap, (cycle, component.priority, self._seq, component))

    def call_at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the start of ``cycle`` (before ticks).

        Callbacks are one-shot and ordered before component ticks at the
        same cycle (priority ``-1``).
        """
        if cycle <= self._now:
            cycle = self._now + 1
        self._seq += 1
        heapq.heappush(self._heap, (cycle, -1, self._seq, callback))

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
    ) -> int:
        """Run until ``until()`` is true (checked between cycles).

        Returns the final cycle count.  Raises :class:`SimulationDeadlock`
        if the queue drains first, or :class:`SimulationLimitExceeded` if
        ``max_cycles`` is hit.
        """
        heap = self._heap
        while True:
            if until is not None and until():
                return self._now
            if not heap:
                if until is None:
                    return self._now
                raise SimulationDeadlock(self._deadlock_report())
            cycle = heap[0][0]
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationLimitExceeded(self._limit_report(max_cycles))
            self._now = cycle
            # Dispatch every event scheduled for this cycle, in
            # (priority, seq) order.  Nothing dispatched here can add
            # same-cycle work: schedule() and call_at() both clamp
            # requests for the current (or a past) cycle to now + 1,
            # so this inner loop always terminates.
            while heap and heap[0][0] == cycle:
                _, _, _, target = heapq.heappop(heap)
                if isinstance(target, Component):
                    if target._scheduled_at != cycle:
                        continue  # lazily-deleted stale entry
                    target._scheduled_at = None
                    self.ticks_dispatched += 1
                    nxt = target.tick(cycle)
                    if nxt is not None:
                        if nxt <= cycle:
                            raise RuntimeError(
                                f"component {target.name!r} returned non-advancing "
                                f"next tick {nxt} at cycle {cycle}"
                            )
                        self.schedule(target, nxt)
                else:
                    target()

    def drain(self, max_cycles: int | None = None) -> int:
        """Run until the event queue is empty; returns the final cycle."""
        return self.run(until=None, max_cycles=max_cycles)

    # -- diagnostics -------------------------------------------------------

    def _component_states(self) -> list[str]:
        lines = ["component states:"]
        for comp in self._components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        return lines

    def _deadlock_report(self) -> str:
        lines = [
            f"simulation deadlock at cycle {self._now}: event queue drained "
            f"before the stop condition was met",
        ]
        lines.extend(self._component_states())
        return "\n".join(lines)

    def _limit_report(self, max_cycles: int) -> str:
        # Distinct from the deadlock report: here the queue is NOT drained —
        # events are still pending, the run just outlived its budget.
        lines = [
            f"exceeded max_cycles={max_cycles} at cycle {self._now} with "
            f"events still pending",
        ]
        lines.extend(self._component_states())
        pending = self.peek_events(8)
        if pending:
            lines.append("next pending events:")
            lines.extend(f"  {line}" for line in pending)
        return "\n".join(lines)

    def peek_events(self, limit: int = 8) -> list[str]:
        """The next ``limit`` queued events, formatted, in dispatch order."""
        live = [
            (cycle, prio, seq, target)
            for cycle, prio, seq, target in self._heap
            if not (
                isinstance(target, Component) and target._scheduled_at != cycle
            )
        ]
        live.sort()
        lines = []
        for cycle, _prio, _seq, target in live[:limit]:
            if isinstance(target, Component):
                lines.append(f"cycle {cycle}: tick {target.name}")
            else:
                name = getattr(target, "__qualname__", repr(target))
                lines.append(f"cycle {cycle}: callback {name}")
        return lines

    def pending_events(self) -> Iterable[tuple[int, object]]:
        """(cycle, target) pairs currently queued, unordered (for tests)."""
        for cycle, _prio, _seq, target in self._heap:
            if isinstance(target, Component) and target._scheduled_at != cycle:
                continue
            yield cycle, target
