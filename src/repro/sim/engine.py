"""Event-skipping cycle engine.

The engine owns the global cycle counter and a priority queue of pending
component ticks.  It is *cycle-accurate* — every component sees a coherent
integer cycle — but *event-skipping*: cycles on which no component has work
are never visited.  This is the standard discrete-event optimization of
clocked simulators (the UNISIM kernel the paper builds on does the same in
its distributed-event mode) and is what makes a pure-Python reproduction of
150-cycle-latency workloads tractable.

Correctness depends on a simple wake discipline: any component that makes
another component runnable must :meth:`~repro.sim.component.Component.wake`
it.  If the queue drains before the run's stop condition is met the engine
raises :class:`SimulationDeadlock` with a per-component state dump, turning
a missed wakeup into a loud, debuggable failure instead of a hang.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.sim.component import Component

__all__ = [
    "Engine",
    "Callback",
    "register_callback",
    "SimulationDeadlock",
    "SimulationLimitExceeded",
]


class SimulationDeadlock(RuntimeError):
    """The event queue drained before the stop condition was satisfied."""


class SimulationLimitExceeded(RuntimeError):
    """The run hit ``max_cycles`` before the stop condition was satisfied."""


#: Registry of re-armable callback kinds: name -> unbound function invoked
#: as ``fn(owner, *payload)``.  Every production ``call_at`` site registers
#: its kind here so a heap full of pending callbacks is pure data — a
#: checkpoint can serialize it and a restored process can re-arm it.
_CALLBACK_KINDS: dict[str, Callable] = {}


def register_callback(kind: str, fn: Callable) -> None:
    """Register ``fn`` as the executor for callback descriptors of ``kind``.

    ``fn`` is called as ``fn(owner, *payload)``; registering an unbound
    method (``register_callback("bus.deliver", Bus._deliver)``) makes the
    descriptor behave exactly like the bound-method closure it replaces.
    Re-registering a kind with a different function is an error — kinds
    are global names and a silent overwrite would re-arm restored
    checkpoints with the wrong behavior.
    """
    existing = _CALLBACK_KINDS.get(kind)
    if existing is not None and existing is not fn:
        raise ValueError(f"callback kind {kind!r} already registered")
    _CALLBACK_KINDS[kind] = fn


class Callback:
    """Serializable one-shot event descriptor scheduled via ``call_at``.

    Replaces the opaque closures the heap used to hold: a descriptor is
    ``(kind, owner, payload)`` where ``kind`` names a registered executor,
    ``owner`` is the component (or other snapshot-addressable object) the
    event belongs to and ``payload`` is a tuple of plain data.  Descriptors
    support lazy cancellation: a cancelled descriptor stays in the heap
    but is skipped (and counted as stale) at dispatch.
    """

    __slots__ = ("kind", "owner", "payload", "cancelled")

    def __init__(self, kind: str, owner: object, payload: tuple = ()) -> None:
        if kind not in _CALLBACK_KINDS:
            raise ValueError(f"unregistered callback kind {kind!r}")
        self.kind = kind
        self.owner = owner
        self.payload = payload
        self.cancelled = False

    def __call__(self) -> None:
        _CALLBACK_KINDS[self.kind](self.owner, *self.payload)

    def describe(self) -> str:
        owner = getattr(self.owner, "name", None) or repr(self.owner)
        return f"{self.kind}({owner})"

    # __slots__ classes need explicit pickle support.
    def __getstate__(self) -> tuple:
        return (self.kind, self.owner, self.payload, self.cancelled)

    def __setstate__(self, state: tuple) -> None:
        self.kind, self.owner, self.payload, self.cancelled = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = " cancelled" if self.cancelled else ""
        return f"<Callback {self.describe()}{flag}>"


class Engine:
    """Owns simulated time and dispatches component ticks."""

    #: Stale entries tolerated before a supersede triggers compaction.
    #: Below this the heapify cost outweighs the memory saved.
    COMPACT_MIN_STALE = 32

    def __init__(self) -> None:
        self._now = 0
        # Entries are (cycle, priority, order, seq, target).  ``order`` is
        # the component's registration index (0 for callbacks), so ticks
        # that tie on (cycle, priority) dispatch in *registration* order —
        # never in push order.  This matters for correctness, not style: a
        # fast-forwarding SPU schedules its window-end tick many cycles
        # early, and a push-order tie-break would let that early push jump
        # ahead of peer SPUs within the cycle, reordering shared-resource
        # arbitration versus the cycle-by-cycle path.  ``seq`` only
        # disambiguates a live entry from its own stale duplicates (and
        # keeps callbacks FIFO).
        self._heap: list[tuple[int, int, int, int, object]] = []
        self._seq = 0
        self._components: list[Component] = []
        #: Components with a live (non-superseded) entry in the heap.
        self._live = 0
        #: Pending one-shot callbacks (never stale).
        self._callbacks = 0
        #: Cycles actually visited (for event-skip efficiency metrics).
        self.ticks_dispatched = 0
        #: One-shot callbacks run via :meth:`call_at`.
        self.callbacks_dispatched = 0
        #: Lazily-deleted (superseded) heap entries popped and discarded.
        self.stale_skipped = 0
        #: Heap compaction passes performed.
        self.compactions = 0

    # -- registration ------------------------------------------------------

    def register(self, component: Component) -> Component:
        """Attach ``component`` to this engine and return it."""
        component._attach(self)
        component._order = len(self._components)
        self._components.append(component)
        return component

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Live queued events: component ticks plus pending callbacks.

        O(1) and exact — superseded (lazily-deleted) heap entries are
        excluded, so the metrics sampler's ``engine.pending_events``
        gauge reports real backlog, not heap garbage.
        """
        return self._live + self._callbacks

    @property
    def stale_count(self) -> int:
        """Lazily-deleted heap entries awaiting skip or compaction."""
        return len(self._heap) - self._live - self._callbacks

    # -- scheduling --------------------------------------------------------

    def schedule(self, component: Component, cycle: int | None = None) -> None:
        """Schedule a tick of ``component`` at ``cycle`` (default next cycle).

        Scheduling is idempotent per target cycle: if the component already
        has a tick scheduled at or before ``cycle`` the call is a no-op.
        Requests for the current or past cycles are clamped to ``now + 1``
        (a component cannot re-tick within its own cycle).
        """
        if component._engine is not self:
            raise RuntimeError(
                f"component {component.name!r} is not registered with this engine"
            )
        if cycle is None or cycle <= self._now:
            cycle = self._now + 1
        already = component._scheduled_at
        if already is not None and already <= cycle:
            return
        if already is None:
            self._live += 1
        else:
            # Superseding leaves the old entry stale in the heap.  When
            # stale garbage outnumbers live work, rebuild the heap: the
            # O(n) heapify amortizes against the pops it saves, and the
            # heap stays proportional to real backlog.
            stale = len(self._heap) - self._live - self._callbacks
            if stale > self.COMPACT_MIN_STALE and stale > (
                self._live + self._callbacks
            ):
                self._compact()
        component._scheduled_at = cycle
        self._seq += 1
        heapq.heappush(
            self._heap,
            (cycle, component.priority, component._order, self._seq, component),
        )

    def call_at(self, cycle: int, callback: "Callback | Callable[[], None]") -> None:
        """Run ``callback`` at the start of ``cycle`` (before ticks).

        Callbacks are one-shot and ordered before component ticks at the
        same cycle (priority ``-1``).  Production sites pass a
        :class:`Callback` descriptor so the heap stays serializable; bare
        callables are still accepted for tests and ad-hoc scripting but
        make the engine uncheckpointable while they are pending.
        """
        if cycle <= self._now:
            cycle = self._now + 1
        self._callbacks += 1
        self._seq += 1
        heapq.heappush(self._heap, (cycle, -1, 0, self._seq, callback))

    def cancel(self, callback: Callback) -> None:
        """Lazily cancel a pending :class:`Callback` descriptor.

        The heap entry stays behind (and is skipped at dispatch, counted
        in ``stale_skipped``) — exactly the lazy-deletion discipline
        superseded component ticks already use.  Idempotent.
        """
        if not callback.cancelled:
            callback.cancelled = True
            self._callbacks -= 1

    @staticmethod
    def _entry_live(entry: tuple) -> bool:
        """True when a heap entry will actually dispatch (not lazily dead)."""
        target = entry[4]
        if isinstance(target, Component):
            return target._scheduled_at == entry[0]
        if isinstance(target, Callback):
            return not target.cancelled
        return True

    def _compact(self) -> None:
        """Drop stale heap entries and re-heapify in place."""
        self._heap[:] = [e for e in self._heap if self._entry_live(e)]
        heapq.heapify(self._heap)
        self.compactions += 1

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        checkpoint_every: int | None = None,
        on_checkpoint: Callable[[int], None] | None = None,
    ) -> int:
        """Run until ``until()`` is true (checked between cycles).

        Returns the final cycle count.  Raises :class:`SimulationDeadlock`
        if the queue drains first, or :class:`SimulationLimitExceeded` if
        ``max_cycles`` is hit.

        ``checkpoint_every`` (with ``on_checkpoint``) invokes the hook at
        the first *visited* cycle at or past each N-cycle boundary, after
        ``self.now`` has advanced to that cycle but before any of its
        events dispatch — the exact state a restore re-enters, so a
        restored run re-derives the same cycle and dispatches identically.
        When off it costs one ``is not None`` test per visited cycle.
        """
        if checkpoint_every is not None:
            if on_checkpoint is None:
                raise ValueError("checkpoint_every requires on_checkpoint")
            if checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            next_ckpt: int | None = self._now + checkpoint_every
        else:
            next_ckpt = None
        heap = self._heap
        while True:
            if until is not None and until():
                return self._now
            if not heap:
                if until is None:
                    return self._now
                raise SimulationDeadlock(self._deadlock_report())
            cycle = heap[0][0]
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationLimitExceeded(self._limit_report(max_cycles))
            self._now = cycle
            if next_ckpt is not None and cycle >= next_ckpt:
                on_checkpoint(cycle)
                next_ckpt = cycle + checkpoint_every
            # Dispatch every event scheduled for this cycle, in
            # (priority, registration-order) order — same-priority ties
            # resolve by *registration* index, not push order, so the
            # within-cycle sequence is independent of how far ahead each
            # tick was scheduled.  Nothing dispatched here can add
            # same-cycle work: schedule() and call_at() both clamp
            # requests for the current (or a past) cycle to now + 1,
            # so this inner loop always terminates.
            while heap and heap[0][0] == cycle:
                target = heapq.heappop(heap)[4]
                if isinstance(target, Component):
                    if target._scheduled_at != cycle:
                        self.stale_skipped += 1
                        continue  # lazily-deleted stale entry
                    target._scheduled_at = None
                    self._live -= 1
                    self.ticks_dispatched += 1
                    nxt = target.tick(cycle)
                    if nxt is not None:
                        if nxt <= cycle:
                            raise RuntimeError(
                                f"component {target.name!r} returned non-advancing "
                                f"next tick {nxt} at cycle {cycle}"
                            )
                        self.schedule(target, nxt)
                else:
                    if isinstance(target, Callback) and target.cancelled:
                        self.stale_skipped += 1
                        continue  # lazily-cancelled descriptor
                    self._callbacks -= 1
                    self.callbacks_dispatched += 1
                    target()

    def drain(self, max_cycles: int | None = None) -> int:
        """Run until the event queue is empty; returns the final cycle."""
        return self.run(until=None, max_cycles=max_cycles)

    # -- diagnostics -------------------------------------------------------

    def _component_states(self) -> list[str]:
        lines = ["component states:"]
        for comp in self._components:
            lines.append(f"  {comp.name}: {comp.describe_state()}")
        return lines

    def _deadlock_report(self) -> str:
        lines = [
            f"simulation deadlock at cycle {self._now}: event queue drained "
            f"before the stop condition was met",
        ]
        lines.extend(self._component_states())
        return "\n".join(lines)

    def _limit_report(self, max_cycles: int) -> str:
        # Distinct from the deadlock report: here the queue is NOT drained —
        # events are still pending, the run just outlived its budget.
        lines = [
            f"exceeded max_cycles={max_cycles} at cycle {self._now} with "
            f"events still pending",
        ]
        lines.extend(self._component_states())
        pending = self.peek_events(8)
        if pending:
            lines.append("next pending events:")
            lines.extend(f"  {line}" for line in pending)
        return "\n".join(lines)

    def peek_events(self, limit: int = 8) -> list[str]:
        """The next ``limit`` *live* queued events, formatted, in dispatch
        order — stale lazily-deleted ticks and cancelled callbacks are
        filtered out so deadlock/livelock/limit reports never name dead
        events."""
        # nsmallest over a filtering generator: O(n log limit) with no
        # copy of the heap, instead of the old filter-everything-and-sort
        # O(n log n) pass (peek runs inside limit-exceeded reporting and
        # interactive debugging where the heap can be large).
        live = heapq.nsmallest(
            limit, (entry for entry in self._heap if self._entry_live(entry))
        )
        lines = []
        for cycle, _prio, _order, _seq, target in live:
            if isinstance(target, Component):
                lines.append(f"cycle {cycle}: tick {target.name}")
            elif isinstance(target, Callback):
                lines.append(f"cycle {cycle}: callback {target.describe()}")
            else:
                name = getattr(target, "__qualname__", repr(target))
                lines.append(f"cycle {cycle}: callback {name}")
        return lines

    def pending_events(self) -> Iterable[tuple[int, object]]:
        """(cycle, target) pairs currently queued, unordered (for tests)."""
        for entry in self._heap:
            if self._entry_live(entry):
                yield entry[0], entry[4]
