"""Shared workload machinery.

Every benchmark generator returns a :class:`Workload`: the baseline
:class:`~repro.core.activity.TLPActivity` (no PF blocks — the original
DTA), a pure-Python **oracle** for each output object, and the parameters
used.  The prefetching variant is *derived*, exactly as in the paper, by
running the compiler pass over the baseline:

>>> wl = matmul.build(n=8, threads=4)          # doctest: +SKIP
>>> pf_activity = prefetch_transform(wl.activity)  # doctest: +SKIP

Input data is generated with a deterministic LCG so every run, test and
benchmark sees identical values without depending on ``random`` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.activity import TLPActivity
from repro.isa.semantics import wrap64

__all__ = ["Workload", "lcg_words", "split_range", "check_outputs"]

_LCG_A = 1103515245
_LCG_C = 12345
_LCG_MASK = (1 << 31) - 1


def lcg_words(count: int, seed: int = 1, lo: int = 0, hi: int = 256) -> list[int]:
    """``count`` deterministic pseudo-random words in ``[lo, hi)``."""
    if count < 0:
        raise ValueError(f"negative count {count}")
    if hi <= lo:
        raise ValueError(f"empty range [{lo}, {hi})")
    out = []
    state = seed & _LCG_MASK
    span = hi - lo
    for _ in range(count):
        state = (_LCG_A * state + _LCG_C) & _LCG_MASK
        out.append(lo + (state >> 8) % span)
    return out


def split_range(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous chunks.

    The first ``total % parts`` chunks get one extra element; empty
    chunks are returned for parts > total so callers can skip them.
    """
    if parts < 1:
        raise ValueError(f"need >= 1 part, got {parts}")
    base, extra = divmod(total, parts)
    spans = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


@dataclass
class Workload:
    """A benchmark instance: activity + oracle + parameters."""

    name: str
    activity: TLPActivity
    #: Expected final main-memory contents per output object.
    oracle: Mapping[str, list[int]]
    params: dict = field(default_factory=dict)

    def verify(self, machine) -> None:
        """Assert the machine's memory matches the oracle (post-run)."""
        errors = check_outputs(self, machine)
        if errors:
            raise AssertionError(
                f"{self.name}: simulated output diverges from the oracle:\n"
                + "\n".join(errors[:20])
            )


def check_outputs(workload: Workload, machine) -> list[str]:
    """Compare each oracle object against machine memory; returns diffs."""
    errors = []
    for obj_name, expected in workload.oracle.items():
        actual = machine.read_global(obj_name)
        if len(actual) != len(expected):
            errors.append(
                f"{obj_name}: length {len(actual)} != {len(expected)}"
            )
            continue
        for i, (a, e) in enumerate(zip(actual, expected)):
            if wrap64(a) != wrap64(e):
                errors.append(f"{obj_name}[{i}]: got {a}, expected {e}")
    return errors
