"""Image zoom (the paper's ``zoom`` benchmark).

"Zoom is a program that zooms into one part of the input picture.  It is
parallelized by sending different parts of the picture to different PEs.
Input is an n by n picture.  Parts of the input image are prefetched in
the threads that are calculating the zoom."  (Sec. 4.2)

Structure
---------
* Global ``img`` (n*n input picture) and ``out`` ((n*z)**2 zoomed output).
* Each worker produces a band of output rows.  Per output pixel it READs
  the two horizontally-adjacent source pixels and writes one interpolated
  value — 2 READs per WRITE, matching the Table 5 ratio for zoom(32)
  (READ = 32768, WRITE = 16384 for a 32x32 input at zoom factor 4).
* The band's source rows form a parameter-dependent prefetch region.

Interpolation is integer horizontal linear filtering:
``out[y][x] = ((z - fx) * img[sy][sx] + fx * img[sy][sx1]) >> log2(z)``
with ``sy = y // z``, ``sx = x // z``, ``fx = x % z`` and ``sx1`` clamped
to the row end.  The zoom factor must be a power of two.
"""

from __future__ import annotations

from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.workloads.common import Workload, lcg_words

__all__ = ["build", "oracle_zoom"]


def oracle_zoom(img: list[int], n: int, z: int) -> list[int]:
    """Reference integer zoom (row-major output of (n*z)**2 words)."""
    m = n * z
    out = [0] * (m * m)
    for y in range(m):
        sy = y // z
        for x in range(m):
            sx = x // z
            fx = x % z
            sx1 = min(sx + 1, n - 1)
            v0 = img[sy * n + sx]
            v1 = img[sy * n + sx1]
            out[y * m + x] = ((z - fx) * v0 + fx * v1) // z
    return out


def _log2(z: int) -> int:
    if z < 2 or z & (z - 1):
        raise ValueError(f"zoom factor must be a power of two >= 2, got {z}")
    return z.bit_length() - 1


def _build_worker(n: int, z: int, band: int) -> ThreadBuilder:
    m = n * z
    lz = _log2(z)
    src_rows = band // z
    b = ThreadBuilder("zoom_worker")
    img_slot = b.pointer_slot("img_ptr", obj="img")
    out_slot = b.slot("out_ptr")
    y0_slot = b.slot("y0")
    sy0_slot = b.slot("sy0")  # y0 // z, precomputed by the spawner
    join_slot = b.slot("join")

    img_access = GlobalAccess(
        obj="img",
        base_slot=img_slot,
        region_start=LinExpr(param_slot=sy0_slot, scale=4 * n, offset=0),
        region_bytes=4 * n * src_rows,
        expected_uses=2 * band * m,
    )
    out_access = GlobalAccess(obj="out", base_slot=out_slot, region_bytes=4 * m * m)

    with b.block(BlockKind.PL):
        b.load("rimg", img_slot)
        b.load("rout", out_slot)
        b.load("y0", y0_slot)
        b.load("sy0", sy0_slot)
        b.load("rjoin", join_slot)

    with b.block(BlockKind.EX):
        # prow = &img[sy0][0]; pout = &out[y0][0]
        b.muli("t", "sy0", 4 * n)
        b.add("prow", "rimg", "t", comment="&img[sy0][0]")
        b.muli("t", "y0", 4 * m)
        b.add("pout", "rout", "t", comment="&out[y0][0]")
        b.li("nmax", 4 * (n - 1), comment="byte offset of the last column")
        b.li("rowcnt", 0, comment="output rows since the last source row")
        with b.for_range("yy", 0, band):
            with b.for_range("x", 0, m):
                b.shri("sxb", "x", lz)
                b.shli("sxb", "sxb", 2, comment="sx in bytes")
                b.andi("fx", "x", z - 1)
                # sx1 = min(sx+1, n-1) in bytes:
                b.addi("sx1b", "sxb", 4)
                b.min_("sx1b", "sx1b", "nmax")
                b.add("p0", "prow", "sxb")
                b.add("p1", "prow", "sx1b")
                b.read("v0", "p0", 0, access=img_access, comment="img[sy][sx]")
                b.read("v1", "p1", 0, access=img_access, comment="img[sy][sx1]")
                b.li("w0", z)
                b.sub("w0", "w0", "fx")
                b.mul("v0", "v0", "w0")
                b.mul("v1", "v1", "fx")
                b.add("v0", "v0", "v1")
                b.shri("v0", "v0", lz)
                b.write("pout", 0, "v0", access=out_access)
                b.addi("pout", "pout", 4)
            # Advance the source row once every z output rows.
            b.addi("rowcnt", "rowcnt", 1)
            b.slti("advance", "rowcnt", z)
            b.bnez("advance", ".same_row")
            b.addi("prow", "prow", 4 * n)
            b.li("rowcnt", 0)
            b.label(".same_row")

    with b.block(BlockKind.PS):
        b.li("token", 1)
        b.store("rjoin", 0, "token")
        b.stop()
    return b


def _build_join() -> ThreadBuilder:
    b = ThreadBuilder("zoom_join")
    with b.block(BlockKind.EX):
        b.stop()
    return b


def build(
    n: int = 32, z: int = 4, threads: int | None = None, seed: int = 11
) -> Workload:
    """Build the zoom workload.

    The output has ``n*z`` rows split into ``threads`` bands; each band
    must be a multiple of ``z`` so a band's source rows are whole rows.
    """
    lz = _log2(z)
    del lz
    m = n * z
    if threads is None:
        threads = min(16, n)
    if m % threads or (m // threads) % z:
        raise ValueError(
            f"threads={threads} must divide n*z={m} into bands that are "
            f"multiples of z={z}"
        )
    band = m // threads

    img = lcg_words(n * n, seed=seed, lo=0, hi=256)
    out = oracle_zoom(img, n, z)

    worker_b = _build_worker(n, z, band)
    worker = worker_b.build()
    join = _build_join().build()

    spawns = [SpawnSpec(template="zoom_join", extra_sc=threads)]
    for t in range(threads):
        y0 = t * band
        spawns.append(
            SpawnSpec(
                template="zoom_worker",
                stores={
                    worker_b.slot("img_ptr"): ObjRef("img"),
                    worker_b.slot("out_ptr"): ObjRef("out"),
                    worker_b.slot("y0"): y0,
                    worker_b.slot("sy0"): y0 // z,
                    worker_b.slot("join"): SpawnRef(0),
                },
            )
        )
    activity = TLPActivity(
        name=f"zoom({n})",
        templates=[worker, join],
        globals_=[
            GlobalObject("img", tuple(img)),
            GlobalObject.zeros("out", m * m),
        ],
        spawns=spawns,
    )
    return Workload(
        name=f"zoom({n})",
        activity=activity,
        oracle={"out": out},
        params={"n": n, "z": z, "threads": threads, "band": band},
    )
