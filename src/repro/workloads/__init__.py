"""The paper's benchmarks as parameterized DTA activity generators.

Each module exposes ``build(...) -> Workload`` producing the baseline
(no-prefetch) activity plus a pure-Python oracle; the prefetch variant is
derived with :func:`repro.compiler.prefetch_transform`, exactly mirroring
the paper's with/without-prefetching comparison.
"""

from repro.workloads import bitcount, colsum, inplace, matmul, zoom
from repro.workloads.common import Workload, check_outputs, lcg_words, split_range

__all__ = [
    "bitcount",
    "colsum",
    "inplace",
    "matmul",
    "zoom",
    "Workload",
    "check_outputs",
    "lcg_words",
    "split_range",
]

#: Registry used by the benchmark harness: name -> build function.
REGISTRY = {
    "bitcnt": bitcount.build,
    "brighten": inplace.build,
    "colsum": colsum.build,
    "mmul": matmul.build,
    "zoom": zoom.build,
}
