"""Matrix multiply (the paper's ``mmul`` benchmark).

"Matrix multiply (mmul) is a program that multiplies two matrices.
Threads that run in parallel are calculating parts of the output matrix.
The number of threads is always a power of two ... Inputs are two n by n
matrices.  Prefetching of the parts of the input matrices is performed in
the threads that are calculating the output matrix."  (Sec. 4.2)

Structure
---------
* Global objects ``A``, ``B`` (inputs) and ``C`` (output), n*n words each.
* ``threads`` worker threads, each computing a contiguous band of rows of
  C.  A worker READs its band of A and all of B from main memory and
  WRITEs its band of C — so, per Table 5, READs = 2*n**3 and
  WRITEs = n**2 while frame traffic is only the handful of parameters.
* A ``join`` thread with SC = threads; each worker post-stores one token.

The A-band READ is annotated with a parameter-dependent region (rows
``r0 .. r0+rows``), the B READ with the whole matrix — giving the
prefetch pass one strided-band and one whole-object region per worker.
"""

from __future__ import annotations

from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.workloads.common import Workload, lcg_words, split_range

__all__ = ["build", "oracle_matmul"]


def oracle_matmul(a: list[int], b: list[int], n: int) -> list[int]:
    """Reference n*n x n*n integer matrix product (row-major)."""
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i * n + k] * b[k * n + j]
            c[i * n + j] = acc
    return c


def _build_worker(n: int, rows: int, threads: int) -> "ThreadBuilder":
    b = ThreadBuilder("mmul_worker")
    a_slot = b.pointer_slot("A_ptr", obj="A")
    b_slot = b.pointer_slot("B_ptr", obj="B")
    c_slot = b.slot("C_ptr")
    r0_slot = b.slot("r0")
    join_slot = b.slot("join")

    a_access = GlobalAccess(
        obj="A",
        base_slot=a_slot,
        region_start=LinExpr(param_slot=r0_slot, scale=4 * n, offset=0),
        region_bytes=4 * n * rows,
        expected_uses=rows * n * n,
    )
    b_access = GlobalAccess(
        obj="B",
        base_slot=b_slot,
        region_start=LinExpr.const(0),
        region_bytes=4 * n * n,
        expected_uses=rows * n * n,
    )
    c_access = GlobalAccess(obj="C", base_slot=c_slot, region_bytes=4 * n * n)

    with b.block(BlockKind.PL):
        b.load("ra", a_slot, comment="A base")
        b.load("rb", b_slot, comment="B base")
        b.load("rc", c_slot, comment="C base")
        b.load("r0", r0_slot, comment="first row of this band")
        b.load("rjoin", join_slot)

    with b.block(BlockKind.EX):
        # pa0 = &A[r0][0]; pc = &C[r0][0]
        b.muli("rowoff", "r0", 4 * n)
        b.add("pa0", "ra", "rowoff", comment="&A[r0][0]")
        b.add("pc", "rc", "rowoff", comment="&C[r0][0]")
        with b.for_range("i", 0, rows):
            with b.for_range("j", 0, n):
                # pb walks column j of B; pa walks row i of A.
                b.shli("pb_off", "j", 2)
                b.add("pb", "rb", "pb_off")
                b.mov("pa", "pa0")
                b.li("acc", 0)
                with b.for_range("k", 0, n):
                    b.read("va", "pa", 0, access=a_access, comment="A[i][k]")
                    b.read("vb", "pb", 0, access=b_access, comment="B[k][j]")
                    b.mul("t", "va", "vb")
                    b.add("acc", "acc", "t")
                    b.addi("pa", "pa", 4)
                    b.addi("pb", "pb", 4 * n)
                b.write("pc", 0, "acc", access=c_access, comment="C[i][j]")
                b.addi("pc", "pc", 4)
            b.addi("pa0", "pa0", 4 * n, comment="next row of A")

    with b.block(BlockKind.PS):
        b.li("token", 1)
        b.store("rjoin", 0, "token", comment="signal the join thread")
        b.stop()
    return b


def _build_join() -> "ThreadBuilder":
    b = ThreadBuilder("mmul_join")
    with b.block(BlockKind.EX):
        b.stop(comment="all bands done")
    return b


def build(n: int = 32, threads: int | None = None, seed: int = 7) -> Workload:
    """Build the mmul workload.

    ``threads`` must be a power of two dividing ``n`` (paper: "the number
    of threads is always a power of two"); it defaults to ``min(n, 16)``.
    """
    if n < 2:
        raise ValueError(f"mmul needs n >= 2, got {n}")
    if threads is None:
        threads = min(n, 16)
    if threads & (threads - 1):
        raise ValueError(f"threads must be a power of two, got {threads}")
    if n % threads:
        raise ValueError(f"threads ({threads}) must divide n ({n})")
    rows = n // threads

    a = lcg_words(n * n, seed=seed, lo=0, hi=64)
    bm = lcg_words(n * n, seed=seed + 1, lo=0, hi=64)
    c = oracle_matmul(a, bm, n)

    worker_b = _build_worker(n, rows, threads)
    worker = worker_b.build()
    join = _build_join().build()

    spawns = [SpawnSpec(template="mmul_join", extra_sc=threads)]
    for t in range(threads):
        spawns.append(
            SpawnSpec(
                template="mmul_worker",
                stores={
                    worker_b.slot("A_ptr"): ObjRef("A"),
                    worker_b.slot("B_ptr"): ObjRef("B"),
                    worker_b.slot("C_ptr"): ObjRef("C"),
                    worker_b.slot("r0"): t * rows,
                    worker_b.slot("join"): SpawnRef(0),
                },
            )
        )
    activity = TLPActivity(
        name=f"mmul({n})",
        templates=[worker, join],
        globals_=[
            GlobalObject("A", tuple(a)),
            GlobalObject("B", tuple(bm)),
            GlobalObject.zeros("C", n * n),
        ],
        spawns=spawns,
    )
    return Workload(
        name=f"mmul({n})",
        activity=activity,
        oracle={"C": c},
        params={"n": n, "threads": threads, "rows_per_thread": rows},
    )
