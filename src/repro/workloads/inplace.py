"""In-place image brighten — the write-back (DMAPUT) extension workload.

The paper's three benchmarks only *read* global data in their hot loops,
so its prefetch mechanism never needs to write a Local Store buffer back.
Its future work asks for "some other advanced mechanism": this workload
exercises exactly that — a read-modify-write over a global object.

``brighten`` scales every pixel of an n x n image **in place**:
``img[i] = (img[i] * num) >> shift``.  Each worker owns a band of rows:

* baseline DTA: one blocking READ + one posted WRITE per pixel;
* ``prefetch_transform(..., PrefetchOptions(allow_writeback=True))``:
  the band is DMA'd in, updated with LLOAD/LSTORE at local-store speed,
  and DMAPUT back in the PS block before the worker signals the join —
  removing *both* directions of global traffic from the pipeline.

Without ``allow_writeback`` the pass must leave the workload untouched
(the object is written, so a read-only LS copy would go stale) — which
makes this workload the regression test for that safety rule too.
"""

from __future__ import annotations

from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.workloads.common import Workload, lcg_words

__all__ = ["build", "oracle_brighten"]


def oracle_brighten(img: list[int], num: int, shift: int) -> list[int]:
    """Reference in-place brighten."""
    return [(v * num) >> shift for v in img]


def _build_worker(n: int, band: int, num: int, shift: int) -> ThreadBuilder:
    b = ThreadBuilder("brighten_worker")
    img_slot = b.pointer_slot("img_ptr", obj="img")
    r0_slot = b.slot("r0")
    join_slot = b.slot("join")

    words = band * n
    access = GlobalAccess(
        obj="img",
        base_slot=img_slot,
        region_start=LinExpr(param_slot=r0_slot, scale=4 * n),
        region_bytes=4 * words,
        expected_uses=words,
    )

    with b.block(BlockKind.PL):
        b.load("rimg", img_slot)
        b.load("r0", r0_slot)
        b.load("rjoin", join_slot)

    with b.block(BlockKind.EX):
        b.muli("off", "r0", 4 * n)
        b.add("p", "rimg", "off", comment="&img[r0][0]")
        with b.for_range("i", 0, words):
            b.read("v", "p", 0, access=access)
            b.muli("v", "v", num)
            b.shri("v", "v", shift)
            b.write("p", 0, "v", access=access)
            b.addi("p", "p", 4)

    with b.block(BlockKind.PS):
        b.li("token", 1)
        b.store("rjoin", 0, "token")
        b.stop()
    return b


def _build_join() -> ThreadBuilder:
    b = ThreadBuilder("brighten_join")
    with b.block(BlockKind.EX):
        b.stop()
    return b


def build(
    n: int = 16,
    threads: int | None = None,
    num: int = 3,
    shift: int = 1,
    seed: int = 23,
) -> Workload:
    """Build the in-place brighten workload (``threads`` bands of rows)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if threads is None:
        threads = min(8, n)
    if n % threads:
        raise ValueError(f"threads ({threads}) must divide n ({n})")
    band = n // threads

    img = lcg_words(n * n, seed=seed, lo=0, hi=256)
    expected = oracle_brighten(img, num, shift)

    worker_b = _build_worker(n, band, num, shift)
    worker = worker_b.build()
    join = _build_join().build()

    spawns = [SpawnSpec(template="brighten_join", extra_sc=threads)]
    for t in range(threads):
        spawns.append(
            SpawnSpec(
                template="brighten_worker",
                stores={
                    worker_b.slot("img_ptr"): ObjRef("img"),
                    worker_b.slot("r0"): t * band,
                    worker_b.slot("join"): SpawnRef(0),
                },
            )
        )
    activity = TLPActivity(
        name=f"brighten({n})",
        templates=[worker, join],
        globals_=[GlobalObject("img", tuple(img))],
        spawns=spawns,
    )
    return Workload(
        name=f"brighten({n})",
        activity=activity,
        oracle={"img": expected},
        params={"n": n, "threads": threads, "num": num, "shift": shift},
    )
