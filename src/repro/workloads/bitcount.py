"""Bit counting (the paper's ``bitcnt`` benchmark, after MiBench).

"The bitcount from the MiBench suite is a program that counts bits for a
certain number of iterations ... Its parallelization has been performed
by unrolling both the main loop and the loops inside each function ...
Global data that is used by some of the functions in the program is
prefetched in the threads where it was needed."  (Sec. 4.2)

Structure — one thread per function call, as the DTA parallelization of
MiBench's ``bitcnts`` driver:

* A **root** thread forks one ``iter`` thread per iteration — "forking a
  vast amount of threads in a small amount of time", the source of the
  paper's LSE stalls.
* Each **iter** thread derives its input value in-register (MiBench
  generates inputs the same way) and forks five **kernel** threads plus a
  **combiner**, passing the value and result destinations through frames
  — which is why bitcnt's Table 5 row is dominated by LOAD/STORE frame
  traffic rather than global READs.
* The five kernels come from MiBench bitcnts:

  1. ``bit_count``     — Kernighan's clear-lowest-set-bit loop (pure ALU);
  2. ``bitcount``      — the parallel/"nifty" masked adder (pure ALU);
  3. ``btbl_bitcnt``   — 256-entry byte-table lookups (4 READs/call,
     data-dependent index: the paper's not-worth-prefetching case);
  4. ``ntbl_bitcount`` — 16-entry nibble-table lookups (8 READs/call,
     worth prefetching: the whole table is touched);
  5. ``bit_shifter``   — shift-and-test loop (pure ALU).

* The **combiner** (SC = 9: four parameters plus five partial counts)
  sums the kernels' results, WRITEs ``results[i]`` and post-stores a
  token to the **join** thread (SC = iterations).  The combiner of each
  chunk's first iteration also releases the next chain link, which keeps
  the unrolled main loop at most one chunk ahead of completed work (and
  the frame tables finite).

The prefetch pass decouples only the nibble-table READs — 8 of the 12
READs per iteration, mirroring the paper's "prefetching decouples 62% of
READ instructions" — and, because kernel threads are tiny, the DMA
programming overhead keeps the overall bitcnt speedup small (paper:
1.13x) and makes prefetching a net loss when memory latency is 1 cycle,
exactly as in Sec. 4.3.
"""

from __future__ import annotations

from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.workloads.common import Workload

__all__ = ["build", "oracle_bitcnt", "value_for_index"]

_LCG_A = 1103515245
_LCG_C = 12345

#: Combiner frame layout.
_COMB_RES, _COMB_IDX, _COMB_JOIN, _COMB_CHAIN = 0, 1, 2, 3
_COMB_PARTIAL0 = 4
_NUM_KERNELS = 5
#: Frame slot of a chain link that receives the previous chunk's
#: completion token (any otherwise-unused slot works; the token only
#: decrements the SC).
_ROOT_GATE_SLOT = 31


def value_for_index(g: int) -> int:
    """The 16-bit input value for iteration ``g`` (ISA-replicable)."""
    return ((_LCG_A * (g + 1) + _LCG_C) >> 8) & 0xFFFF


def oracle_bitcnt(iterations: int) -> list[int]:
    """Expected ``results``: the five kernels agree, so 5 * popcount."""
    return [
        5 * bin(value_for_index(g)).count("1") for g in range(iterations)
    ]


# -- kernel templates -----------------------------------------------------------


def _kernel_prolog(b: ThreadBuilder) -> None:
    with b.block(BlockKind.PL):
        b.load("v", b.slot("v"))
        b.load("rcomb", b.slot("comb"))


def _kernel_epilog(b: ThreadBuilder, partial_slot: int) -> None:
    with b.block(BlockKind.PS):
        b.store("rcomb", partial_slot, "c", comment="partial count")
        b.stop()


def _build_bit_count() -> ThreadBuilder:
    """Kernighan's loop: clear the lowest set bit until zero."""
    b = ThreadBuilder("k_bit_count")
    b.slot("v"), b.slot("comb")
    _kernel_prolog(b)
    with b.block(BlockKind.EX):
        b.li("c", 0)
        b.label("top")
        b.beqz("v", "end")
        b.subi("t", "v", 1)
        b.and_("v", "v", "t")
        b.addi("c", "c", 1)
        b.jmp("top")
        b.label("end")
    _kernel_epilog(b, _COMB_PARTIAL0 + 0)
    return b


def _build_nifty() -> ThreadBuilder:
    """MIT "nifty parallel count": masked adds, no loops."""
    b = ThreadBuilder("k_bitcount")
    b.slot("v"), b.slot("comb")
    _kernel_prolog(b)
    with b.block(BlockKind.EX):
        b.shri("t", "v", 1)
        b.andi("t", "t", 0x55555555)
        b.sub("x", "v", "t")
        b.andi("t", "x", 0x33333333)
        b.shri("x", "x", 2)
        b.andi("x", "x", 0x33333333)
        b.add("x", "x", "t")
        b.shri("t", "x", 4)
        b.add("x", "x", "t")
        b.andi("x", "x", 0x0F0F0F0F)
        b.muli("x", "x", 0x01010101)
        b.shri("x", "x", 24)
        b.andi("c", "x", 0xFF)
    _kernel_epilog(b, _COMB_PARTIAL0 + 1)
    return b


def _build_btbl() -> ThreadBuilder:
    """256-entry byte-table lookups: 4 READs with data-dependent indices."""
    b = ThreadBuilder("k_btbl")
    b.slot("v"), b.slot("comb")
    btbl_slot = b.pointer_slot("btbl", obj="btbl")
    access = GlobalAccess(
        obj="btbl",
        base_slot=btbl_slot,
        region_start=LinExpr.const(0),
        region_bytes=4 * 256,
        dynamic_index=True,
        expected_uses=1,  # per lookup site; 4 sites -> 16 B of 1024 B used
    )
    with b.block(BlockKind.PL):
        b.load("v", "v")
        b.load("rcomb", "comb")
        b.load("rtbl", btbl_slot)
    with b.block(BlockKind.EX):
        b.li("c", 0)
        for shift in (0, 8, 16, 24):
            b.shri("idx", "v", shift)
            b.andi("idx", "idx", 0xFF)
            b.shli("idx", "idx", 2)
            b.add("p", "rtbl", "idx")
            b.read("t", "p", 0, access=access, comment="btbl[byte]")
            b.add("c", "c", "t")
    _kernel_epilog(b, _COMB_PARTIAL0 + 2)
    return b


def _build_ntbl() -> ThreadBuilder:
    """16-entry nibble-table lookups: 8 READs; worth prefetching."""
    b = ThreadBuilder("k_ntbl")
    b.slot("v"), b.slot("comb")
    ntbl_slot = b.pointer_slot("ntbl", obj="ntbl")
    access = GlobalAccess(
        obj="ntbl",
        base_slot=ntbl_slot,
        region_start=LinExpr.const(0),
        region_bytes=4 * 16,
        dynamic_index=True,
        expected_uses=1,  # per lookup site; 8 sites -> 32 B of 64 B used
    )
    with b.block(BlockKind.PL):
        b.load("v", "v")
        b.load("rcomb", "comb")
        b.load("rtbl", ntbl_slot)
    with b.block(BlockKind.EX):
        b.li("c", 0)
        for shift in (0, 4, 8, 12, 16, 20, 24, 28):
            b.shri("idx", "v", shift)
            b.andi("idx", "idx", 0xF)
            b.shli("idx", "idx", 2)
            b.add("p", "rtbl", "idx")
            b.read("t", "p", 0, access=access, comment="ntbl[nibble]")
            b.add("c", "c", "t")
    _kernel_epilog(b, _COMB_PARTIAL0 + 3)
    return b


def _build_shifter() -> ThreadBuilder:
    """Shift-and-test loop over all bits."""
    b = ThreadBuilder("k_shifter")
    b.slot("v"), b.slot("comb")
    _kernel_prolog(b)
    with b.block(BlockKind.EX):
        b.li("c", 0)
        b.label("top")
        b.beqz("v", "end")
        b.andi("t", "v", 1)
        b.add("c", "c", "t")
        b.shri("v", "v", 1)
        b.jmp("top")
        b.label("end")
    _kernel_epilog(b, _COMB_PARTIAL0 + 4)
    return b


# -- coordination templates ----------------------------------------------------------


def _build_combiner() -> ThreadBuilder:
    """Sums the five partial counts, writes results[i], signals the join.

    The combiner of each chunk's first iteration additionally releases
    the next chain link (its ``chain`` slot holds that link's handle;
    zero for every other combiner) — the gating that keeps the unrolled
    main loop from racing arbitrarily far ahead of the actual work.
    """
    b = ThreadBuilder("bitcnt_comb")
    res_slot = b.slot("res_ptr")
    idx_slot = b.slot("idx")
    join_slot = b.slot("join")
    chain_slot = b.slot("chain")
    partial_slots = [b.slot(f"p{k}") for k in range(_NUM_KERNELS)]
    assert (res_slot, idx_slot, join_slot, chain_slot) == (
        _COMB_RES, _COMB_IDX, _COMB_JOIN, _COMB_CHAIN
    )
    assert partial_slots[0] == _COMB_PARTIAL0

    res_access = GlobalAccess(obj="results", base_slot=res_slot, region_bytes=4)

    with b.block(BlockKind.PL):
        b.load("rres", res_slot)
        b.load("idx", idx_slot)
        b.load("rjoin", join_slot)
        b.load("rchain", chain_slot)
        for k in range(_NUM_KERNELS):
            b.load(f"c{k}", partial_slots[k])
    with b.block(BlockKind.EX):
        b.mov("acc", "c0")
        for k in range(1, _NUM_KERNELS):
            b.add("acc", "acc", f"c{k}")
        b.shli("off", "idx", 2)
        b.add("rp", "rres", "off")
        b.write("rp", 0, "acc", access=res_access, comment="results[i]")
    with b.block(BlockKind.PS):
        b.li("token", 1)
        b.store("rjoin", 0, "token")
        b.beqz("rchain", "no_chain")
        b.store("rchain", _ROOT_GATE_SLOT, "token",
                comment="release the next chain link")
        b.label("no_chain")
        b.stop()
    return b


def _build_iter(template_ids: dict[str, int],
                kernel_builders: dict[str, ThreadBuilder]) -> ThreadBuilder:
    """One iteration: derive the value, fork the five kernels + combiner."""
    b = ThreadBuilder("bitcnt_iter")
    idx_slot = b.slot("idx")
    btbl_slot = b.slot("btbl_ptr")
    ntbl_slot = b.slot("ntbl_ptr")
    res_slot = b.slot("res_ptr")
    join_slot = b.slot("join")
    chain_slot = b.slot("chain")  # next chain link to release (0 = none)

    with b.block(BlockKind.PL):
        b.load("idx", idx_slot)
        b.load("rbtbl", btbl_slot)
        b.load("rntbl", ntbl_slot)
        b.load("rres", res_slot)
        b.load("rjoin", join_slot)
        b.load("rchain", chain_slot)

    with b.block(BlockKind.EX):
        # v = value_for_index(idx), computed in-register like MiBench's
        # generated inputs.
        b.addi("g", "idx", 1)
        b.muli("s", "g", _LCG_A)
        b.addi("s", "s", _LCG_C)
        b.shri("s", "s", 8)
        b.andi("v", "s", 0xFFFF)
        # Fork the combiner: 4 parameters + 5 partials.
        b.falloc("rcomb", template_ids["bitcnt_comb"], 4 + _NUM_KERNELS)
        # Fork the kernels (SC = number of stores each receives below).
        b.falloc("rk0", template_ids["k_bit_count"], 2)
        b.falloc("rk1", template_ids["k_bitcount"], 2)
        b.falloc("rk2", template_ids["k_btbl"], 3)
        b.falloc("rk3", template_ids["k_ntbl"], 3)
        b.falloc("rk4", template_ids["k_shifter"], 2)

    with b.block(BlockKind.PS):
        b.store("rcomb", _COMB_RES, "rres")
        b.store("rcomb", _COMB_IDX, "idx")
        b.store("rcomb", _COMB_JOIN, "rjoin")
        b.store("rcomb", _COMB_CHAIN, "rchain")
        for reg, name in (
            ("rk0", "k_bit_count"),
            ("rk1", "k_bitcount"),
            ("rk2", "k_btbl"),
            ("rk3", "k_ntbl"),
            ("rk4", "k_shifter"),
        ):
            kb = kernel_builders[name]
            b.store(reg, kb.slot("v"), "v")
            b.store(reg, kb.slot("comb"), "rcomb")
            if name == "k_btbl":
                b.store(reg, kb.slot("btbl"), "rbtbl")
            elif name == "k_ntbl":
                b.store(reg, kb.slot("ntbl"), "rntbl")
        b.stop()
    return b


def _build_root(unroll: int, root_template_id: int, iter_template_id: int,
                iter_b: ThreadBuilder) -> ThreadBuilder:
    """The unrolled main loop, as a self-continuing chain.

    The paper parallelizes bitcnt "by unrolling the main loop": each
    chain link forks ``unroll`` iteration threads and, if iterations
    remain, forks its own continuation.  This bounds the live-thread
    count (a fork-everything root would hold its frame while blocking on
    FALLOCs for children that need frames held by its earlier children —
    a real frame-exhaustion deadlock unless virtual frame pointers are
    enabled; see the A3 ablation).
    """
    b = ThreadBuilder("bitcnt_root")
    btbl_slot = b.slot("btbl_ptr")
    ntbl_slot = b.slot("ntbl_ptr")
    res_slot = b.slot("res_ptr")
    join_slot = b.slot("join")
    start_slot = b.slot("start")
    count_slot = b.slot("count")

    with b.block(BlockKind.PL):
        b.load("rbtbl", btbl_slot)
        b.load("rntbl", ntbl_slot)
        b.load("rres", res_slot)
        b.load("rjoin", join_slot)
        b.load("start", start_slot)
        b.load("count", count_slot)

    with b.block(BlockKind.EX):
        # Fork the continuation first so the chain advances while this
        # link is still parameterizing its iteration threads.
        b.li("rnext", 0)
        b.slti("last", "count", unroll + 1)
        b.bnez("last", "no_continuation")
        # 6 parameter stores + 1 completion token from this chunk's
        # first combiner (the chain gate).
        b.falloc("rnext", root_template_id, 7, comment="fork the next chunk")
        b.label("no_continuation")
        for k in range(unroll):
            b.falloc(f"rit{k}", iter_template_id, 6, comment="fork iteration")

    with b.block(BlockKind.PS):
        b.beqz("rnext", "no_next_stores")
        b.addi("nstart", "start", unroll)
        b.subi("ncount", "count", unroll)
        b.store("rnext", btbl_slot, "rbtbl")
        b.store("rnext", ntbl_slot, "rntbl")
        b.store("rnext", res_slot, "rres")
        b.store("rnext", join_slot, "rjoin")
        b.store("rnext", start_slot, "nstart")
        b.store("rnext", count_slot, "ncount")
        b.label("no_next_stores")
        b.li("rzero", 0)
        for k in range(unroll):
            b.addi("idx", "start", k)
            b.store(f"rit{k}", iter_b.slot("idx"), "idx")
            b.store(f"rit{k}", iter_b.slot("btbl_ptr"), "rbtbl")
            b.store(f"rit{k}", iter_b.slot("ntbl_ptr"), "rntbl")
            b.store(f"rit{k}", iter_b.slot("res_ptr"), "rres")
            b.store(f"rit{k}", iter_b.slot("join"), "rjoin")
            # Only the chunk's first iteration carries the chain gate.
            chain_reg = "rnext" if k == 0 else "rzero"
            b.store(f"rit{k}", iter_b.slot("chain"), chain_reg)
        b.stop()
    return b


def _build_join() -> ThreadBuilder:
    b = ThreadBuilder("bitcnt_join")
    with b.block(BlockKind.EX):
        b.stop()
    return b


def build(iterations: int = 64, unroll: int = 4, seed: int = 0,
          **_compat) -> Workload:
    """Build the bitcnt workload for ``iterations`` iterations.

    ``unroll`` is the main-loop unroll factor (iteration threads forked
    per chain link); it must divide ``iterations``.  ``seed`` is accepted
    for interface symmetry; inputs are a fixed deterministic sequence,
    like MiBench's.
    """
    del seed
    if iterations < 1:
        raise ValueError(f"need >= 1 iteration, got {iterations}")
    if unroll < 1 or iterations % unroll:
        raise ValueError(
            f"unroll ({unroll}) must divide iterations ({iterations})"
        )

    btbl = tuple(bin(i).count("1") for i in range(256))
    ntbl = tuple(bin(i).count("1") for i in range(16))
    results = oracle_bitcnt(iterations)

    kernel_builders = {
        "k_bit_count": _build_bit_count(),
        "k_bitcount": _build_nifty(),
        "k_btbl": _build_btbl(),
        "k_ntbl": _build_ntbl(),
        "k_shifter": _build_shifter(),
    }
    comb_b = _build_combiner()
    # Template id layout (FALLOC immediates): fixed by list order below.
    order = [
        "bitcnt_root", "bitcnt_iter", "bitcnt_comb",
        "k_bit_count", "k_bitcount", "k_btbl", "k_ntbl", "k_shifter",
        "bitcnt_join",
    ]
    template_ids = {name: i for i, name in enumerate(order)}
    iter_b = _build_iter(template_ids, kernel_builders)
    root_b = _build_root(
        unroll,
        template_ids["bitcnt_root"],
        template_ids["bitcnt_iter"],
        iter_b,
    )

    templates = [
        root_b.build(),
        iter_b.build(),
        comb_b.build(),
        kernel_builders["k_bit_count"].build(),
        kernel_builders["k_bitcount"].build(),
        kernel_builders["k_btbl"].build(),
        kernel_builders["k_ntbl"].build(),
        kernel_builders["k_shifter"].build(),
        _build_join().build(),
    ]
    assert [t.name for t in templates] == order

    spawns = [
        SpawnSpec(template="bitcnt_join", extra_sc=iterations),
        SpawnSpec(
            template="bitcnt_root",
            stores={
                root_b.slot("btbl_ptr"): ObjRef("btbl"),
                root_b.slot("ntbl_ptr"): ObjRef("ntbl"),
                root_b.slot("res_ptr"): ObjRef("results"),
                root_b.slot("join"): SpawnRef(0),
                root_b.slot("start"): 0,
                root_b.slot("count"): iterations,
            },
        ),
    ]
    activity = TLPActivity(
        name=f"bitcnt({iterations})",
        templates=templates,
        globals_=[
            GlobalObject("btbl", btbl),
            GlobalObject("ntbl", ntbl),
            GlobalObject.zeros("results", iterations),
        ],
        spawns=spawns,
    )
    return Workload(
        name=f"bitcnt({iterations})",
        activity=activity,
        oracle={"results": results},
        params={
            "iterations": iterations,
            "unroll": unroll,
            "threads_per_iteration": 2 + _NUM_KERNELS,
        },
    )
