"""Column sums — the strided-gather (DMAGETS) extension workload.

Section 3 of the paper motivates DMA over a split-transaction network
with exactly this access shape: "in case where thread accesses array with
a certain stride between elements it could generate too many transactions
(and DMA performs it in one transaction)."

``colsum`` computes ``out[j] = sum_i A[i][j]`` for an n x n row-major
matrix: each worker walks one **column** — n words, each ``4*n`` bytes
apart.  Three strategies compare directly:

* **baseline** — n blocking READs per column;
* **block prefetch** — fetch the whole matrix per worker (contiguous DMA;
  simple but transfers n x more bytes than needed and bloats the LS);
* **strided gather** — one DMAGETS per column: n words transferred, one
  DMA command, contiguous in the LS.

The worker's column stride is itself a frame parameter (slot ``stride``),
which is what lets the pass redirect it to one word when the gathered
copy is contiguous.  ``build(..., mode=...)`` selects how the access is
annotated: ``"gather"`` (strided region), ``"block"`` (whole-matrix
region) or ``"none"`` (no annotation; the pass leaves the READs alone).
"""

from __future__ import annotations

from repro.core.activity import (
    GlobalObject,
    ObjRef,
    SpawnRef,
    SpawnSpec,
    TLPActivity,
)
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind
from repro.workloads.common import Workload, lcg_words

__all__ = ["build", "oracle_colsum", "MODES"]

MODES = ("gather", "block", "none")


def oracle_colsum(a: list[int], n: int) -> list[int]:
    """Reference column sums."""
    return [sum(a[i * n + j] for i in range(n)) for j in range(n)]


def _build_worker(n: int, cols: int, mode: str) -> ThreadBuilder:
    b = ThreadBuilder("colsum_worker")
    a_slot = b.pointer_slot("A_ptr", obj="A")
    out_slot = b.slot("out_ptr")
    j0_slot = b.slot("j0")          # first column of this worker's range
    stride_slot = b.slot("stride")  # row stride in bytes (spawner: 4*n)
    join_slot = b.slot("join")

    if mode == "gather":
        access = GlobalAccess(
            obj="A",
            base_slot=a_slot,
            # A column starts at A + j*4; only one column per region, so
            # workers with cols > 1 get one region per column offset...
            # which a static annotation cannot express.  Instead each
            # worker handles exactly `cols` adjacent columns as separate
            # loop nests when cols == 1 (enforced in build()).
            region_start=LinExpr(param_slot=j0_slot, scale=4),
            region_bytes=4 * n,  # n words transferred
            expected_uses=n,
            stride_bytes=4 * n,
            stride_param_slot=stride_slot,
        )
    elif mode == "block":
        access = GlobalAccess(
            obj="A",
            base_slot=a_slot,
            region_start=LinExpr.const(0),
            region_bytes=4 * n * n,  # the whole matrix
            expected_uses=n * cols,
        )
    elif mode == "none":
        access = None
    else:
        raise ValueError(f"unknown colsum mode {mode!r}")

    with b.block(BlockKind.PL):
        b.load("ra", a_slot)
        b.load("rout", out_slot)
        b.load("j0", j0_slot)
        b.load("rstride", stride_slot)
        b.load("rjoin", join_slot)

    with b.block(BlockKind.EX):
        b.shli("joff", "j0", 2)
        b.add("pcol", "ra", "joff", comment="&A[0][j0]")
        b.shli("pout", "j0", 2)
        b.add("pout", "rout", "pout")
        with b.for_range("c", 0, cols):
            b.mov("p", "pcol")
            b.li("acc", 0)
            with b.for_range("i", 0, n):
                b.read("v", "p", 0, access=access, comment="A[i][j]")
                b.add("acc", "acc", "v")
                b.add("p", "p", "rstride", comment="next row, same column")
            b.write("pout", 0, "acc")
            b.addi("pout", "pout", 4)
            b.addi("pcol", "pcol", 4)

    with b.block(BlockKind.PS):
        b.li("token", 1)
        b.store("rjoin", 0, "token")
        b.stop()
    return b


def _build_join() -> ThreadBuilder:
    b = ThreadBuilder("colsum_join")
    with b.block(BlockKind.EX):
        b.stop()
    return b


def build(n: int = 16, threads: int | None = None, mode: str = "gather",
          seed: int = 31) -> Workload:
    """Build the colsum workload.

    In ``gather`` mode every worker handles exactly one column (the
    strided region is per-column); in the other modes the ``n`` columns
    are split over ``threads`` workers.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "gather":
        threads = n  # one column per worker: one strided region each
    elif threads is None:
        threads = min(8, n)
    if n % threads:
        raise ValueError(f"threads ({threads}) must divide n ({n})")
    cols = n // threads

    a = lcg_words(n * n, seed=seed, lo=0, hi=100)
    out = oracle_colsum(a, n)

    worker_b = _build_worker(n, cols, mode)
    worker = worker_b.build()
    join = _build_join().build()

    spawns = [SpawnSpec(template="colsum_join", extra_sc=threads)]
    for t in range(threads):
        spawns.append(
            SpawnSpec(
                template="colsum_worker",
                stores={
                    worker_b.slot("A_ptr"): ObjRef("A"),
                    worker_b.slot("out_ptr"): ObjRef("out"),
                    worker_b.slot("j0"): t * cols,
                    worker_b.slot("stride"): 4 * n,
                    worker_b.slot("join"): SpawnRef(0),
                },
            )
        )
    activity = TLPActivity(
        name=f"colsum({n},{mode})",
        templates=[worker, join],
        globals_=[
            GlobalObject("A", tuple(a)),
            GlobalObject.zeros("out", n),
        ],
        spawns=spawns,
    )
    return Workload(
        name=f"colsum({n},{mode})",
        activity=activity,
        oracle={"out": out},
        params={"n": n, "threads": threads, "cols": cols, "mode": mode},
    )
