"""Textual assembly: parse the disassembly format back into programs.

:meth:`~repro.isa.program.ThreadProgram.disassemble` renders a template
as human-readable text; this module provides the inverse,
:func:`parse_program`, so thread templates can live in ``.dta`` files,
be patched by hand and round-trip losslessly (modulo comments' exact
spacing):

    ; thread template 'sum2'
    .PL:
        0  LOAD r0, #0
        1  LOAD r1, #1
    .EX:
        2  ADD r0, r0, r1
        3  STOP

Syntax
------
* ``.PF: / .PL: / .EX: / .PS:`` open a code block;
* one instruction per line: mnemonic then comma-separated operands —
  ``rN`` registers, ``#N`` immediates, ``@N`` flat branch targets,
  ``tN`` DMA tags, ``+N`` strides;
* an optional leading flat index (ignored on input) and an optional
  ``; comment`` suffix;
* a ``frame N`` directive sets ``frame_words``; ``ptr SLOT OBJ``
  declares a pointer parameter.

Access annotations are compiler metadata, not architectural state, so
they have no text form; parsing a disassembled program drops them (the
paper's pass has already consumed them by the time code is emitted).
"""

from __future__ import annotations

import re

from repro.isa.instructions import Imm, Instruction, PointerParam, Reg
from repro.isa.opcodes import Op, spec_of
from repro.isa.program import BlockKind, ThreadProgram

__all__ = ["parse_program", "AsmError"]


class AsmError(ValueError):
    """Malformed assembly text."""


_BLOCK_RE = re.compile(r"^\.(PF|PL|EX|PS):$")
_NAME_RE = re.compile(r"^;\s*thread template '([^']+)'")
_INDEX_RE = re.compile(r"^(\d+)\s+(.*)$")


def _parse_operand(token: str, line_no: int) -> tuple[str, object]:
    token = token.strip()
    if not token:
        raise AsmError(f"line {line_no}: empty operand")
    head, body = token[0], token[1:]
    try:
        if head == "r":
            return "reg", Reg(int(body))
        if head == "#":
            return "imm", int(body)
        if head == "@":
            return "target", int(body)
        if head == "t":
            return "tag", int(body)
        if head == "+":
            return "stride", int(body)
    except ValueError as exc:
        raise AsmError(f"line {line_no}: bad operand {token!r}") from exc
    raise AsmError(f"line {line_no}: unrecognized operand {token!r}")


def _parse_instruction(text: str, line_no: int) -> Instruction:
    # Strip a trailing comment.
    comment = ""
    if ";" in text:
        text, comment = text.split(";", 1)
        comment = comment.strip()
    text = text.strip()
    if not text:
        raise AsmError(f"line {line_no}: empty instruction")
    parts = text.split(None, 1)
    mnemonic = parts[0]
    try:
        op = Op(mnemonic)
    except ValueError as exc:
        raise AsmError(f"line {line_no}: unknown opcode {mnemonic!r}") from exc
    operand_text = parts[1] if len(parts) > 1 else ""
    tokens = [t for t in (s.strip() for s in operand_text.split(",")) if t]
    fields = [f for f in spec_of(op).signature.split(",") if f]
    if len(tokens) != len(fields):
        raise AsmError(
            f"line {line_no}: {mnemonic} expects {len(fields)} operands "
            f"({spec_of(op).signature}), got {len(tokens)}"
        )
    kw: dict[str, object] = {"comment": comment}
    for field, token in zip(fields, tokens):
        kind, value = _parse_operand(token, line_no)
        if field == "rd":
            if kind != "reg":
                raise AsmError(f"line {line_no}: destination must be rN")
            kw["rd"] = value.index  # type: ignore[union-attr]
        elif field in ("ra", "rb"):
            if kind == "reg":
                kw[field] = value
            elif kind == "imm":
                kw[field] = Imm(value)  # type: ignore[arg-type]
            else:
                raise AsmError(
                    f"line {line_no}: {field} must be a register or immediate"
                )
        elif field == "imm":
            if kind != "imm":
                raise AsmError(f"line {line_no}: expected #N immediate")
            kw["imm"] = value
        elif field == "target":
            if kind != "target":
                raise AsmError(f"line {line_no}: expected @N branch target")
            kw["target"] = value
        elif field == "tag":
            if kind != "tag":
                raise AsmError(f"line {line_no}: expected tN tag")
            kw["tag"] = value
        elif field == "stride":
            if kind != "stride":
                raise AsmError(f"line {line_no}: expected +N stride")
            kw["stride"] = value
    try:
        return Instruction(op=op, **kw)  # type: ignore[arg-type]
    except ValueError as exc:
        raise AsmError(f"line {line_no}: {exc}") from exc


def parse_program(text: str, name: str | None = None) -> ThreadProgram:
    """Parse assembly text into a validated :class:`ThreadProgram`.

    The template name is taken from the header comment unless ``name``
    overrides it; ``frame_words`` is inferred from the largest frame slot
    referenced unless a ``frame N`` directive says otherwise.
    """
    blocks: dict[BlockKind, list[Instruction]] = {}
    current: BlockKind | None = None
    parsed_name = name
    frame_words: int | None = None
    pointer_params: list[PointerParam] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        m = _NAME_RE.match(line)
        if m:
            if parsed_name is None:
                parsed_name = m.group(1)
            continue
        if line.startswith(";"):
            continue
        m = _BLOCK_RE.match(line)
        if m:
            kind = BlockKind(m.group(1))
            if kind in blocks:
                raise AsmError(f"line {line_no}: duplicate block {kind.value}")
            blocks[kind] = []
            current = kind
            continue
        parts = line.split()
        if parts[0] == "frame":
            try:
                frame_words = int(parts[1])
            except (IndexError, ValueError) as exc:
                raise AsmError(f"line {line_no}: frame directive needs a "
                               f"number") from exc
            continue
        if parts[0] == "ptr":
            try:
                pointer_params.append(
                    PointerParam(slot=int(parts[1]), obj=parts[2])
                )
            except (IndexError, ValueError) as exc:
                raise AsmError(f"line {line_no}: ptr directive needs "
                               f"'ptr SLOT OBJ'") from exc
            continue
        if current is None:
            raise AsmError(f"line {line_no}: instruction before any block")
        m = _INDEX_RE.match(line)
        if m:
            line = m.group(2)
        blocks[current].append(_parse_instruction(line, line_no))

    if not blocks:
        raise AsmError("no code blocks found")
    if frame_words is None:
        frame_words = _infer_frame_words(blocks)
    return ThreadProgram(
        name=parsed_name or "anonymous",
        blocks={k: tuple(v) for k, v in blocks.items()},
        pointer_params=tuple(pointer_params),
        frame_words=frame_words,
    )


def _infer_frame_words(blocks: dict[BlockKind, list[Instruction]]) -> int:
    """Largest frame slot referenced by LOAD/STOREF, plus one."""
    top = 0
    for instrs in blocks.values():
        for instr in instrs:
            if instr.op in (Op.LOAD, Op.STOREF) and instr.imm is not None:
                top = max(top, instr.imm + 1)
    return top
