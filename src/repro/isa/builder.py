"""Assembler DSL for writing DTA thread templates.

The paper's benchmarks are "hand-coded for the original DTA"; this builder
is the reproduction's assembler.  It provides

* **symbolic registers** — ``b.reg("acc")`` allocates a register and any
  operand may be referred to by name;
* **named frame slots** — ``b.slot("A_ptr")`` allocates a frame slot, and
  ``b.pointer_slot("A_ptr", obj="A")`` additionally marks it as a pointer
  parameter for the prefetch pass;
* **labels and structured loops** — ``b.label(...)`` / ``b.for_range(...)``;
* **block discipline** — instructions are emitted into the current code
  block (``with b.block(BlockKind.EX): ...``) and the resulting
  :class:`~repro.isa.program.ThreadProgram` re-validates everything.

Example
-------
>>> from repro.isa import BlockKind, ThreadBuilder
>>> b = ThreadBuilder("sum2")
>>> a, c = b.slot("a"), b.slot("b")
>>> with b.block(BlockKind.PL):
...     b.load("x", a)
...     b.load("y", c)
>>> with b.block(BlockKind.EX):
...     b.add("x", "x", "y")
...     b.stop()
>>> program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.isa.instructions import (
    GlobalAccess,
    Imm,
    Instruction,
    Operand,
    PointerParam,
    Reg,
)
from repro.isa.opcodes import Op, spec_of
from repro.isa.program import BlockKind, ProgramError, ThreadProgram

__all__ = ["ThreadBuilder", "BuilderError"]


class BuilderError(ValueError):
    """Misuse of the thread builder."""


RegLike = "Reg | str"
SrcLike = "Reg | str | Imm | int"


class ThreadBuilder:
    """Incrementally assembles one :class:`ThreadProgram`."""

    def __init__(self, name: str, num_registers: int = 128) -> None:
        self.name = name
        self._num_registers = num_registers
        self._regs: dict[str, Reg] = {}
        self._next_reg = 0
        self._slots: dict[str, int] = {}
        self._next_slot = 0
        self._pointer_params: list[PointerParam] = []
        self._blocks: dict[BlockKind, list[Instruction]] = {}
        self._current: BlockKind | None = None
        #: label -> (block, in-block index)
        self._labels: dict[str, tuple[BlockKind, int]] = {}
        self._label_seq = 0

    # -- registers & slots ---------------------------------------------------

    def reg(self, name: str) -> Reg:
        """Allocate (or look up) the symbolic register ``name``."""
        if name not in self._regs:
            if self._next_reg >= self._num_registers:
                raise BuilderError(
                    f"{self.name}: out of registers allocating {name!r} "
                    f"(limit {self._num_registers})"
                )
            self._regs[name] = Reg(self._next_reg)
            self._next_reg += 1
        return self._regs[name]

    def slot(self, name: str) -> int:
        """Allocate (or look up) the named frame slot ``name``."""
        if name not in self._slots:
            self._slots[name] = self._next_slot
            self._next_slot += 1
        return self._slots[name]

    def pointer_slot(self, name: str, obj: str) -> int:
        """Allocate frame slot ``name`` holding a pointer into ``obj``."""
        index = self.slot(name)
        for p in self._pointer_params:
            if p.slot == index:
                if p.obj != obj:
                    raise BuilderError(
                        f"{self.name}: slot {name!r} already points into "
                        f"{p.obj!r}"
                    )
                return index
        self._pointer_params.append(PointerParam(slot=index, obj=obj))
        return index

    def reserve_slots(self, count: int) -> int:
        """Reserve ``count`` anonymous slots; returns the first index."""
        if count < 1:
            raise BuilderError(f"{self.name}: reserve_slots needs count >= 1")
        first = self._next_slot
        self._next_slot += count
        return first

    @property
    def frame_words(self) -> int:
        return self._next_slot

    # -- blocks & labels -------------------------------------------------------

    @contextlib.contextmanager
    def block(self, kind: BlockKind) -> Iterator["ThreadBuilder"]:
        """Emit subsequent instructions into the ``kind`` code block."""
        if self._current is not None:
            raise BuilderError(f"{self.name}: blocks cannot nest")
        self._current = kind
        self._blocks.setdefault(kind, [])
        try:
            yield self
        finally:
            self._current = None

    def label(self, name: str | None = None) -> str:
        """Bind a label at the current position of the current block."""
        if self._current is None:
            raise BuilderError(f"{self.name}: label outside of a block")
        if name is None:
            name = f".L{self._label_seq}"
            self._label_seq += 1
        if name in self._labels:
            raise BuilderError(f"{self.name}: duplicate label {name!r}")
        self._labels[name] = (self._current, len(self._blocks[self._current]))
        return name

    # -- operand coercion -------------------------------------------------------

    def _r(self, value: "Reg | str") -> Reg:
        if isinstance(value, Reg):
            return value
        if isinstance(value, str):
            return self.reg(value)
        raise BuilderError(f"{self.name}: expected a register, got {value!r}")

    def _src(self, value: "Reg | str | Imm | int") -> Operand:
        if isinstance(value, (Reg, Imm)):
            return value
        if isinstance(value, str):
            return self.reg(value)
        if isinstance(value, int):
            return Imm(value)
        raise BuilderError(f"{self.name}: bad source operand {value!r}")

    # -- emission ------------------------------------------------------------------

    def emit(self, instr: Instruction) -> Instruction:
        """Append a fully-formed instruction to the current block."""
        if self._current is None:
            raise BuilderError(
                f"{self.name}: instruction {instr.op.value} outside of a block"
            )
        self._blocks[self._current].append(instr)
        return instr

    def _emit(self, op: Op, **kw: object) -> Instruction:
        return self.emit(Instruction(op=op, **kw))  # type: ignore[arg-type]

    # ALU ------------------------------------------------------------------------

    def li(self, rd: RegLike, value: int, comment: str = "") -> Instruction:
        return self._emit(Op.LI, rd=self._r(rd).index, imm=value, comment=comment)

    def mov(self, rd: RegLike, ra: SrcLike, comment: str = "") -> Instruction:
        return self._emit(Op.MOV, rd=self._r(rd).index, ra=self._src(ra),
                          comment=comment)

    def _alu3(self, op: Op, rd: RegLike, ra: SrcLike, rb: SrcLike,
              comment: str) -> Instruction:
        return self._emit(op, rd=self._r(rd).index, ra=self._src(ra),
                          rb=self._src(rb), comment=comment)

    def _alui(self, op: Op, rd: RegLike, ra: SrcLike, imm: int,
              comment: str) -> Instruction:
        return self._emit(op, rd=self._r(rd).index, ra=self._src(ra), imm=imm,
                          comment=comment)

    def add(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.ADD, rd, ra, rb, comment)

    def sub(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.SUB, rd, ra, rb, comment)

    def mul(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.MUL, rd, ra, rb, comment)

    def div(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.DIV, rd, ra, rb, comment)

    def mod(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.MOD, rd, ra, rb, comment)

    def and_(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.AND, rd, ra, rb, comment)

    def or_(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.OR, rd, ra, rb, comment)

    def xor(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.XOR, rd, ra, rb, comment)

    def shl(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.SHL, rd, ra, rb, comment)

    def shr(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.SHR, rd, ra, rb, comment)

    def addi(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.ADDI, rd, ra, imm, comment)

    def subi(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.SUBI, rd, ra, imm, comment)

    def muli(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.MULI, rd, ra, imm, comment)

    def andi(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.ANDI, rd, ra, imm, comment)

    def ori(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.ORI, rd, ra, imm, comment)

    def xori(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.XORI, rd, ra, imm, comment)

    def shli(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.SHLI, rd, ra, imm, comment)

    def shri(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.SHRI, rd, ra, imm, comment)

    def slt(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.SLT, rd, ra, rb, comment)

    def slti(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.SLTI, rd, ra, imm, comment)

    def seq(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.SEQ, rd, ra, rb, comment)

    def seqi(self, rd, ra, imm: int, comment: str = "") -> Instruction:
        return self._alui(Op.SEQI, rd, ra, imm, comment)

    def min_(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.MIN, rd, ra, rb, comment)

    def max_(self, rd, ra, rb, comment: str = "") -> Instruction:
        return self._alu3(Op.MAX, rd, ra, rb, comment)

    def nop(self, comment: str = "") -> Instruction:
        return self._emit(Op.NOP, comment=comment)

    # Control ------------------------------------------------------------------

    def beq(self, ra, rb, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BEQ, ra=self._src(ra), rb=self._src(rb),
                          target=target, comment=comment)

    def bne(self, ra, rb, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BNE, ra=self._src(ra), rb=self._src(rb),
                          target=target, comment=comment)

    def blt(self, ra, rb, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BLT, ra=self._src(ra), rb=self._src(rb),
                          target=target, comment=comment)

    def bge(self, ra, rb, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BGE, ra=self._src(ra), rb=self._src(rb),
                          target=target, comment=comment)

    def beqz(self, ra, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BEQZ, ra=self._src(ra), target=target,
                          comment=comment)

    def bnez(self, ra, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.BNEZ, ra=self._src(ra), target=target,
                          comment=comment)

    def jmp(self, target: str, comment: str = "") -> Instruction:
        return self._emit(Op.JMP, target=target, comment=comment)

    @contextlib.contextmanager
    def for_range(self, counter: RegLike, start: SrcLike, stop: SrcLike,
                  step: int = 1) -> Iterator[Reg]:
        """Structured counted loop: ``for counter in range(start, stop, step)``.

        Emits the init before the body, and the increment + back-branch
        after it.  ``stop`` may be a register or an immediate.  The loop
        body must not fall outside the current block.
        """
        if step == 0:
            raise BuilderError(f"{self.name}: for_range step must be nonzero")
        creg = self._r(counter)
        sstart = self._src(start)
        if isinstance(sstart, Imm):
            self.li(creg, sstart.value, comment="loop init")
        else:
            self.mov(creg, sstart, comment="loop init")
        top = self.label()
        yield creg
        self.addi(creg, creg, step, comment="loop step")
        cond = self.reg(f".loopcond{self._label_seq}")
        sstop = self._src(stop)
        if step > 0:
            if isinstance(sstop, Imm):
                self.slti(cond, creg, sstop.value, comment="loop test")
            else:
                self.slt(cond, creg, sstop, comment="loop test")
            self.bnez(cond, top, comment="loop back-edge")
        else:
            if isinstance(sstop, Imm):
                # counter > stop  <=>  stop < counter
                self.li(cond, sstop.value)
                self.slt(cond, cond, creg, comment="loop test")
            else:
                self.slt(cond, sstop, creg, comment="loop test")
            self.bnez(cond, top, comment="loop back-edge")

    # Memory / DTA ------------------------------------------------------------------

    def load(self, rd: RegLike, slot: "int | str", comment: str = "") -> Instruction:
        """LOAD rd <- own_frame[slot]."""
        index = self._slots[slot] if isinstance(slot, str) else slot
        return self._emit(Op.LOAD, rd=self._r(rd).index, imm=index,
                          comment=comment)

    def storef(self, slot: "int | str", ra: RegLike, comment: str = "") -> Instruction:
        """STOREF own_frame[slot] <- ra (self-store, no SC effect)."""
        index = self._slots[slot] if isinstance(slot, str) else slot
        return self._emit(Op.STOREF, ra=self._r(ra), imm=index, comment=comment)

    def store(self, handle: RegLike, slot: int, value: RegLike,
              comment: str = "") -> Instruction:
        """STORE frame_of(handle)[slot] <- value (decrements target SC)."""
        return self._emit(Op.STORE, ra=self._r(handle), rb=self._r(value),
                          imm=slot, comment=comment)

    def lload(self, rd: RegLike, base: RegLike, offset: int = 0,
              comment: str = "") -> Instruction:
        return self._emit(Op.LLOAD, rd=self._r(rd).index, ra=self._r(base),
                          imm=offset, comment=comment)

    def lstore(self, base: RegLike, offset: int, value: RegLike,
               comment: str = "") -> Instruction:
        return self._emit(Op.LSTORE, ra=self._r(base), rb=self._r(value),
                          imm=offset, comment=comment)

    def read(self, rd: RegLike, base: RegLike, offset: int = 0,
             access: GlobalAccess | None = None, comment: str = "") -> Instruction:
        return self._emit(Op.READ, rd=self._r(rd).index, ra=self._r(base),
                          imm=offset, access=access, comment=comment)

    def write(self, base: RegLike, offset: int, value: RegLike,
              access: GlobalAccess | None = None, comment: str = "") -> Instruction:
        return self._emit(Op.WRITE, ra=self._r(base), rb=self._r(value),
                          imm=offset, access=access, comment=comment)

    def dmaget(self, ls: RegLike, mem: RegLike, size: int, tag: int,
               comment: str = "") -> Instruction:
        return self._emit(Op.DMAGET, ra=self._r(ls), rb=self._r(mem), imm=size,
                          tag=tag, comment=comment)

    def dmagets(self, ls: RegLike, mem: RegLike, count: int, tag: int,
                stride: int, comment: str = "") -> Instruction:
        """Strided gather: ``count`` words, one every ``stride`` bytes."""
        return self._emit(Op.DMAGETS, ra=self._r(ls), rb=self._r(mem),
                          imm=count, tag=tag, stride=stride, comment=comment)

    def dmaput(self, ls: RegLike, mem: RegLike, size: int, tag: int,
               comment: str = "") -> Instruction:
        return self._emit(Op.DMAPUT, ra=self._r(ls), rb=self._r(mem), imm=size,
                          tag=tag, comment=comment)

    def dmawait(self, tag: int, comment: str = "") -> Instruction:
        return self._emit(Op.DMAWAIT, tag=tag, comment=comment)

    def lsalloc(self, rd: RegLike, size: int, comment: str = "") -> Instruction:
        return self._emit(Op.LSALLOC, rd=self._r(rd).index, imm=size,
                          comment=comment)

    def falloc(self, rd: RegLike, template: int, sc: SrcLike,
               comment: str = "") -> Instruction:
        """FALLOC rd <- frame handle for a new ``template`` thread with SC."""
        return self._emit(Op.FALLOC, rd=self._r(rd).index, ra=self._src(sc),
                          imm=template, comment=comment)

    def ffree(self, handle: RegLike, comment: str = "") -> Instruction:
        return self._emit(Op.FFREE, ra=self._r(handle), comment=comment)

    def stop(self, comment: str = "") -> Instruction:
        return self._emit(Op.STOP, comment=comment)

    # -- build -----------------------------------------------------------------------

    def build(self) -> ThreadProgram:
        """Resolve labels and produce the validated :class:`ThreadProgram`."""
        # Compute flat offsets per block in canonical order.
        offsets: dict[BlockKind, int] = {}
        offset = 0
        for kind in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS):
            instrs = self._blocks.get(kind)
            if instrs:
                offsets[kind] = offset
                offset += len(instrs)
        resolved: dict[BlockKind, list[Instruction]] = {}
        for kind, instrs in self._blocks.items():
            if not instrs:
                continue
            out: list[Instruction] = []
            for instr in instrs:
                if instr.spec.is_branch and isinstance(instr.target, str):
                    if instr.target not in self._labels:
                        raise BuilderError(
                            f"{self.name}: undefined label {instr.target!r}"
                        )
                    lkind, lindex = self._labels[instr.target]
                    if lkind is not kind:
                        raise ProgramError(
                            f"{self.name}: branch from {kind.value} to label in "
                            f"{lkind.value} (branches must stay in their block)"
                        )
                    instr = instr.with_target(offsets[lkind] + lindex)
                out.append(instr)
            resolved[kind] = out
        return ThreadProgram(
            name=self.name,
            blocks={k: tuple(v) for k, v in resolved.items()},
            pointer_params=tuple(self._pointer_params),
            frame_words=self.frame_words,
        )
