"""Pure functional semantics of the ALU and branch instructions.

These helpers are shared between the SPU pipeline model (the normal
execution path) and the LSE's XP-pipeline PreFetch executor (ablation A2,
where the scheduler element itself runs PF blocks while the SPU keeps
executing other threads).  Keeping value computation in one place
guarantees the two engines can never disagree about a result.

All arithmetic is 64-bit two's-complement: values wrap at 2**63, and the
shift instructions operate on the 64-bit unsigned representation (SHR is a
logical shift, as the bit-counting kernels require).
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op

__all__ = ["wrap64", "to_unsigned64", "alu_result", "branch_taken", "ArithmeticFault"]

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


class ArithmeticFault(RuntimeError):
    """Division or modulo by zero inside a simulated program."""


def wrap64(value: int) -> int:
    """Wrap an unbounded int to signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def to_unsigned64(value: int) -> int:
    """The 64-bit unsigned representation of a signed value."""
    return value & _MASK64


def _shift_amount(value: int) -> int:
    """Shift amounts use the low 6 bits, like most 64-bit ISAs."""
    return value & 63


def alu_result(op: Op, a: int, b: int) -> int:
    """Result of a two-source ALU operation (immediate forms pass b=imm)."""
    if op in (Op.ADD, Op.ADDI):
        return wrap64(a + b)
    if op in (Op.SUB, Op.SUBI):
        return wrap64(a - b)
    if op in (Op.MUL, Op.MULI):
        return wrap64(a * b)
    if op is Op.DIV:
        if b == 0:
            raise ArithmeticFault("division by zero")
        q = abs(a) // abs(b)
        return wrap64(-q if (a < 0) != (b < 0) else q)
    if op is Op.MOD:
        if b == 0:
            raise ArithmeticFault("modulo by zero")
        r = abs(a) % abs(b)
        return wrap64(-r if a < 0 else r)
    if op in (Op.AND, Op.ANDI):
        return wrap64(to_unsigned64(a) & to_unsigned64(b))
    if op in (Op.OR, Op.ORI):
        return wrap64(to_unsigned64(a) | to_unsigned64(b))
    if op in (Op.XOR, Op.XORI):
        return wrap64(to_unsigned64(a) ^ to_unsigned64(b))
    if op in (Op.SHL, Op.SHLI):
        return wrap64(to_unsigned64(a) << _shift_amount(b))
    if op in (Op.SHR, Op.SHRI):
        return wrap64(to_unsigned64(a) >> _shift_amount(b))
    if op in (Op.SLT, Op.SLTI):
        return 1 if a < b else 0
    if op in (Op.SEQ, Op.SEQI):
        return 1 if a == b else 0
    if op is Op.MIN:
        return min(a, b)
    if op is Op.MAX:
        return max(a, b)
    if op is Op.MOV:
        return wrap64(a)
    if op is Op.LI:
        return wrap64(b)
    raise ValueError(f"{op.value} is not an ALU operation")


def branch_taken(op: Op, a: int, b: int = 0) -> bool:
    """Whether a branch instruction is taken given its source values."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return a < b
    if op is Op.BGE:
        return a >= b
    if op is Op.BEQZ:
        return a == 0
    if op is Op.BNEZ:
        return a != 0
    if op is Op.JMP:
        return True
    raise ValueError(f"{op.value} is not a branch")


def is_alu_op(instr: Instruction) -> bool:
    """True for instructions fully evaluable by :func:`alu_result`."""
    try:
        alu_result(instr.op, 0, 1)
    except (ValueError, ArithmeticFault):
        return instr.op in (Op.DIV, Op.MOD)
    return True
