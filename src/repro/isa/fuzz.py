"""Random DTA program generation for differential testing.

:func:`random_activity` builds a syntactically valid, always-terminating
random TLP activity from an integer seed: a configurable mix of ALU
chains, bounded loops, global reads (with honest region annotations),
global writes to a private output range, frame traffic and forks.  Every
generated activity

* terminates (loops are counted, forks are bounded, SCs are consistent);
* is race-free (each thread writes a disjoint output slice);
* is accepted by the prefetch pass (annotations follow the pointer-param
  convention).

That makes the generator suitable for three differential checks, used by
``tests/integration/test_fuzz.py``:

1. cycle simulator vs functional interpreter (memory equivalence);
2. baseline vs prefetch-transformed program (semantics preservation);
3. any machine shape (SPEs, latency, cache) vs any other.

The generator uses its own :class:`random.Random` instance — runs are
fully reproducible from the seed and never touch global RNG state.
"""

from __future__ import annotations

import random

from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import GlobalAccess, LinExpr
from repro.isa.program import BlockKind

__all__ = ["random_activity", "FuzzSpec"]

_ALU_OPS = ["add", "sub", "mul", "and_", "or_", "xor", "min_", "max_"]
_ALU_IMM_OPS = ["addi", "subi", "muli", "andi", "ori", "xori"]


class FuzzSpec:
    """Tunable shape of generated activities."""

    def __init__(
        self,
        max_workers: int = 4,
        max_body_ops: int = 24,
        max_loop_trip: int = 6,
        input_words: int = 32,
        reads_per_worker: int = 6,
    ) -> None:
        self.max_workers = max_workers
        self.max_body_ops = max_body_ops
        self.max_loop_trip = max_loop_trip
        self.input_words = input_words
        self.reads_per_worker = reads_per_worker


def _emit_alu(b: ThreadBuilder, rng: random.Random, srcs: list[str],
              dsts: list[str]) -> None:
    dst = rng.choice(dsts)
    if rng.random() < 0.5:
        op = rng.choice(_ALU_OPS)
        getattr(b, op)(dst, rng.choice(srcs), rng.choice(srcs))
    else:
        op = rng.choice(_ALU_IMM_OPS)
        getattr(b, op)(dst, rng.choice(srcs), rng.randrange(0, 64))


def _emit_loop(b: ThreadBuilder, rng: random.Random, srcs: list[str],
               dsts: list[str], spec: FuzzSpec,
               depth_budget: list[int]) -> None:
    trip = rng.randrange(1, spec.max_loop_trip + 1)
    counter = f"lc{depth_budget[0]}"
    depth_budget[0] += 1
    with b.for_range(counter, 0, trip):
        for _ in range(rng.randrange(1, 4)):
            _emit_alu(b, rng, srcs, dsts)


def _build_worker(rng: random.Random, spec: FuzzSpec, wid: int,
                  out_words_per_worker: int) -> ThreadBuilder:
    b = ThreadBuilder(f"fuzz_worker{wid}")
    in_slot = b.pointer_slot("in_ptr", obj="fin")
    out_slot = b.slot("out_ptr")
    idx_slot = b.slot("idx")
    join_slot = b.slot("join")

    n_reads = rng.randrange(0, spec.reads_per_worker + 1)
    access = GlobalAccess(
        obj="fin",
        base_slot=in_slot,
        region_start=LinExpr.const(0),
        region_bytes=4 * spec.input_words,
        expected_uses=max(1, n_reads),
        dynamic_index=True,
    )

    with b.block(BlockKind.PL):
        b.load("rin", in_slot)
        b.load("rout", out_slot)
        b.load("ridx", idx_slot)
        b.load("rjoin", join_slot)

    # ridx participates as a source but is never clobbered: the output
    # address computation below depends on it.
    dsts = ["t0", "t1", "t2"]
    srcs = ["ridx"] + dsts
    with b.block(BlockKind.EX):
        for r in dsts:
            b.li(r, rng.randrange(0, 100))
        ops = rng.randrange(2, spec.max_body_ops)
        depth_budget = [0]
        reads_left = n_reads
        for _ in range(ops):
            kind = rng.random()
            if kind < 0.15 and depth_budget[0] < 3:
                _emit_loop(b, rng, srcs, dsts, spec, depth_budget)
            elif kind < 0.45 and reads_left:
                reads_left -= 1
                # A bounded dynamic index into the input region (ANDI
                # masks on the unsigned representation, so any value —
                # including negative intermediates — yields a valid
                # in-region word index).
                b.andi("off", rng.choice(srcs), spec.input_words - 1)
                b.shli("off", "off", 2)
                b.add("p", "rin", "off")
                b.read("rv", "p", 0, access=access)
                b.add(rng.choice(dsts), rng.choice(srcs), "rv")
            else:
                _emit_alu(b, rng, srcs, dsts)
        # Deterministic output: worker wid owns its private output slice.
        for w in range(out_words_per_worker):
            b.muli("addr", "ridx", 4 * out_words_per_worker)
            b.add("addr", "addr", "rout")
            b.add("sum", dsts[w % 3], dsts[(w + 1) % 3])
            b.write("addr", 4 * w, "sum")

    with b.block(BlockKind.PS):
        b.li("tok", 1)
        b.store("rjoin", 0, "tok")
        b.stop()
    return b


def random_activity(seed: int, spec: FuzzSpec | None = None) -> TLPActivity:
    """A random, terminating, race-free TLP activity for ``seed``."""
    spec = spec or FuzzSpec()
    rng = random.Random(seed)
    workers = rng.randrange(1, spec.max_workers + 1)
    out_words_per_worker = rng.randrange(1, 4)

    data = [rng.randrange(0, 1000) for _ in range(spec.input_words)]
    builders = [
        _build_worker(rng, spec, w, out_words_per_worker)
        for w in range(workers)
    ]

    join = ThreadBuilder("fuzz_join")
    with join.block(BlockKind.EX):
        join.stop()

    spawns = [SpawnSpec(template="fuzz_join", extra_sc=workers)]
    for w, wb in enumerate(builders):
        from repro.core.activity import SpawnRef

        spawns.append(
            SpawnSpec(
                template=wb.name,
                stores={
                    wb.slot("in_ptr"): ObjRef("fin"),
                    wb.slot("out_ptr"): ObjRef("fout"),
                    wb.slot("idx"): w,
                    wb.slot("join"): SpawnRef(0),
                },
            )
        )
    return TLPActivity(
        name=f"fuzz({seed})",
        templates=[wb.build() for wb in builders] + [join.build()],
        globals_=[
            GlobalObject("fin", tuple(data)),
            GlobalObject.zeros("fout", workers * out_words_per_worker),
        ],
        spawns=spawns,
    )
