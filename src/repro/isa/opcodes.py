"""Opcode definitions for the DTA/SPU instruction set.

The reproduction uses a scalar RISC ISA with the DTA thread-management
extensions of Table 1 (FALLOC / FFREE / STOP / LOAD / STORE), the
main-memory access instructions the paper adds for the Cell SPU
(READ / WRITE), and the DMA programming command of Table 3 (DMAGET, whose
operands are the LS address, the main-memory address, the size and the
tag ID).

Every opcode carries an :class:`OpSpec` describing

* its **issue slot** — the SPU dual-issues one :data:`Slot.MEM` and one
  :data:`Slot.ALU` instruction per cycle, in program order;
* its **result latency** (for scoreboard modeling; ``None`` means the
  latency is dynamic, e.g. a main-memory READ);
* its **operand signature**, validated by the builder;
* its **unit** — which hardware unit a stall on this instruction is
  attributed to (this drives the Figure 5 breakdown).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Slot", "Unit", "Op", "OpSpec", "SPEC", "spec_of"]


class Slot(enum.Enum):
    """Issue slot an instruction occupies."""

    ALU = "alu"
    MEM = "mem"


class Unit(enum.Enum):
    """Hardware unit that services an instruction (stall attribution)."""

    PIPE = "pipe"  # serviced inside the pipeline (ALU, branches)
    LS = "ls"  # local store (frame + prefetched-data accesses)
    MAIN = "main"  # main memory
    LSE = "lse"  # local scheduler element
    MFC = "mfc"  # DMA controller


class Op(enum.Enum):
    """All opcodes understood by the SPU model."""

    # -- ALU ---------------------------------------------------------------
    LI = "LI"  # rd <- imm
    MOV = "MOV"  # rd <- ra
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    MOD = "MOD"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SHL = "SHL"
    SHR = "SHR"
    ADDI = "ADDI"
    SUBI = "SUBI"
    MULI = "MULI"
    ANDI = "ANDI"
    ORI = "ORI"
    XORI = "XORI"
    SHLI = "SHLI"
    SHRI = "SHRI"
    SLT = "SLT"  # rd <- (ra < rb)
    SLTI = "SLTI"
    SEQ = "SEQ"  # rd <- (ra == rb)
    SEQI = "SEQI"
    MIN = "MIN"
    MAX = "MAX"
    NOP = "NOP"
    # -- control (uses the ALU slot; SPU has no branch prediction) ----------
    BEQ = "BEQ"
    BNE = "BNE"
    BLT = "BLT"
    BGE = "BGE"
    BEQZ = "BEQZ"
    BNEZ = "BNEZ"
    JMP = "JMP"
    # -- frame memory (Table 1: LOAD/STORE address the frame memory) --------
    LOAD = "LOAD"  # rd <- own_frame[imm]
    STOREF = "STOREF"  # own_frame[imm] <- ra   (self-store; no SC effect)
    STORE = "STORE"  # frame_of(handle=ra)[imm] <- rb  (decrements SC)
    # -- local store (prefetched global data) --------------------------------
    LLOAD = "LLOAD"  # rd <- LS[ra + imm]
    LSTORE = "LSTORE"  # LS[ra + imm] <- rb
    # -- main memory ----------------------------------------------------------
    READ = "READ"  # rd <- MEM[ra + imm]
    WRITE = "WRITE"  # MEM[ra + imm] <- rb  (posted)
    # -- DMA / prefetch (Table 3 command format) -----------------------------
    DMAGET = "DMAGET"  # MFC: LS[ra ..] <- MEM[rb ..], size=imm, tag=tag
    DMAGETS = "DMAGETS"  # strided gather: imm words every `stride` bytes
    DMAPUT = "DMAPUT"  # MFC: MEM[rb ..] <- LS[ra ..], size=imm, tag=tag
    DMAWAIT = "DMAWAIT"  # block until DMA tag group done (in-thread wait)
    LSALLOC = "LSALLOC"  # rd <- LSE-allocated prefetch buffer of imm bytes
    # -- thread management (Table 1) -----------------------------------------
    FALLOC = "FALLOC"  # rd <- handle of new frame (template=imm, SC=ra)
    FFREE = "FFREE"  # release frame handle in ra
    STOP = "STOP"  # thread finished


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    op: Op
    slot: Slot
    unit: Unit
    #: Operand signature, e.g. ``"rd,ra,rb"`` — validated by the builder.
    #: Fields: rd (dest reg), ra/rb (source reg-or-imm), imm (immediate),
    #: target (branch label), tag (DMA tag id).
    signature: str
    #: Cycles until the result register is usable; ``None`` = dynamic.
    result_latency: int | None = 1
    is_branch: bool = False
    #: True if the instruction may write a register.
    writes_rd: bool = False


def _s(op: Op, slot: Slot, unit: Unit, sig: str, lat: int | None = 1,
       branch: bool = False) -> OpSpec:
    return OpSpec(
        op=op,
        slot=slot,
        unit=unit,
        signature=sig,
        result_latency=lat,
        is_branch=branch,
        writes_rd=sig.startswith("rd"),
    )


#: The full opcode table.
SPEC: dict[Op, OpSpec] = {
    s.op: s
    for s in [
        # ALU ops: 1-cycle except multiply/divide (in-order SPU FX pipes).
        _s(Op.LI, Slot.ALU, Unit.PIPE, "rd,imm"),
        _s(Op.MOV, Slot.ALU, Unit.PIPE, "rd,ra"),
        _s(Op.ADD, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.SUB, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.MUL, Slot.ALU, Unit.PIPE, "rd,ra,rb", lat=2),
        _s(Op.DIV, Slot.ALU, Unit.PIPE, "rd,ra,rb", lat=8),
        _s(Op.MOD, Slot.ALU, Unit.PIPE, "rd,ra,rb", lat=8),
        _s(Op.AND, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.OR, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.XOR, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.SHL, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.SHR, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.ADDI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.SUBI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.MULI, Slot.ALU, Unit.PIPE, "rd,ra,imm", lat=2),
        _s(Op.ANDI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.ORI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.XORI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.SHLI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.SHRI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.SLT, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.SLTI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.SEQ, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.SEQI, Slot.ALU, Unit.PIPE, "rd,ra,imm"),
        _s(Op.MIN, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.MAX, Slot.ALU, Unit.PIPE, "rd,ra,rb"),
        _s(Op.NOP, Slot.ALU, Unit.PIPE, ""),
        # Control.
        _s(Op.BEQ, Slot.ALU, Unit.PIPE, "ra,rb,target", branch=True),
        _s(Op.BNE, Slot.ALU, Unit.PIPE, "ra,rb,target", branch=True),
        _s(Op.BLT, Slot.ALU, Unit.PIPE, "ra,rb,target", branch=True),
        _s(Op.BGE, Slot.ALU, Unit.PIPE, "ra,rb,target", branch=True),
        _s(Op.BEQZ, Slot.ALU, Unit.PIPE, "ra,target", branch=True),
        _s(Op.BNEZ, Slot.ALU, Unit.PIPE, "ra,target", branch=True),
        _s(Op.JMP, Slot.ALU, Unit.PIPE, "target", branch=True),
        # Frame memory.
        _s(Op.LOAD, Slot.MEM, Unit.LS, "rd,imm", lat=None),
        _s(Op.STOREF, Slot.MEM, Unit.LS, "ra,imm", lat=None),
        _s(Op.STORE, Slot.MEM, Unit.LSE, "ra,rb,imm", lat=None),
        # Local store.
        _s(Op.LLOAD, Slot.MEM, Unit.LS, "rd,ra,imm", lat=None),
        _s(Op.LSTORE, Slot.MEM, Unit.LS, "ra,rb,imm", lat=None),
        # Main memory.
        _s(Op.READ, Slot.MEM, Unit.MAIN, "rd,ra,imm", lat=None),
        _s(Op.WRITE, Slot.MEM, Unit.MAIN, "ra,rb,imm", lat=None),
        # DMA.
        _s(Op.DMAGET, Slot.MEM, Unit.MFC, "ra,rb,imm,tag", lat=None),
        _s(Op.DMAGETS, Slot.MEM, Unit.MFC, "ra,rb,imm,tag,stride", lat=None),
        _s(Op.DMAPUT, Slot.MEM, Unit.MFC, "ra,rb,imm,tag", lat=None),
        _s(Op.DMAWAIT, Slot.MEM, Unit.MFC, "tag", lat=None),
        _s(Op.LSALLOC, Slot.MEM, Unit.LSE, "rd,imm", lat=None),
        # Thread management.
        _s(Op.FALLOC, Slot.MEM, Unit.LSE, "rd,ra,imm", lat=None),
        _s(Op.FFREE, Slot.MEM, Unit.LSE, "ra", lat=None),
        _s(Op.STOP, Slot.MEM, Unit.LSE, "", lat=None),
    ]
}


def spec_of(op: Op) -> OpSpec:
    """The :class:`OpSpec` for ``op``."""
    return SPEC[op]
