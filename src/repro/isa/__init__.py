"""The DTA/SPU instruction set: opcodes, instructions, programs, assembler.

Public surface:

* :class:`~repro.isa.opcodes.Op` / :class:`~repro.isa.opcodes.OpSpec` — the
  opcode table (Table 1 thread-management instructions, Table 3 DMA
  command, plus the scalar ALU/control set).
* :class:`~repro.isa.instructions.Instruction` and the operand/annotation
  types (:class:`~repro.isa.instructions.Reg`,
  :class:`~repro.isa.instructions.Imm`,
  :class:`~repro.isa.instructions.GlobalAccess`,
  :class:`~repro.isa.instructions.LinExpr`,
  :class:`~repro.isa.instructions.PointerParam`).
* :class:`~repro.isa.program.ThreadProgram` /
  :class:`~repro.isa.program.BlockKind` — validated thread templates.
* :class:`~repro.isa.builder.ThreadBuilder` — the assembler DSL.
"""

from repro.isa.asm import AsmError, parse_program
from repro.isa.builder import BuilderError, ThreadBuilder
from repro.isa.instructions import (
    GlobalAccess,
    Imm,
    Instruction,
    LinExpr,
    PointerParam,
    Reg,
)
from repro.isa.opcodes import Op, OpSpec, Slot, Unit, spec_of
from repro.isa.program import BlockKind, ProgramError, ThreadProgram
from repro.isa.semantics import ArithmeticFault, alu_result, branch_taken, wrap64

__all__ = [
    "Op",
    "OpSpec",
    "Slot",
    "Unit",
    "spec_of",
    "Instruction",
    "Reg",
    "Imm",
    "GlobalAccess",
    "LinExpr",
    "PointerParam",
    "BlockKind",
    "ThreadProgram",
    "ProgramError",
    "ThreadBuilder",
    "BuilderError",
    "parse_program",
    "AsmError",
    "ArithmeticFault",
    "alu_result",
    "branch_taken",
    "wrap64",
]
