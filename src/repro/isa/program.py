"""Thread programs: code blocks, label resolution, block discipline.

A DTA thread consists of code blocks executed in a fixed order
(paper Figs. 3/4):

* **PF** (PreFetch) — added by the prefetch compiler pass; programs the
  DMA unit and stashes translated pointers into the thread's own frame.
* **PL** (Pre-Load) — reads input data from the frame into registers.
* **EX** (EXecute) — computes on registers (plus, in the original DTA,
  possibly-blocking main-memory READ/WRITEs — the problem this paper
  removes).
* **PS** (Post-Store) — sends results to the frames of other threads.

:class:`ThreadProgram` stores each block, resolves branch labels to flat
instruction indices, and enforces the paper's block discipline (e.g.
frame LOADs may not appear in EX, STOREs only in PS, exactly one STOP at
the very end).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, PointerParam
from repro.isa.opcodes import Op

__all__ = ["BlockKind", "ThreadProgram", "ProgramError"]


class ProgramError(ValueError):
    """A thread program violates the DTA block discipline."""


class BlockKind(enum.Enum):
    """Code-block kinds, in execution order."""

    PF = "PF"
    PL = "PL"
    EX = "EX"
    PS = "PS"

    @property
    def order(self) -> int:
        return _BLOCK_ORDER[self]


_BLOCK_ORDER = {BlockKind.PF: 0, BlockKind.PL: 1, BlockKind.EX: 2, BlockKind.PS: 3}

#: Which blocks each restricted opcode may appear in.
_ALLOWED_BLOCKS: dict[Op, frozenset[BlockKind]] = {
    Op.LOAD: frozenset({BlockKind.PF, BlockKind.PL}),
    Op.STOREF: frozenset({BlockKind.PF}),
    Op.STORE: frozenset({BlockKind.PS}),
    Op.READ: frozenset({BlockKind.EX}),
    Op.WRITE: frozenset({BlockKind.EX}),
    Op.LLOAD: frozenset({BlockKind.PL, BlockKind.EX}),
    Op.LSTORE: frozenset({BlockKind.PL, BlockKind.EX}),
    Op.DMAGET: frozenset({BlockKind.PF}),
    Op.DMAGETS: frozenset({BlockKind.PF}),
    Op.DMAPUT: frozenset({BlockKind.PS}),
    Op.DMAWAIT: frozenset({BlockKind.PF, BlockKind.EX, BlockKind.PS}),
    Op.LSALLOC: frozenset({BlockKind.PF}),
    Op.FALLOC: frozenset({BlockKind.EX, BlockKind.PS}),
    Op.FFREE: frozenset({BlockKind.EX, BlockKind.PS}),
    Op.STOP: frozenset({BlockKind.EX, BlockKind.PS}),
}


@dataclass(frozen=True)
class ThreadProgram:
    """An immutable, label-resolved DTA thread template.

    Parameters
    ----------
    name:
        Human-readable template name (unique within an activity).
    blocks:
        Mapping from :class:`BlockKind` to instruction tuples; labels must
        already be resolved to flat indices (use
        :class:`~repro.isa.builder.ThreadBuilder` to get this right).
    pointer_params:
        Frame slots that hold pointers into named global objects (consumed
        by the prefetch pass).
    frame_words:
        Frame slots this template uses (inputs + compiler scratch).
    """

    name: str
    blocks: dict[BlockKind, tuple[Instruction, ...]] = field(default_factory=dict)
    pointer_params: tuple[PointerParam, ...] = ()
    frame_words: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "blocks",
            {k: tuple(v) for k, v in self.blocks.items() if v},
        )
        self._validate()
        flat: list[Instruction] = []
        ranges: dict[BlockKind, tuple[int, int]] = {}
        for kind in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS):
            instrs = self.blocks.get(kind, ())
            start = len(flat)
            flat.extend(instrs)
            if instrs:
                ranges[kind] = (start, len(flat))
        object.__setattr__(self, "_flat", tuple(flat))
        object.__setattr__(self, "_ranges", ranges)

    # -- views ---------------------------------------------------------------

    @property
    def flat(self) -> tuple[Instruction, ...]:
        """All instructions in execution order."""
        return self._flat  # type: ignore[attr-defined]

    @property
    def block_ranges(self) -> dict[BlockKind, tuple[int, int]]:
        """``{kind: (start, end)}`` half-open flat index ranges."""
        return dict(self._ranges)  # type: ignore[attr-defined]

    @property
    def decoded(self):
        """The :class:`~repro.isa.decoded.DecodedProgram` for this program.

        Built lazily on first use and cached for the program's lifetime
        (programs are immutable).  Only the fast execution paths consult
        it; with ``REPRO_SIM_FAST=0`` it is never built.
        """
        cached = getattr(self, "_decoded", None)
        if cached is None:
            from repro.isa.decoded import decode_program

            cached = decode_program(self)
            object.__setattr__(self, "_decoded", cached)
        return cached

    def __getstate__(self) -> dict:
        # The decoded cache holds per-opcode closures, which cannot be
        # pickled (and would bloat workload-cache keys anyway).  Drop it;
        # it rebuilds lazily after unpickling.
        state = dict(self.__dict__)
        state.pop("_decoded", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def block_of(self, index: int) -> BlockKind:
        """The block containing flat instruction ``index``."""
        for kind, (start, end) in self._ranges.items():  # type: ignore[attr-defined]
            if start <= index < end:
                return kind
        raise IndexError(f"instruction index {index} out of range")

    def block(self, kind: BlockKind) -> tuple[Instruction, ...]:
        return self.blocks.get(kind, ())

    @property
    def has_prefetch(self) -> bool:
        return BlockKind.PF in self.blocks

    def __len__(self) -> int:
        return len(self.flat)

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        if not self.blocks:
            raise ProgramError(f"{self.name}: empty thread program")
        if self.frame_words < 0:
            raise ProgramError(f"{self.name}: negative frame_words")
        seen_ptr_slots = set()
        for p in self.pointer_params:
            if p.slot in seen_ptr_slots:
                raise ProgramError(
                    f"{self.name}: duplicate pointer param slot {p.slot}"
                )
            seen_ptr_slots.add(p.slot)
            if p.slot >= self.frame_words:
                raise ProgramError(
                    f"{self.name}: pointer param slot {p.slot} beyond "
                    f"frame_words={self.frame_words}"
                )

        flat_len = sum(len(v) for v in self.blocks.values())
        stops: list[tuple[BlockKind, int]] = []
        offset = 0
        for kind in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS):
            instrs = self.blocks.get(kind, ())
            for i, instr in enumerate(instrs):
                allowed = _ALLOWED_BLOCKS.get(instr.op)
                if allowed is not None and kind not in allowed:
                    raise ProgramError(
                        f"{self.name}: {instr.op.value} not allowed in "
                        f"{kind.value} block (allowed: "
                        f"{sorted(k.value for k in allowed)})"
                    )
                if instr.op is Op.STOP:
                    stops.append((kind, offset + i))
                if instr.spec.is_branch:
                    if not isinstance(instr.target, int):
                        raise ProgramError(
                            f"{self.name}: unresolved branch target "
                            f"{instr.target!r} in {kind.value}"
                        )
                    # A branch may target any instruction of its own block,
                    # or the block's end (fall-through into the next block;
                    # illegal in the final block, which must end via STOP).
                    end = offset + len(instrs)
                    last_kind = max(self.blocks, key=lambda k: k.order)
                    limit = end if kind is not last_kind else end - 1
                    if not offset <= instr.target <= limit:
                        raise ProgramError(
                            f"{self.name}: branch in {kind.value} targets flat "
                            f"index {instr.target}, outside the block "
                            f"[{offset}, {end})"
                        )
                for operand_slot in (instr.rd,):
                    if operand_slot is not None and instr.op in (
                        Op.LOAD,
                    ) and instr.imm is not None and instr.imm >= self.frame_words:
                        raise ProgramError(
                            f"{self.name}: LOAD from frame slot {instr.imm} "
                            f"beyond frame_words={self.frame_words}"
                        )
                if instr.op is Op.STOREF and instr.imm is not None \
                        and instr.imm >= self.frame_words:
                    raise ProgramError(
                        f"{self.name}: STOREF to frame slot {instr.imm} "
                        f"beyond frame_words={self.frame_words}"
                    )
            offset += len(instrs)

        if len(stops) != 1:
            raise ProgramError(
                f"{self.name}: expected exactly one STOP, found {len(stops)}"
            )
        stop_kind, stop_index = stops[0]
        if stop_index != flat_len - 1:
            raise ProgramError(f"{self.name}: STOP must be the final instruction")
        last_kind = max(self.blocks, key=lambda k: k.order)
        if stop_kind is not last_kind:
            raise ProgramError(
                f"{self.name}: STOP must sit in the last block ({last_kind.value})"
            )

    # -- pretty printing ---------------------------------------------------------

    def disassemble(self) -> str:
        """Human-readable listing, one block per section."""
        lines = [f"; thread template {self.name!r} ({len(self.flat)} instructions)"]
        for kind in (BlockKind.PF, BlockKind.PL, BlockKind.EX, BlockKind.PS):
            instrs = self.blocks.get(kind)
            if not instrs:
                continue
            start, _ = self.block_ranges[kind]
            lines.append(f".{kind.value}:")
            for i, instr in enumerate(instrs):
                lines.append(f"  {start + i:4d}  {instr}")
        return "\n".join(lines)
