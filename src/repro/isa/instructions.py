"""Instruction objects and compiler-facing access annotations.

An :class:`Instruction` is a frozen record of an opcode plus operands.
Source operands (``ra``/``rb``) are either a :class:`Reg` or an
:class:`Imm`; destination (``rd``) is always a register index.  Branch
targets are resolved by the program container from labels to flat
instruction indices.

Global-memory instructions (READ / WRITE) optionally carry a
:class:`GlobalAccess` annotation naming the global object they touch and
how the accessed index relates to thread parameters.  These annotations
stand in for the static analysis the paper's compiler performs ("the
compiler has to recognize when a thread uses different types of global
data") and are consumed by :mod:`repro.compiler` to synthesize PreFetch
code blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, OpSpec, spec_of

__all__ = [
    "Reg",
    "Imm",
    "Operand",
    "LinExpr",
    "GlobalAccess",
    "PointerParam",
    "Instruction",
]


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Reg | Imm


@dataclass(frozen=True)
class LinExpr:
    """A linear expression over one thread parameter: ``scale*param + offset``.

    ``param_slot`` is the frame slot holding the parameter, or ``None`` for
    a constant.  Used by :class:`GlobalAccess` region descriptors to express
    param-dependent prefetch regions (e.g. "rows ``i0 .. i0+k`` of A", where
    ``i0`` arrives in frame slot 3).
    """

    param_slot: int | None = None
    scale: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.param_slot is None and self.scale != 0:
            raise ValueError("constant LinExpr must have scale == 0")
        if self.param_slot is not None and self.param_slot < 0:
            raise ValueError(f"negative frame slot {self.param_slot}")

    @property
    def is_constant(self) -> bool:
        return self.param_slot is None

    def evaluate(self, params: dict[int, int]) -> int:
        """Value of the expression given frame-slot values."""
        if self.param_slot is None:
            return self.offset
        return self.scale * params[self.param_slot] + self.offset

    @staticmethod
    def const(value: int) -> "LinExpr":
        return LinExpr(param_slot=None, scale=0, offset=value)


@dataclass(frozen=True)
class GlobalAccess:
    """Annotation on a READ/WRITE: which global object, which region.

    Attributes
    ----------
    obj:
        Name of the global data object (registered with the workload's
        :class:`~repro.workloads.common.GlobalData` layout).
    base_slot:
        Frame slot that holds the object's base pointer.  The prefetch
        pass redirects this parameter to the LS buffer (scratchpad
        pointer translation).
    region_start:
        Byte offset (relative to the base pointer) of the start of the
        region this thread may touch, as a :class:`LinExpr` over thread
        parameters.
    region_bytes:
        Size of the region in bytes (static per thread template).
    dynamic_index:
        True when the accessed element inside the region is not known
        statically (the bitcnt table-lookup case); the worthwhileness
        heuristic then compares expected use against region size.
    expected_uses:
        Statically-estimated number of executed accesses to the region
        per thread execution (loop trip counts); drives worthwhileness.
    stride_bytes:
        Distance between consecutive accessed elements.  4 (default)
        means a contiguous region; larger values describe a strided walk
        (e.g. a matrix column) that the pass can gather with a single
        strided DMA command (DMAGETS) instead of fetching the whole
        span — the paper's "DMA performs it in one transaction" case.
        ``region_bytes`` always counts the bytes *transferred*
        (``4 * element count``); the memory span of a strided region is
        ``stride_bytes * element count``.
    stride_param_slot:
        Frame slot holding the stride value (in bytes) the program's
        address arithmetic uses.  Required for strided regions: gathered
        elements are contiguous in the LS, so the pass redirects this
        parameter to 4 alongside the pointer translation.
    """

    obj: str
    base_slot: int
    region_start: LinExpr = field(default_factory=lambda: LinExpr.const(0))
    region_bytes: int = 4
    dynamic_index: bool = False
    expected_uses: int = 1
    stride_bytes: int = 4
    stride_param_slot: int | None = None

    def __post_init__(self) -> None:
        if self.region_bytes < 4:
            raise ValueError(f"region must be >= 4 bytes, got {self.region_bytes}")
        if self.region_bytes % 4:
            raise ValueError(f"region must be word-aligned, got {self.region_bytes}")
        if self.expected_uses < 1:
            raise ValueError(f"expected_uses must be >= 1, got {self.expected_uses}")
        if self.base_slot < 0:
            raise ValueError(f"negative base slot {self.base_slot}")
        if self.stride_bytes < 4 or self.stride_bytes % 4:
            raise ValueError(
                f"stride must be a word multiple >= 4, got {self.stride_bytes}"
            )
        if self.stride_bytes > 4 and self.stride_param_slot is None:
            raise ValueError(
                "strided regions need stride_param_slot so the pass can "
                "redirect the program's stride parameter"
            )

    @property
    def is_strided(self) -> bool:
        return self.stride_bytes > 4

    @property
    def region_key(self) -> tuple:
        """Regions with equal keys are prefetched by one DMA command."""
        return (self.obj, self.base_slot, self.region_start,
                self.region_bytes, self.stride_bytes)


@dataclass(frozen=True)
class PointerParam:
    """Marks a frame slot as a pointer parameter into a global object.

    Declared by thread templates so the prefetch pass knows which PL
    parameter loads must be redirected to translated LS pointers.
    """

    slot: int
    obj: str


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    ``target`` holds a branch label (str) before resolution or a flat
    instruction index (int) after; the program container resolves labels.
    """

    op: Op
    rd: int | None = None
    ra: Operand | None = None
    rb: Operand | None = None
    imm: int | None = None
    target: "str | int | None" = None
    tag: int | None = None
    stride: int | None = None
    access: GlobalAccess | None = None
    comment: str = ""

    @property
    def spec(self) -> OpSpec:
        return spec_of(self.op)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        spec = spec_of(self.op)
        fields = [f for f in spec.signature.split(",") if f]
        wanted = set(fields)
        if ("rd" in wanted) != (self.rd is not None):
            raise ValueError(f"{self.op.value}: rd {'required' if 'rd' in wanted else 'not allowed'}")
        if ("ra" in wanted) != (self.ra is not None):
            raise ValueError(f"{self.op.value}: ra {'required' if 'ra' in wanted else 'not allowed'}")
        if ("rb" in wanted) != (self.rb is not None):
            raise ValueError(f"{self.op.value}: rb {'required' if 'rb' in wanted else 'not allowed'}")
        if ("imm" in wanted) != (self.imm is not None):
            raise ValueError(f"{self.op.value}: imm {'required' if 'imm' in wanted else 'not allowed'}")
        if ("target" in wanted) != (self.target is not None):
            raise ValueError(f"{self.op.value}: target {'required' if 'target' in wanted else 'not allowed'}")
        if ("tag" in wanted) != (self.tag is not None):
            raise ValueError(f"{self.op.value}: tag {'required' if 'tag' in wanted else 'not allowed'}")
        if ("stride" in wanted) != (self.stride is not None):
            raise ValueError(f"{self.op.value}: stride {'required' if 'stride' in wanted else 'not allowed'}")
        if self.access is not None and self.op not in (Op.READ, Op.WRITE):
            raise ValueError(f"{self.op.value}: only READ/WRITE carry access annotations")

    def with_target(self, index: int) -> "Instruction":
        """A copy with the branch target resolved to flat index ``index``."""
        if self.target is None:
            raise ValueError(f"{self.op.value} has no target to resolve")
        return Instruction(
            op=self.op, rd=self.rd, ra=self.ra, rb=self.rb, imm=self.imm,
            target=index, tag=self.tag, stride=self.stride,
            access=self.access, comment=self.comment,
        )

    def replace_op(self, op: Op, *, drop_access: bool = False) -> "Instruction":
        """A copy with a different opcode (used by READ -> LLOAD rewriting)."""
        return Instruction(
            op=op, rd=self.rd, ra=self.ra, rb=self.rb, imm=self.imm,
            target=self.target, tag=self.tag, stride=self.stride,
            access=None if drop_access else self.access,
            comment=self.comment,
        )

    def __str__(self) -> str:
        spec = spec_of(self.op)
        parts: list[str] = []
        for f in [f for f in spec.signature.split(",") if f]:
            if f == "rd":
                parts.append(f"r{self.rd}")
            elif f == "ra":
                parts.append(repr(self.ra))
            elif f == "rb":
                parts.append(repr(self.rb))
            elif f == "imm":
                parts.append(f"#{self.imm}")
            elif f == "target":
                parts.append(f"@{self.target}")
            elif f == "tag":
                parts.append(f"t{self.tag}")
            elif f == "stride":
                parts.append(f"+{self.stride}")
        text = f"{self.op.value} " + ", ".join(parts) if parts else self.op.value
        if self.comment:
            text = f"{text:<32}; {self.comment}"
        return text
