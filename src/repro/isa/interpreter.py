"""Functional reference interpreter — the timing-free golden model.

Executes a :class:`~repro.core.activity.TLPActivity` with plain Python
data structures and a sequential scheduler: frames are dictionaries, DMA
is a memcpy, FALLOC returns immediately.  No cycles, ports, queues or
stalls exist here — only the *architectural* semantics of the ISA and
the dataflow firing rule (a thread runs when its SC reaches zero).

Its purpose is differential testing: for any activity, the cycle-level
machine in :mod:`repro.cell` must leave main memory in exactly the state
this interpreter computes.  A divergence means a *functional* bug in the
timing model (wrong forwarding, a lost store, a mis-rewritten program),
which timing-only assertions can never catch.

It is also handy on its own for debugging workloads: it runs orders of
magnitude faster than the simulator and raises on the same programming
errors (unaligned accesses, SC overflow, division by zero).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.activity import TLPActivity
from repro.core.frame import pack_handle, unpack_handle
from repro.isa.decoded import (
    D_AREG,
    D_AVAL,
    D_BREG,
    D_BVAL,
    D_FN,
    D_IMM,
    D_KIND,
    D_RD,
    D_STRIDE,
    D_TARGET,
    K_ALU,
    K_BRANCH,
    K_DMAGET,
    K_DMAGETS,
    K_DMAPUT,
    K_DMAWAIT,
    K_FALLOC,
    K_FFREE,
    K_LLOAD,
    K_LOAD,
    K_LSALLOC,
    K_LSTORE,
    K_READ,
    K_STOP,
    K_STOREF,
    K_STORE,
    K_WRITE,
)
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ThreadProgram
from repro.isa.semantics import alu_result, branch_taken
from repro.sim.fastpath import fast_enabled

__all__ = ["FunctionalMachine", "InterpreterError", "run_functional"]


class InterpreterError(RuntimeError):
    """An architectural violation detected by the reference interpreter."""


@dataclass(slots=True)
class _Thread:
    tid: int
    program: ThreadProgram
    frame: dict[int, int]
    sc: int
    handle: int
    pending_stores: list[tuple[int, int]] = field(default_factory=list)


class FunctionalMachine:
    """Sequential, timing-free executor of TLP activities."""

    #: Functional machines pretend to be a single PE for handle packing.
    PE_ID = 0

    def __init__(self, activity: TLPActivity, max_threads: int = 1_000_000):
        activity.validate()
        self.activity = activity
        self.max_threads = max_threads
        self.memory: dict[int, int] = {}
        #: A boundless local store for DMA staging (byte-addressed words).
        self.ls: dict[int, int] = {}
        self._ls_heap = 0x100000  # fake allocator bump pointer
        self.threads: dict[int, _Thread] = {}
        self._ready: deque[_Thread] = deque()
        self._next_tid = 0
        self.threads_run = 0
        self.instructions = 0
        #: Decoded-dispatch hot loop (REPRO_SIM_FAST=0 restores the
        #: original attribute/enum-lookup loop; results are identical).
        self._fast = fast_enabled()
        for obj in activity.globals:
            assert obj.addr is not None
            for i, v in enumerate(obj.data):
                self.memory[obj.addr + 4 * i] = v

    # -- memory helpers ------------------------------------------------------

    def _mem_read(self, addr: int) -> int:
        if addr % 4:
            raise InterpreterError(f"unaligned READ at {addr:#x}")
        return self.memory.get(addr, 0)

    def _mem_write(self, addr: int, value: int) -> None:
        if addr % 4:
            raise InterpreterError(f"unaligned WRITE at {addr:#x}")
        self.memory[addr] = value

    def read_global(self, name: str) -> list[int]:
        obj = self.activity.global_obj(name)
        assert obj.addr is not None
        return [self.memory.get(obj.addr + 4 * i, 0)
                for i in range(len(obj.data))]

    # -- thread management ------------------------------------------------------

    def _falloc(self, template_id: int, sc: int) -> int:
        if self._next_tid >= self.max_threads:
            raise InterpreterError("thread budget exhausted (runaway fork?)")
        tid = self._next_tid
        self._next_tid += 1
        program = self.activity.templates[template_id]
        # Every frame lives at a unique fake LS address so handles are
        # distinct and reversible.
        thread = _Thread(
            tid=tid,
            program=program,
            frame={},
            sc=sc,
            handle=pack_handle(self.PE_ID, 4 * (tid + 1)),
        )
        self.threads[tid] = thread
        if sc == 0:
            self._ready.append(thread)
        return thread.handle

    def _thread_by_handle(self, handle: int) -> _Thread:
        pe, addr = unpack_handle(handle)
        tid = addr // 4 - 1
        thread = self.threads.get(tid)
        if thread is None:
            raise InterpreterError(f"store to unknown frame handle {handle:#x}")
        return thread

    def _store(self, handle: int, slot: int, value: int) -> None:
        thread = self._thread_by_handle(handle)
        if thread.sc <= 0:
            raise InterpreterError(
                f"thread {thread.tid}: more stores than its SC allowed"
            )
        thread.frame[slot] = value
        thread.sc -= 1
        if thread.sc == 0:
            self._ready.append(thread)

    # -- execution ----------------------------------------------------------------

    def run(self) -> None:
        """Spawn the roots and run every thread to completion."""
        spawned: list[int] = []
        for spawn in self.activity.spawns:
            handle = self._falloc(
                self.activity.template_id(spawn.template), spawn.sc
            )
            spawned.append(handle)
            for slot, value in sorted(spawn.stores.items()):
                self._store(
                    handle, slot, self.activity.resolve(value, spawned[:-1])
                )
        while self._ready:
            self._run_thread(self._ready.popleft())
        live = [t.tid for t in self.threads.values() if t.sc > 0]
        if live:
            raise InterpreterError(
                f"threads never fired (missing producer stores): {live[:10]}"
            )

    def _run_thread(self, thread: _Thread) -> None:
        self.threads_run += 1
        if self._fast:
            self._run_thread_decoded(thread)
        else:
            self._run_thread_slow(thread)

    def _run_thread_decoded(self, thread: _Thread) -> None:
        """Decoded-dispatch twin of :meth:`_run_thread_slow`.

        Architecturally identical (same memory/frame/LS effects, same
        ``instructions`` count, same errors); only the per-instruction
        lookup work differs.  ``tests/isa/test_interpreter.py`` and the
        differential suites run against whichever loop is enabled.
        """
        program = thread.program
        rows = program.decoded.rows
        n = len(rows)
        regs = [0] * 128
        frame = thread.frame
        ls = self.ls
        pc = 0

        def val(reg: int | None, imm: int) -> int:
            return regs[reg] if reg is not None else imm

        while True:
            if pc >= n:
                raise InterpreterError(
                    f"{program.name}: fell off the end (missing STOP?)"
                )
            row = rows[pc]
            self.instructions += 1
            kind = row[D_KIND]
            if kind == K_ALU:
                fn = row[D_FN]
                if fn is not None:  # None = NOP
                    ar = row[D_AREG]
                    a = regs[ar] if ar is not None else row[D_AVAL]
                    br = row[D_BREG]
                    b = regs[br] if br is not None else row[D_BVAL]
                    regs[row[D_RD]] = fn(a, b)
                pc += 1
                continue
            if kind == K_BRANCH:
                ar = row[D_AREG]
                a = regs[ar] if ar is not None else row[D_AVAL]
                br = row[D_BREG]
                b = regs[br] if br is not None else row[D_BVAL]
                pc = row[D_TARGET] if row[D_FN](a, b) else pc + 1
                continue
            if kind == K_STOP:
                del self.threads[thread.tid]
                return
            pc += 1
            if kind == K_LOAD:
                regs[row[D_RD]] = frame.get(row[D_IMM], 0)
            elif kind == K_STOREF:
                frame[row[D_IMM]] = val(row[D_AREG], row[D_AVAL])
            elif kind == K_STORE:
                self._store(
                    val(row[D_AREG], row[D_AVAL]),
                    row[D_IMM],
                    val(row[D_BREG], row[D_BVAL]),
                )
            elif kind == K_LLOAD:
                regs[row[D_RD]] = ls.get(
                    val(row[D_AREG], row[D_AVAL]) + row[D_IMM], 0
                )
            elif kind == K_LSTORE:
                ls[val(row[D_AREG], row[D_AVAL]) + row[D_IMM]] = val(
                    row[D_BREG], row[D_BVAL]
                )
            elif kind == K_READ:
                regs[row[D_RD]] = self._mem_read(
                    val(row[D_AREG], row[D_AVAL]) + row[D_IMM]
                )
            elif kind == K_WRITE:
                self._mem_write(
                    val(row[D_AREG], row[D_AVAL]) + row[D_IMM],
                    val(row[D_BREG], row[D_BVAL]),
                )
            elif kind == K_DMAGET:
                dst = val(row[D_AREG], row[D_AVAL])
                src = val(row[D_BREG], row[D_BVAL])
                for i in range(row[D_IMM] // 4):
                    ls[dst + 4 * i] = self._mem_read(src + 4 * i)
            elif kind == K_DMAGETS:
                dst = val(row[D_AREG], row[D_AVAL])
                src = val(row[D_BREG], row[D_BVAL])
                stride = row[D_STRIDE]
                for i in range(row[D_IMM]):
                    ls[dst + 4 * i] = self._mem_read(src + i * stride)
            elif kind == K_DMAPUT:
                src = val(row[D_AREG], row[D_AVAL])
                dst = val(row[D_BREG], row[D_BVAL])
                for i in range(row[D_IMM] // 4):
                    self._mem_write(dst + 4 * i, ls.get(src + 4 * i, 0))
            elif kind == K_DMAWAIT:
                pass  # DMA completed synchronously
            elif kind == K_LSALLOC:
                size = ((row[D_IMM] + 15) // 16) * 16
                self._ls_heap += size
                regs[row[D_RD]] = self._ls_heap - size
            elif kind == K_FALLOC:
                regs[row[D_RD]] = self._falloc(
                    row[D_IMM], val(row[D_AREG], row[D_AVAL])
                )
            elif kind == K_FFREE:
                # Existence check only.
                self._thread_by_handle(val(row[D_AREG], row[D_AVAL]))
            else:  # pragma: no cover - decode_program covers every kind
                raise InterpreterError(f"unhandled decoded kind {kind}")

    def _run_thread_slow(self, thread: _Thread) -> None:
        regs = [0] * 128
        program = thread.program
        flat = program.flat
        pc = 0
        #: (tid, tag) completion is immediate: DMA is a memcpy here.

        def val(operand) -> int:
            if isinstance(operand, Reg):
                return regs[operand.index]
            if isinstance(operand, Imm):
                return operand.value
            raise InterpreterError("missing operand")

        while True:
            if pc >= len(flat):
                raise InterpreterError(
                    f"{program.name}: fell off the end (missing STOP?)"
                )
            instr: Instruction = flat[pc]
            self.instructions += 1
            op = instr.op
            if op is Op.STOP:
                del self.threads[thread.tid]
                return
            if instr.spec.is_branch:
                a = val(instr.ra) if instr.ra is not None else 0
                b = val(instr.rb) if instr.rb is not None else 0
                if branch_taken(op, a, b):
                    assert isinstance(instr.target, int)
                    pc = instr.target
                else:
                    pc += 1
                continue
            pc += 1
            if op is Op.NOP:
                continue
            if op is Op.LOAD:
                regs[instr.rd] = thread.frame.get(instr.imm, 0)
            elif op is Op.STOREF:
                thread.frame[instr.imm] = val(instr.ra)
            elif op is Op.STORE:
                self._store(val(instr.ra), instr.imm, val(instr.rb))
            elif op is Op.LLOAD:
                regs[instr.rd] = self.ls.get(val(instr.ra) + instr.imm, 0)
            elif op is Op.LSTORE:
                self.ls[val(instr.ra) + instr.imm] = val(instr.rb)
            elif op is Op.READ:
                regs[instr.rd] = self._mem_read(val(instr.ra) + instr.imm)
            elif op is Op.WRITE:
                self._mem_write(val(instr.ra) + instr.imm, val(instr.rb))
            elif op is Op.DMAGET:
                ls, mem = val(instr.ra), val(instr.rb)
                for i in range(instr.imm // 4):
                    self.ls[ls + 4 * i] = self._mem_read(mem + 4 * i)
            elif op is Op.DMAGETS:
                ls, mem = val(instr.ra), val(instr.rb)
                for i in range(instr.imm):
                    self.ls[ls + 4 * i] = self._mem_read(mem + i * instr.stride)
            elif op is Op.DMAPUT:
                ls, mem = val(instr.ra), val(instr.rb)
                for i in range(instr.imm // 4):
                    self._mem_write(mem + 4 * i, self.ls.get(ls + 4 * i, 0))
            elif op is Op.DMAWAIT:
                pass  # DMA completed synchronously
            elif op is Op.LSALLOC:
                self._ls_heap += ((instr.imm + 15) // 16) * 16
                regs[instr.rd] = self._ls_heap - ((instr.imm + 15) // 16) * 16
            elif op is Op.FALLOC:
                regs[instr.rd] = self._falloc(instr.imm, val(instr.ra))
            elif op is Op.FFREE:
                self._thread_by_handle(val(instr.ra))  # existence check only
            else:
                # Plain ALU operation.
                a = val(instr.ra) if instr.ra is not None else 0
                b = (
                    val(instr.rb)
                    if instr.rb is not None
                    else (instr.imm if instr.imm is not None else 0)
                )
                regs[instr.rd] = alu_result(op, a, b)


def run_functional(activity: TLPActivity) -> FunctionalMachine:
    """Run ``activity`` on the reference interpreter and return it."""
    machine = FunctionalMachine(activity)
    machine.run()
    return machine
