"""Decoded-instruction cache: per-program flat execution tables.

The hot loops of the SPU pipeline model and the functional interpreter
used to re-derive everything about an :class:`~repro.isa.instructions.
Instruction` on every visit: ``instr.spec`` (a dict lookup keyed by enum
hash), ``isinstance`` checks on operands, enum identity chains in
``alu_result``.  Per paper-benchmark run those lookups happen hundreds of
thousands of times on immutable data.

:func:`decode_program` resolves all of it **once per program** into flat
tuples — one row per flat instruction — holding:

* a small-int dispatch ``kind`` (ALU / branch / each memory-ish op),
* pre-resolved operands (register index *or* immediate value, with the
  ALU ``imm``-as-``rb`` fallback already folded in),
* the value function (one tiny closure per opcode instead of the
  ``alu_result`` if-chain; ``tests/isa/test_decoded.py`` pins these to
  :func:`~repro.isa.semantics.alu_result` /
  :func:`~repro.isa.semantics.branch_taken` so they cannot drift),
* the scoreboard-checked register set and the result latency,
* ``ff``: the **fast-forward run length** starting at this pc — the
  number of consecutive ALU instructions the SPU may execute inside a
  single tick without any per-cycle observer noticing (see
  ``SPU._fast_forward`` and ``docs/PERFORMANCE.md``).

Rows are plain tuples indexed by the ``D_*`` constants (attribute access
is what we are deleting from the hot path).  The decoded table attaches
lazily to :class:`~repro.isa.program.ThreadProgram` via its ``decoded``
property and is dropped entirely when ``REPRO_SIM_FAST=0``.
"""

from __future__ import annotations

import typing

from repro.isa.opcodes import Op, Slot, spec_of
from repro.isa.instructions import Imm, Reg
from repro.isa.semantics import (
    ArithmeticFault,
    to_unsigned64,
    wrap64,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.isa.program import ThreadProgram

__all__ = [
    "DecodedProgram",
    "decode_program",
    # row field indices
    "D_KIND", "D_AREG", "D_AVAL", "D_BREG", "D_BVAL", "D_RD", "D_IMM",
    "D_TARGET", "D_TAG", "D_STRIDE", "D_LAT", "D_HAZ", "D_FN", "D_NAME",
    "D_MEM", "D_FF",
    # dispatch kinds
    "K_ALU", "K_BRANCH", "K_LOAD", "K_STOREF", "K_STORE", "K_LLOAD",
    "K_LSTORE", "K_READ", "K_WRITE", "K_DMAGET", "K_DMAGETS", "K_DMAPUT",
    "K_DMAWAIT", "K_LSALLOC", "K_FALLOC", "K_FFREE", "K_STOP",
]


# -- row layout ---------------------------------------------------------------
# One decoded instruction is a plain tuple; index with these constants.

D_KIND = 0    #: dispatch class (K_* below)
D_AREG = 1    #: ra register index, or None (then D_AVAL is the value)
D_AVAL = 2    #: ra immediate value; 0 when ra is absent
D_BREG = 3    #: rb register index, or None (then D_BVAL is the value)
D_BVAL = 4    #: rb immediate value; ALU rows fold the imm fallback here
D_RD = 5      #: destination register index, or None
D_IMM = 6     #: raw immediate (0 when absent)
D_TARGET = 7  #: resolved branch target flat index, or None
D_TAG = 8     #: DMA tag id, or None
D_STRIDE = 9  #: DMAGETS stride in bytes, or None
D_LAT = 10    #: result latency in cycles (>= 1; ALU rows only matter)
D_HAZ = 11    #: tuple of scoreboard-checked register indices, in ra,rb,rd order
D_FN = 12     #: value function (ALU result / branch predicate), or None (NOP)
D_NAME = 13   #: op mnemonic (InstructionMix.record key)
D_MEM = 14    #: True when the op occupies the MEM issue slot
D_FF = 15     #: fast-forward run length starting at this pc (0 = ineligible)

# -- dispatch kinds -----------------------------------------------------------

K_ALU = 0
K_BRANCH = 1
K_LOAD = 2
K_STOREF = 3
K_STORE = 4
K_LLOAD = 5
K_LSTORE = 6
K_READ = 7
K_WRITE = 8
K_DMAGET = 9
K_DMAGETS = 10
K_DMAPUT = 11
K_DMAWAIT = 12
K_LSALLOC = 13
K_FALLOC = 14
K_FFREE = 15
K_STOP = 16

_KIND_OF: dict[Op, int] = {
    Op.LOAD: K_LOAD,
    Op.STOREF: K_STOREF,
    Op.STORE: K_STORE,
    Op.LLOAD: K_LLOAD,
    Op.LSTORE: K_LSTORE,
    Op.READ: K_READ,
    Op.WRITE: K_WRITE,
    Op.DMAGET: K_DMAGET,
    Op.DMAGETS: K_DMAGETS,
    Op.DMAPUT: K_DMAPUT,
    Op.DMAWAIT: K_DMAWAIT,
    Op.LSALLOC: K_LSALLOC,
    Op.FALLOC: K_FALLOC,
    Op.FFREE: K_FFREE,
    Op.STOP: K_STOP,
}


# -- value functions ----------------------------------------------------------
# One closure per opcode; semantically identical to alu_result/branch_taken
# (pinned by tests/isa/test_decoded.py) but without the if-chain.


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("division by zero")
    q = abs(a) // abs(b)
    return wrap64(-q if (a < 0) != (b < 0) else q)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("modulo by zero")
    r = abs(a) % abs(b)
    return wrap64(-r if a < 0 else r)


_ALU_FN: dict[Op, typing.Callable[[int, int], int]] = {
    Op.ADD: lambda a, b: wrap64(a + b),
    Op.ADDI: lambda a, b: wrap64(a + b),
    Op.SUB: lambda a, b: wrap64(a - b),
    Op.SUBI: lambda a, b: wrap64(a - b),
    Op.MUL: lambda a, b: wrap64(a * b),
    Op.MULI: lambda a, b: wrap64(a * b),
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.AND: lambda a, b: wrap64(to_unsigned64(a) & to_unsigned64(b)),
    Op.ANDI: lambda a, b: wrap64(to_unsigned64(a) & to_unsigned64(b)),
    Op.OR: lambda a, b: wrap64(to_unsigned64(a) | to_unsigned64(b)),
    Op.ORI: lambda a, b: wrap64(to_unsigned64(a) | to_unsigned64(b)),
    Op.XOR: lambda a, b: wrap64(to_unsigned64(a) ^ to_unsigned64(b)),
    Op.XORI: lambda a, b: wrap64(to_unsigned64(a) ^ to_unsigned64(b)),
    Op.SHL: lambda a, b: wrap64(to_unsigned64(a) << (b & 63)),
    Op.SHLI: lambda a, b: wrap64(to_unsigned64(a) << (b & 63)),
    Op.SHR: lambda a, b: wrap64(to_unsigned64(a) >> (b & 63)),
    Op.SHRI: lambda a, b: wrap64(to_unsigned64(a) >> (b & 63)),
    Op.SLT: lambda a, b: 1 if a < b else 0,
    Op.SLTI: lambda a, b: 1 if a < b else 0,
    Op.SEQ: lambda a, b: 1 if a == b else 0,
    Op.SEQI: lambda a, b: 1 if a == b else 0,
    Op.MIN: lambda a, b: min(a, b),
    Op.MAX: lambda a, b: max(a, b),
    Op.MOV: lambda a, b: wrap64(a),
    Op.LI: lambda a, b: wrap64(b),
}

_BRANCH_FN: dict[Op, typing.Callable[[int, int], bool]] = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
    Op.BEQZ: lambda a, b: a == 0,
    Op.BNEZ: lambda a, b: a != 0,
    Op.JMP: lambda a, b: True,
}


class DecodedProgram:
    """The decoded execution table of one :class:`ThreadProgram`."""

    __slots__ = ("rows",)

    def __init__(self, rows: tuple[tuple, ...]) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)


def _operand(operand: "Reg | Imm | None") -> tuple[int | None, int]:
    """Resolve a source operand to ``(reg_index_or_None, imm_value)``."""
    if isinstance(operand, Reg):
        return operand.index, 0
    if isinstance(operand, Imm):
        return None, operand.value
    return None, 0


def decode_program(program: "ThreadProgram") -> DecodedProgram:
    """Build the :class:`DecodedProgram` for ``program``."""
    flat = program.flat
    n = len(flat)
    partial: list[list] = []
    for instr in flat:
        op = instr.op
        spec = spec_of(op)
        mem_slot = spec.slot is Slot.MEM
        imm = instr.imm if instr.imm is not None else 0
        a_reg, a_val = _operand(instr.ra)
        if spec.is_branch:
            kind = K_BRANCH
            b_reg, b_val = _operand(instr.rb)
            fn: typing.Callable | None = _BRANCH_FN[op]
        elif op in _ALU_FN or op is Op.NOP:
            kind = K_ALU
            if instr.rb is not None:
                b_reg, b_val = _operand(instr.rb)
            else:
                # The SPU/interpreter fall back to imm (or 0) for rb.
                b_reg, b_val = None, imm
            fn = _ALU_FN.get(op)  # None for NOP
        else:
            kind = _KIND_OF[op]
            b_reg, b_val = _operand(instr.rb)
            fn = None
        haz: list[int] = []
        if a_reg is not None:
            haz.append(a_reg)
        if b_reg is not None:
            haz.append(b_reg)
        if instr.rd is not None:
            haz.append(instr.rd)  # WAW
        partial.append([
            kind,
            a_reg, a_val,
            b_reg, b_val,
            instr.rd,
            imm,
            instr.target,
            instr.tag,
            instr.stride,
            spec.result_latency or 1,
            tuple(haz),
            fn,
            op.value,
            mem_slot,
            0,  # D_FF, filled below
        ])

    # Fast-forward run lengths.  ff[i] = the number of instructions,
    # starting at i, the SPU may retire at one per cycle inside a single
    # tick with timing identical to the per-cycle path.  Requirements,
    # derived from the dual-issue rules in SPU._issue_cycle:
    #   * instruction i is a non-branch ALU op (register-only effects,
    #     single ALU slot, scoreboard handled by the fast loop itself);
    #   * instruction i+1 occupies the ALU slot too.  If it were a
    #     MEM-slot op, the per-cycle path would dual-issue it *in the
    #     same cycle* as instruction i, so i must be left to the
    #     per-cycle loop.  An ALU/branch successor ends the cycle after
    #     one issue (alu_used) — exactly what the fast loop models.
    # The final instruction is always STOP (MEM slot), so i+1 exists for
    # every ALU instruction.
    for i in range(n - 2, -1, -1):
        row = partial[i]
        if row[D_KIND] != K_ALU:
            continue
        nxt = partial[i + 1]
        if nxt[D_MEM]:
            continue  # would dual-issue with i: not fast-forwardable
        row[D_FF] = 1 + (nxt[D_FF] if nxt[D_KIND] == K_ALU else 0)

    return DecodedProgram(tuple(tuple(row) for row in partial))
