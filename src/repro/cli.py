"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     run one benchmark (with/without prefetching) and print the
            cycle count, time breakdown and Table 5 instruction mix.
``sweep``   regenerate a Figures 6-8 style scaling table for a benchmark.
``tables``  regenerate Figure 5, Figure 9 and Table 5 at 8 SPEs.
``disasm``  disassemble a benchmark's thread templates (optionally after
            the prefetch pass).
``info``    print the simulated machine configuration (Tables 2-4).
``reproduce``  run the full experiment matrix and write results as JSON
            (and optionally CSV) for external plotting.
``timeline``  run one benchmark with tracing and print a per-SPU ASCII
            Gantt chart (watch threads yield for DMA and overlap).
``profile``  run one benchmark under the observability subsystem and
            export a profile JSON, a Perfetto/Chrome trace, a metrics
            CSV and/or the raw event stream as JSONL.
``diff``    compare two profile JSON files (perf-regression check);
            nonzero exit when a watched metric regressed.

Examples
--------
::

    python -m repro run mmul --spes 8
    python -m repro run zoom --no-prefetch --latency 1
    python -m repro sweep bitcnt --spes 1 2 4 8
    python -m repro disasm mmul --prefetch --template mmul_worker
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.report import (
    breakdown_table,
    execution_table,
    format_table,
    pipeline_usage_table,
    scalability_table,
    table5,
)
from repro.bench.runner import run_pair, run_workload, sweep
from repro.bench.scale import SCALES, builders
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.sim.config import MachineConfig, paper_config
from repro.sim.stats import Bucket

__all__ = ["main", "build_parser"]


def _apply_robustness(cfg: MachineConfig, args: argparse.Namespace) -> MachineConfig:
    """Fold ``--faults`` / ``--sanitize`` into a machine config."""
    spec = getattr(args, "faults", None)
    if spec:
        from repro.faults import FaultPlanError

        try:
            cfg = cfg.with_faults(spec)
        except FaultPlanError as exc:
            raise SystemExit(f"--faults: {exc}")
    if getattr(args, "sanitize", False):
        cfg = cfg.replace(sanitize=True)
    return cfg


def _validate_faults(args: argparse.Namespace) -> "str | None":
    """Eagerly parse ``--faults`` so a typo'd key fails before any
    workload is built or worker pool spawned; returns the raw spec."""
    spec = getattr(args, "faults", None)
    if spec:
        from repro.faults import FaultPlanError
        from repro.faults.plan import FaultPlan

        try:
            FaultPlan.parse(spec)
        except FaultPlanError as exc:
            raise SystemExit(f"--faults: {exc}")
    return spec


def _config(args: argparse.Namespace) -> MachineConfig:
    cfg = paper_config(num_spes=args.spes)
    if args.latency is not None:
        cfg = cfg.with_latency(args.latency)
    return _apply_robustness(cfg, args)


def _cache(args: argparse.Namespace):
    """The persistent result cache, or ``None`` under ``--no-cache``."""
    if not getattr(args, "cache", False):
        return None
    from repro.bench.cache import default_cache

    return default_cache()


def _progress(msg: str) -> None:
    print(f"# {msg}", file=sys.stderr)


def _resilience_opts(args: argparse.Namespace) -> dict:
    """The run_many resilience knobs selected on the command line."""
    if getattr(args, "resume", False) and not getattr(args, "cache", True):
        raise SystemExit(
            "--resume needs the result cache (the journal is validated "
            "against it); drop --no-cache"
        )
    return {
        "timeout": getattr(args, "task_timeout", None),
        "retries": getattr(args, "retries", None),
        "resume": getattr(args, "resume", False),
        "checkpoint_every": getattr(args, "checkpoint_every", None),
        "checkpoint_dir": getattr(args, "checkpoint_dir", None),
        "keep_checkpoints": getattr(args, "keep_checkpoints", False),
    }


def _cache_summary(cache) -> None:
    if cache is not None:
        _progress(f"cache: {cache.summary()}")


def _workload(args: argparse.Namespace):
    try:
        build = builders(args.scale)[args.benchmark]
    except KeyError:
        raise SystemExit(
            f"unknown benchmark {args.benchmark!r}; "
            f"choose from {sorted(builders())}"
        )
    return build()


def _print_run(label: str, run) -> None:
    print(f"{label}: {run.cycles} cycles")
    frac = run.stats.bucket_fractions()
    rows = [[b, f"{100 * frac[b]:.1f}%"] for b in Bucket.ALL]
    print(format_table(["bucket", "share"], rows))
    mix = run.stats.mix.table5_row()
    print(
        format_table(
            ["total", "LOAD", "STORE", "READ", "WRITE"],
            [[mix["total"], mix["LOAD"], mix["STORE"], mix["READ"],
              mix["WRITE"]]],
        )
    )
    if run.config.faults.active:
        print(f"faults: {run.stats.faults.summary()}")


def cmd_run(args: argparse.Namespace) -> int:
    workload = _workload(args)
    cfg = _config(args)
    options = PrefetchOptions(worthwhile_threshold=args.threshold)
    if args.compare:
        if args.restore:
            raise SystemExit("--restore is incompatible with --compare")
        pair = run_pair(workload, cfg, options=options)
        _print_run("original DTA", pair.base)
        print()
        _print_run("with prefetching", pair.prefetch)
        print()
        print(f"speedup: {pair.speedup:.2f}x   "
              f"READs decoupled: {pair.decoupled_fraction:.0%}")
    elif args.restore:
        from repro.cell.machine import Machine
        from repro.sim.snapshot import CheckpointError
        from repro.workloads.common import check_outputs

        try:
            machine = Machine.load_checkpoint(args.restore)
        except CheckpointError as exc:
            raise SystemExit(f"--restore: {exc}")
        expected = workload.activity.name
        actual = machine._activity.name
        if actual != expected:
            raise SystemExit(
                f"--restore: checkpoint holds activity {actual!r}, but "
                f"benchmark {args.benchmark!r} expects {expected!r}"
            )
        _progress(
            f"restored {args.restore} at cycle {machine.engine.now}; "
            f"continuing"
        )
        run = machine.run(
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        errors = check_outputs(workload, machine)
        if errors:
            raise SystemExit(
                f"{workload.name}: wrong output after restore:\n"
                + "\n".join(errors[:10])
            )
        _print_run(
            "with prefetching" if run.prefetch else "original DTA", run
        )
    else:
        run = run_workload(
            workload, cfg, prefetch=args.prefetch, options=options,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        _print_run(
            "with prefetching" if args.prefetch else "original DTA", run
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    _validate_faults(args)
    build = builders(args.scale)[args.benchmark]

    def config_for(n: int) -> MachineConfig:
        cfg = paper_config(n)
        if args.latency is not None:
            cfg = cfg.with_latency(args.latency)
        return _apply_robustness(cfg, args)

    cache = _cache(args)
    scaling = sweep(
        build, spes=tuple(args.spes), config_for=config_for,
        jobs=args.jobs, cache=cache, progress=_progress,
        keep_going=args.keep_going, **_resilience_opts(args),
    )
    _cache_summary(cache)
    if not scaling.pairs:
        print("no point of the sweep completed (see the failures above)",
              file=sys.stderr)
        return 1
    print(execution_table(scaling))
    print()
    print(scalability_table(scaling))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench.parallel import pair_tasks, run_many
    from repro.bench.runner import PairResult

    cfg = _config(args)
    workloads = {name: build() for name, build in builders(args.scale).items()}
    tasks = []
    for workload in workloads.values():
        tasks.extend(pair_tasks(workload, cfg))
    cache = _cache(args)
    results = run_many(
        tasks, jobs=args.jobs, cache=cache, progress=_progress,
        **_resilience_opts(args),
    )
    _cache_summary(cache)
    pairs = {
        name: PairResult(
            workload=name, config=cfg,
            base=results[2 * i], prefetch=results[2 * i + 1],
        )
        for i, name in enumerate(workloads)
    }
    runs = {name: p.base for name, p in pairs.items()}
    print(table5(runs))
    print()
    print(breakdown_table(pairs, prefetch=False))
    print()
    print(breakdown_table(pairs, prefetch=True))
    print()
    print(pipeline_usage_table(pairs))
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    workload = _workload(args)
    activity = workload.activity
    if args.prefetch:
        activity = prefetch_transform(
            activity, PrefetchOptions(worthwhile_threshold=args.threshold)
        )
    templates = activity.templates
    if args.template:
        templates = [activity.template(args.template)]
    for template in templates:
        print(template.disassemble())
        print()
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.bench.export import reproduce_all, scaling_to_csv, to_json
    from repro.bench.runner import sweep as _sweep

    cache = _cache(args)
    opts = _resilience_opts(args)
    data = reproduce_all(
        scale=args.scale, spes=tuple(args.spes), progress=_progress,
        jobs=args.jobs, cache=cache, keep_going=args.keep_going,
        faults=_validate_faults(args), **opts,
    )
    text = to_json(data)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    if args.csv:
        from repro.bench.scale import builders as _builders

        def csv_config(n: int) -> MachineConfig:
            # Same config reproduce_all used, fault plan included, so the
            # sweep replays from the cache instead of re-simulating.
            cfg = paper_config(n)
            if getattr(args, "faults", None):
                cfg = cfg.with_faults(args.faults)
            return cfg

        # With the cache on, these sweeps replay the runs reproduce_all
        # just finished, so the CSV costs no extra simulation.
        with open(args.csv, "w") as fh:
            for name, build in _builders(args.scale).items():
                scaling = _sweep(
                    build, spes=tuple(args.spes), config_for=csv_config,
                    jobs=args.jobs, cache=cache,
                    keep_going=args.keep_going, **opts,
                )
                if scaling.pairs:
                    fh.write(scaling_to_csv(scaling))
                else:
                    _progress(f"csv: dropping {name} (no completed points)")
        print(f"wrote {args.csv}", file=sys.stderr)
    _cache_summary(cache)
    if data.get("degraded"):
        _progress(
            f"DEGRADED: {len(data['degraded'])} task(s) failed; artifacts "
            f"are partial"
        )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.bench.timeline import render_timeline
    from repro.cell.machine import Machine
    from repro.sim.trace import Tracer

    workload = _workload(args)
    activity = workload.activity
    if args.prefetch:
        activity = prefetch_transform(
            activity, PrefetchOptions(worthwhile_threshold=args.threshold)
        )
    machine = Machine(_config(args))
    tracer = Tracer()
    machine.attach_tracer(tracer)
    machine.load(activity)
    result = machine.run()
    workload.verify(machine)
    label = "with prefetching" if args.prefetch else "original DTA"
    print(f"{workload.name} ({label}): {result.cycles} cycles")
    print(render_timeline(tracer, result.cycles, width=args.width))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        dma_overlap_count,
        metrics_csv,
        profile_workload,
        to_perfetto,
        validate_trace_events,
    )
    from repro.obs.hub import HubConfig

    workload = _workload(args)
    cfg = _config(args)
    hub_config = (
        HubConfig(bucket_cycles=args.bucket_cycles,
                  sample_interval=args.bucket_cycles)
        if args.bucket_cycles else None
    )
    result, profile = profile_workload(
        workload, cfg, prefetch=args.prefetch,
        options=PrefetchOptions(worthwhile_threshold=args.threshold),
        hub_config=hub_config, trace_jsonl=args.trace_jsonl,
    )
    label = "with prefetching" if args.prefetch else "original DTA"
    print(f"{workload.name} ({label}): {result.cycles} cycles, "
          f"pipeline usage {profile.average_pipeline_usage:.1%}, "
          f"{profile.totals['dma_commands']} DMA commands, "
          f"{dma_overlap_count(profile)} DMA intervals overlapped other "
          f"threads' execution")
    rows = [[b, f"{c:.0f}"] for b, c in profile.breakdown_cycles.items()]
    print(format_table(["bucket", "avg cycles/SPU"], rows))
    if args.profile_out:
        with open(args.profile_out, "w") as fh:
            fh.write(profile.to_json() + "\n")
        print(f"wrote {args.profile_out}", file=sys.stderr)
    if args.perfetto:
        doc = to_perfetto(profile)
        errors = validate_trace_events(doc)
        if errors:
            raise SystemExit(
                "perfetto export failed validation:\n" + "\n".join(errors[:10])
            )
        with open(args.perfetto, "w") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        print(f"wrote {args.perfetto} "
              f"({len(doc['traceEvents'])} events; open in "
              f"https://ui.perfetto.dev)", file=sys.stderr)
    if args.metrics_csv:
        with open(args.metrics_csv, "w") as fh:
            fh.write(metrics_csv(profile))
        print(f"wrote {args.metrics_csv}", file=sys.stderr)
    if args.trace_jsonl:
        print(f"wrote {args.trace_jsonl}", file=sys.stderr)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_profiles, load_profile, render_diff

    try:
        baseline = load_profile(args.baseline)
        candidate = load_profile(args.candidate)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"diff: {exc}")
    diff = diff_profiles(
        baseline, candidate,
        baseline_label=args.baseline, candidate_label=args.candidate,
    )
    print(render_diff(diff, max_delta_pct=args.max_delta))
    regressions = diff.regressions(args.max_delta)
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.max_delta}%", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.max_delta}%")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    cfg = _config(args)
    rows = [
        ["SPEs", cfg.num_spes],
        ["nodes", cfg.num_nodes],
        ["main memory", f"{cfg.main_memory.size // 2**20} MB, "
                        f"{cfg.main_memory.latency} cycles, "
                        f"{cfg.main_memory.ports} port(s)"],
        ["local store", f"{cfg.local_store.size // 1024} kB, "
                        f"{cfg.local_store.latency} cycles, "
                        f"{cfg.local_store.ports} ports"],
        ["bus", f"{cfg.bus.num_buses} x {cfg.bus.bytes_per_cycle} B/cycle"],
        ["MFC", f"queue {cfg.mfc.command_queue_size}, "
                f"command latency {cfg.mfc.command_latency} cycles"],
        ["LSE", f"{cfg.lse.num_frames} frames x "
                f"{cfg.lse.frame_size_words} words, "
                f"ready policy {cfg.lse.ready_policy}"],
        ["SPU", f"issue width {cfg.spu.issue_width}, "
                f"branch penalty {cfg.spu.branch_taken_penalty}"],
    ]
    print(format_table(["unit", "configuration"], rows))
    print()
    print(f"benchmark scales: {sorted(SCALES)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import ServeApp

    app = ServeApp(
        host=args.host,
        port=args.port,
        cache=_cache(args),
        workers=args.workers,
        sim_jobs=args.jobs or 1,
        max_depth=args.max_depth,
        timeout=getattr(args, "task_timeout", None),
        retries=getattr(args, "retries", None),
        log=_progress,
    )
    app.run()  # returns after a SIGTERM/SIGINT-triggered drain
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(
        host=args.host, port=args.port, client=args.client,
    )
    params: dict = {"benchmark": args.benchmark}
    if args.kind == "sweep":
        params["spes"] = list(args.spes)
    else:
        params["spes"] = args.spes[0]
        params["prefetch"] = args.prefetch
    if args.scale is not None:
        params["scale"] = args.scale
    if args.latency is not None:
        params["latency"] = args.latency
    if args.faults is not None:
        params["faults"] = args.faults
    if args.sanitize:
        params["sanitize"] = True
    if args.threshold != 0.5:
        params["threshold"] = args.threshold
    if args.kind == "profile" and args.bucket_cycles is not None:
        params["bucket_cycles"] = args.bucket_cycles
    try:
        job = client.submit_request({
            "v": 1,
            "kind": args.kind,
            "client": args.client,
            "priority": args.priority,
            "params": params,
        })
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"server is saturated; retry in ~{exc.retry_after}s",
                  file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(f"error: no server on {args.host}:{args.port} "
              f"(start one with 'repro serve')", file=sys.stderr)
        return 1
    _progress(f"job {job['id']} {job['state']}"
              + (" (coalesced with an identical in-flight job)"
                 if job.get("coalesced_into") else ""))
    if args.no_wait:
        print(_json.dumps(job, indent=2, sort_keys=True))
        return 0
    for event in client.events(job["id"]):
        if event["event"] == "log":
            _progress(event["message"])
        elif event["event"] != "coalesced":
            _progress(f"job {job['id']}: {event['event']}")
    final = client.status(job["id"])
    if final["state"] != "done":
        print(f"error: job {job['id']} {final['state']}: "
              f"{final.get('error')}", file=sys.stderr)
        return 1
    payload = client.result(job["id"])
    text = _json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        _progress(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.bench.cache import default_cache, parse_bytes

    cache = default_cache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.root}")
        return 0
    if args.max_bytes is not None:
        budget = parse_bytes(args.max_bytes)
        evicted = cache.trim(budget)
        print(f"evicted {evicted} entr(y/ies) trimming to "
              f"{budget} bytes")
    entries, size = cache.disk_usage()
    print(f"cache root: {cache.root}")
    print(f"entries:    {entries}")
    print(f"disk bytes: {size}")
    if cache.max_bytes is not None:
        print(f"budget:     {cache.max_bytes} bytes "
              f"(REPRO_BENCH_CACHE_MAX_BYTES)")
    journal_path = cache.root / "journal.jsonl"
    if journal_path.is_file():
        print(f"journal:    {journal_path} "
              f"({journal_path.stat().st_size} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CellDTA simulator: DMA prefetching for non-blocking "
                    "execution in DTA (Giorgi et al., 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, benchmark=True, add_spes=True):
        if benchmark:
            p.add_argument("benchmark", choices=sorted(builders()),
                           help="workload to run")
        if add_spes:
            p.add_argument("--spes", type=int, default=8,
                           help="number of SPEs (default 8)")
        p.add_argument("--latency", type=int, default=None,
                       help="override main-memory latency in cycles")
        p.add_argument("--scale", choices=sorted(SCALES), default=None,
                       help="workload scale (default: REPRO_BENCH_SCALE "
                            "or 'default')")
        p.add_argument("--threshold", type=float, default=0.5,
                       help="prefetch worthwhileness threshold")
        p.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject seeded faults, e.g. "
                            "seed=3,dma_drop=0.05,bus_dup=0.02 "
                            "(timing-only; results stay bit-identical) or "
                            "corrupting data faults, e.g. "
                            "seed=3,data_flip=0.1,data_truncate=0.05 "
                            "(detected, recovered by bounded re-fetch / "
                            "thread re-execution; outputs stay bit-identical "
                            "while budgets hold)")
        p.add_argument("--sanitize", action="store_true",
                       help="enable the invariant sanitizer (SC underflow, "
                            "frame double-free, DMA overlap, exactly-once "
                            "delivery)")

    def parallel_opts(p, keep_going=False):
        p.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes for independent runs "
                            "(default: REPRO_BENCH_JOBS or 1 = serial)")
        p.add_argument("--no-cache", dest="cache", action="store_false",
                       default=True,
                       help="ignore the persistent result cache "
                            "(REPRO_BENCH_CACHE) for this invocation")
        p.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-task wall-clock timeout, enforced by the "
                            "parent over worker futures (default: "
                            "REPRO_BENCH_TASK_TIMEOUT or off)")
        p.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry budget for transient failures (timeouts, "
                            "worker crashes) with exponential backoff "
                            "(default: REPRO_BENCH_RETRIES or 2); "
                            "deterministic errors are never retried")
        p.add_argument("--resume", action="store_true",
                       help="replay the sweep journal next to the result "
                            "cache and skip tasks an interrupted run "
                            "already settled (also prunes checkpoints of "
                            "completed tasks)")
        p.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="CYCLES",
                       help="snapshot each running machine every N cycles "
                            "so timed-out or killed tasks resume "
                            "mid-simulation instead of restarting")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="where machine checkpoints live (default: "
                            "checkpoints/ next to the result cache)")
        p.add_argument("--keep-checkpoints", action="store_true",
                       help="keep checkpoint files of completed tasks "
                            "instead of deleting them")
        if keep_going:
            p.add_argument("--keep-going", action="store_true",
                           help="do not abort on a permanently failing "
                                "task; emit partial artifacts plus a "
                                "'degraded' manifest naming each failure")

    p_run = sub.add_parser("run", help="run one benchmark")
    common(p_run)
    group = p_run.add_mutually_exclusive_group()
    group.add_argument("--prefetch", action="store_true", default=True,
                       help="apply the prefetch pass (default)")
    group.add_argument("--no-prefetch", dest="prefetch",
                       action="store_false", help="run the original DTA")
    group.add_argument("--compare", action="store_true",
                       help="run both variants and report the speedup")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="CYCLES",
                       help="snapshot the machine every N cycles to "
                            "<checkpoint-dir>/<activity>.ckpt (atomically "
                            "replaced; always the latest)")
    p_run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for --checkpoint-every snapshots "
                            "(default: current directory)")
    p_run.add_argument("--restore", default=None, metavar="CKPT",
                       help="resume a checkpointed run of this benchmark "
                            "and continue to completion (bit-identical to "
                            "an uninterrupted run)")
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep", help="scaling sweep (Figures 6-8)")
    common(p_sweep, add_spes=False)
    p_sweep.add_argument("--spes", type=int, nargs="+", default=[1, 2, 4, 8])
    parallel_opts(p_sweep, keep_going=True)
    p_sweep.set_defaults(func=cmd_sweep)

    p_tables = sub.add_parser(
        "tables", help="Figure 5 / Figure 9 / Table 5 at one machine size"
    )
    common(p_tables, benchmark=False)
    parallel_opts(p_tables)
    p_tables.set_defaults(func=cmd_tables)

    p_dis = sub.add_parser("disasm", help="disassemble thread templates")
    common(p_dis)
    p_dis.add_argument("--prefetch", action="store_true",
                       help="disassemble the transformed templates")
    p_dis.add_argument("--template", default=None,
                       help="only this template")
    p_dis.set_defaults(func=cmd_disasm)

    p_info = sub.add_parser("info", help="print the machine configuration")
    common(p_info, benchmark=False)
    p_info.set_defaults(func=cmd_info)

    p_tl = sub.add_parser(
        "timeline", help="trace one run and print a per-SPU Gantt chart"
    )
    common(p_tl)
    group_tl = p_tl.add_mutually_exclusive_group()
    group_tl.add_argument("--prefetch", action="store_true", default=True)
    group_tl.add_argument("--no-prefetch", dest="prefetch",
                          action="store_false")
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.set_defaults(func=cmd_timeline)

    p_prof = sub.add_parser(
        "profile",
        help="run one benchmark under the observability subsystem",
    )
    common(p_prof)
    group_prof = p_prof.add_mutually_exclusive_group()
    group_prof.add_argument("--prefetch", action="store_true", default=True,
                            help="apply the prefetch pass (default)")
    group_prof.add_argument("--no-prefetch", dest="prefetch",
                            action="store_false",
                            help="profile the original DTA")
    p_prof.add_argument("--profile", dest="profile_out", default=None,
                        metavar="FILE",
                        help="write the full profile as JSON (diffable "
                             "with 'repro diff')")
    p_prof.add_argument("--perfetto", default=None, metavar="FILE",
                        help="write a Chrome/Perfetto trace_event JSON "
                             "(pipeline, DMA tag-group and bus tracks)")
    p_prof.add_argument("--metrics-csv", default=None, metavar="FILE",
                        help="write every hub instrument as flat CSV")
    p_prof.add_argument("--trace-jsonl", default=None, metavar="FILE",
                        help="stream the raw profiling events as JSONL")
    p_prof.add_argument("--bucket-cycles", type=int, default=None,
                        help="timeseries bucket width in cycles "
                             "(default 1024)")
    p_prof.set_defaults(func=cmd_profile)

    p_diff = sub.add_parser(
        "diff", help="compare two profile JSONs (perf-regression check)"
    )
    p_diff.add_argument("baseline", help="baseline profile JSON")
    p_diff.add_argument("candidate", help="candidate profile JSON")
    p_diff.add_argument("--max-delta", type=float, default=2.0,
                        metavar="PCT",
                        help="regression threshold in percent (default 2)")
    p_diff.set_defaults(func=cmd_diff)

    p_rep = sub.add_parser(
        "reproduce", help="run the full experiment matrix, export JSON/CSV"
    )
    common(p_rep, benchmark=False, add_spes=False)
    p_rep.add_argument("--spes", type=int, nargs="+", default=[1, 2, 4, 8])
    p_rep.add_argument("--output", "-o", default=None,
                       help="write JSON here instead of stdout")
    p_rep.add_argument("--csv", default=None,
                       help="also write per-point CSV rows here")
    parallel_opts(p_rep, keep_going=True)
    p_rep.set_defaults(func=cmd_reproduce)

    p_serve = sub.add_parser(
        "serve",
        help="start the simulation-as-a-service HTTP gateway "
             "(see docs/SERVING.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8357,
                         help="listen port (0 = ephemeral; default 8357)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent job executors (default 2)")
    p_serve.add_argument("--max-depth", type=int, default=64,
                         help="queued-job bound before submissions get "
                              "503 + Retry-After (default 64)")
    p_serve.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes each job's batch may "
                              "fan out to (default 1)")
    p_serve.add_argument("--no-cache", dest="cache", action="store_false",
                         default=True,
                         help="serve without the persistent result cache "
                              "(disables cross-restart coalescing)")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-task wall-clock timeout for job batches")
    p_serve.add_argument("--retries", type=int, default=None, metavar="N",
                         help="transient-failure retry budget per task")
    p_serve.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser(
        "submit",
        help="submit a job to a running 'repro serve' gateway and "
             "stream its progress",
    )
    p_sub.add_argument("kind", choices=["run", "sweep", "profile"])
    p_sub.add_argument("benchmark", choices=sorted(builders()))
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=8357)
    p_sub.add_argument("--client", default="cli",
                       help="client identity for fair scheduling")
    p_sub.add_argument("--priority", type=int, default=5,
                       help="0 (urgent) .. 9 (batch); default 5")
    p_sub.add_argument("--spes", type=int, nargs="+", default=[8],
                       help="machine size(s); one value for run/profile, "
                            "an axis for sweep")
    p_sub.add_argument("--scale", choices=sorted(SCALES), default=None)
    p_sub.add_argument("--latency", type=int, default=None)
    p_sub.add_argument("--threshold", type=float, default=0.5)
    p_sub.add_argument("--faults", default=None, metavar="SPEC")
    p_sub.add_argument("--sanitize", action="store_true")
    group_sub = p_sub.add_mutually_exclusive_group()
    group_sub.add_argument("--prefetch", action="store_true", default=True)
    group_sub.add_argument("--no-prefetch", dest="prefetch",
                           action="store_false")
    p_sub.add_argument("--bucket-cycles", type=int, default=None,
                       help="profile jobs: timeseries bucket width")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="print the accepted job id and exit instead "
                            "of streaming events")
    p_sub.add_argument("--output", "-o", default=None,
                       help="write the result payload here instead of "
                            "stdout")
    p_sub.set_defaults(func=cmd_submit)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or manage the persistent result cache",
    )
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    p_cache.add_argument("--max-bytes", default=None, metavar="SIZE",
                         help="trim the cache to SIZE (suffixes k/m/g), "
                              "evicting least-recently-used entries")
    p_cache.set_defaults(func=cmd_cache)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except BaseException as exc:
        from repro.bench.parallel import SweepTerminated

        if isinstance(exc, SweepTerminated):
            # SIGTERM mid-batch: finished work was harvested into the
            # cache/journal; exit with the conventional 128 + SIGTERM.
            print("# terminated: partial results cached; re-run with "
                  "--resume to continue", file=sys.stderr)
            return 143
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
