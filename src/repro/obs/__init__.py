"""Observability subsystem: metrics, streaming traces, profiles, exports.

``repro.obs`` is the machine-readable window into a simulation:

* :mod:`repro.obs.trace` — streaming tracer v2 (sinks: in-memory ring,
  JSONL file, tee), subsuming the old ``repro.sim.trace``.
* :mod:`repro.obs.hub` — :class:`MetricsHub`, a registry of counters /
  gauges / bucketed interval series sampled from every component, with
  bounded memory and strictly zero cost when not attached.
* :mod:`repro.obs.intervals` — reconstructs pipeline / DMA-tag / bus
  busy intervals from the event stream.
* :mod:`repro.obs.profile` — one-call profiler producing a
  :class:`Profile` (usage, breakdown, metrics, intervals).
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` export.
* :mod:`repro.obs.diff` — compare two profiles (perf-regression check).
"""

from repro.obs.diff import ProfileDiff, diff_profiles, load_profile, render_diff
from repro.obs.hub import (
    BucketSeries,
    Counter,
    GaugeSeries,
    HubConfig,
    MetricsHub,
    MetricsSampler,
)
from repro.obs.intervals import Interval, IntervalSink
from repro.obs.perfetto import to_perfetto, validate_trace_events
from repro.obs.profile import (
    Profile,
    dma_overlap_count,
    metrics_csv,
    profile_activity,
    profile_workload,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TeeSink,
    TraceEvent,
    Tracer,
    TraceSink,
)

__all__ = [
    "BucketSeries",
    "Counter",
    "GaugeSeries",
    "HubConfig",
    "Interval",
    "IntervalSink",
    "JsonlSink",
    "MemorySink",
    "MetricsHub",
    "MetricsSampler",
    "Profile",
    "ProfileDiff",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "diff_profiles",
    "dma_overlap_count",
    "load_profile",
    "metrics_csv",
    "profile_activity",
    "profile_workload",
    "render_diff",
    "to_perfetto",
    "validate_trace_events",
]
