"""Busy-interval reconstruction from the trace event stream.

An :class:`IntervalSink` is a :class:`~repro.obs.trace.TraceSink` that
folds events into three interval families as they stream past:

* **pipeline** — per SPU, what the pipeline ran and when: ``run``
  intervals (EX/PL/PS blocks) and ``pf`` intervals (PF blocks
  programming the MFC), opened at ``dispatch`` and closed by
  ``yield-dma`` / ``thread-stop`` / the next dispatch — the same
  reconstruction the ASCII timeline has always used.
* **dma** — per ``(spe, tag)`` tag group, from the first
  ``dma-command`` carrying that tag to its ``dma-tag-done``.  These are
  the intervals that overlap other threads' ``run`` time when
  non-blocking execution works.
* **bus** — per channel, occupancy windows from ``bus-grant`` events.

Feed it as a tracer sink (events arrive in cycle order during a run) and
call :meth:`IntervalSink.finish` once the run ends to close anything
still open.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.obs.trace import TraceEvent, TraceSink

__all__ = ["Interval", "IntervalSink", "PROFILE_KINDS"]

#: The event kinds interval reconstruction consumes — pass as the
#: ``kinds`` filter of the profiling tracer so nothing else is recorded.
PROFILE_KINDS = frozenset(
    {
        "dispatch",
        "yield-dma",
        "thread-stop",
        "dma-command",
        "dma-tag-done",
        "bus-grant",
        # Data-fault recovery markers (point events, not intervals).
        "thread-reexec",
        "dma-reverify",
    }
)


@dataclass
class Interval:
    """One half-open busy window ``[start, end)``."""

    start: int
    end: int
    #: "run" | "pf" (pipeline), "dma" (tag group), "bus" (channel grant).
    kind: str
    tid: int | None = None
    #: Template name (pipeline) or free-form detail.
    label: str = ""
    #: Payload bytes (dma / bus intervals).
    size: int = 0

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def to_dict(self) -> dict:
        return asdict(self)


class IntervalSink(TraceSink):
    """Streams trace events into pipeline / DMA / bus interval series."""

    def __init__(self) -> None:
        #: spu source name -> closed pipeline intervals, in time order.
        self.pipeline: dict[str, list[Interval]] = {}
        #: (spe_id, tag) -> closed DMA tag-group intervals.
        self.dma: dict[tuple[int, int], list[Interval]] = {}
        #: bus channel -> occupancy intervals.
        self.bus: dict[int, list[Interval]] = {}
        self._open_pipe: dict[str, Interval] = {}
        self._open_dma: dict[tuple[int, int], Interval] = {}
        #: Point-in-time recovery markers (thread re-executions, DMA
        #: re-fetch verifications), in stream order.
        self.marks: list[dict] = []
        self.finished = False

    # -- sink interface -----------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "dispatch":
            src = event.source
            self._close_pipe(src, event.cycle)
            fields = event.fields
            self._open_pipe[src] = Interval(
                start=event.cycle,
                end=event.cycle,
                kind="pf" if fields.get("pf") else "run",
                tid=fields.get("tid"),
                label=str(fields.get("template", "")),
            )
        elif kind in ("yield-dma", "thread-stop"):
            self._close_pipe(event.source, event.cycle)
        elif kind == "dma-command":
            fields = event.fields
            spe = _source_index(event.source)
            key = (spe, fields.get("tag", 0))
            opened = self._open_dma.get(key)
            if opened is None:
                self._open_dma[key] = Interval(
                    start=event.cycle,
                    end=event.cycle,
                    kind="dma",
                    tid=fields.get("tid"),
                    label=f"tag {key[1]}",
                    size=fields.get("bytes", 0),
                )
            else:
                # Another command joined the still-open tag group.
                opened.size += fields.get("bytes", 0)
        elif kind == "dma-tag-done":
            spe = _source_index(event.source)
            key = (spe, event.fields.get("tag", 0))
            opened = self._open_dma.pop(key, None)
            if opened is not None and event.cycle > opened.start:
                opened.end = event.cycle
                self.dma.setdefault(key, []).append(opened)
        elif kind == "bus-grant":
            fields = event.fields
            end = fields.get("end", event.cycle + 1)
            self.bus.setdefault(fields.get("channel", 0), []).append(
                Interval(
                    start=event.cycle,
                    end=max(end, event.cycle + 1),
                    kind="bus",
                    size=fields.get("bytes", 0),
                )
            )
        elif kind in ("thread-reexec", "dma-reverify"):
            self.marks.append(
                {"cycle": event.cycle, "source": event.source,
                 "kind": kind, **event.fields}
            )

    def finish(self, total_cycles: int) -> None:
        """Close intervals still open when the run ended."""
        for src in list(self._open_pipe):
            self._close_pipe(src, total_cycles)
        for key, opened in list(self._open_dma.items()):
            if total_cycles > opened.start:
                opened.end = total_cycles
                self.dma.setdefault(key, []).append(opened)
        self._open_dma.clear()
        self.finished = True

    # -- internals ----------------------------------------------------------

    def _close_pipe(self, src: str, end: int) -> None:
        opened = self._open_pipe.pop(src, None)
        if opened is not None and end > opened.start:
            opened.end = end
            self.pipeline.setdefault(src, []).append(opened)

    # -- queries ------------------------------------------------------------

    def busy_cycles(self, src: str) -> int:
        return sum(iv.cycles for iv in self.pipeline.get(src, []))

    def dma_intervals(self) -> list[tuple[int, int, Interval]]:
        """All closed DMA intervals as ``(spe, tag, interval)`` triples."""
        out = []
        for (spe, tag), intervals in sorted(self.dma.items()):
            for iv in intervals:
                out.append((spe, tag, iv))
        return out

    def to_dict(self) -> dict:
        return {
            "pipeline": {
                src: [iv.to_dict() for iv in ivs]
                for src, ivs in sorted(self.pipeline.items())
            },
            "dma": [
                {"spe": spe, "tag": tag, **iv.to_dict()}
                for spe, tag, iv in self.dma_intervals()
            ],
            "bus": {
                str(ch): [iv.to_dict() for iv in ivs]
                for ch, ivs in sorted(self.bus.items())
            },
            "marks": list(self.marks),
        }


def _source_index(source: str) -> int:
    """Trailing integer of a component name ("mfc3" -> 3)."""
    digits = ""
    for ch in reversed(source):
        if not ch.isdigit():
            break
        digits = ch + digits
    return int(digits) if digits else 0
