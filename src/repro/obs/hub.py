"""Metrics registry: counters, gauges and bucketed timeseries.

A :class:`MetricsHub` is attached to a machine with
:meth:`repro.cell.machine.Machine.attach_hub`.  Components bind their
instruments once at attach time (see ``Component._bind_metrics``) and
then feed them from their hot paths behind a single ``is not None``
check — when no hub is attached the instrumented code paths allocate
nothing and call nothing.

Memory is bounded by construction: every timeseries is a ring of at
most ``max_buckets`` buckets of ``bucket_cycles`` cycles each.  When a
run outlives the ring, the oldest buckets are evicted (counted in
``dropped_buckets``) while the scalar running totals keep the full-run
truth — so pipeline-usage numbers derived from a hub are exact even
when the timeseries window has wrapped.

A :class:`MetricsSampler` is an observation-only
:class:`~repro.sim.component.Component` (modelled on the progress
watchdog) that pull-samples queue depths and in-flight state the
components cannot cheaply push: ready-queue depth, outstanding DMA
bytes/commands, bus backlog, memory-port queue, engine event backlog.
It never wakes another component or sends a message, so attaching a hub
cannot change simulated timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.component import Component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cell.machine import Machine

__all__ = [
    "HubConfig",
    "Counter",
    "BucketSeries",
    "GaugeSeries",
    "MetricsHub",
    "MetricsSampler",
]


@dataclass(frozen=True)
class HubConfig:
    """Sizing knobs for a :class:`MetricsHub`.

    bucket_cycles:
        Width of one timeseries bucket, in simulated cycles.
    max_buckets:
        Ring capacity per series; at most this many buckets are kept
        (``bucket_cycles * max_buckets`` cycles of history).
    sample_interval:
        Cadence, in cycles, of the pull-sampler's gauge snapshots.
    """

    bucket_cycles: int = 1024
    max_buckets: int = 4096
    sample_interval: int = 1024

    def __post_init__(self) -> None:
        for name in ("bucket_cycles", "max_buckets", "sample_interval"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class BucketSeries:
    """Cycle-bucketed accumulator with a bounded ring and exact totals.

    ``add(cycle, value)`` folds ``value`` into the bucket containing
    ``cycle``.  Out-of-order adds that land before the newest bucket are
    folded into the newest bucket (components run in same-cycle priority
    order, so this only happens for small end-of-interval attributions
    and keeps the hot path a single comparison).
    """

    __slots__ = (
        "name",
        "bucket_cycles",
        "max_buckets",
        "total",
        "dropped_buckets",
        "_buckets",
    )

    def __init__(self, name: str, bucket_cycles: int, max_buckets: int) -> None:
        self.name = name
        self.bucket_cycles = bucket_cycles
        self.max_buckets = max_buckets
        self.total = 0
        self.dropped_buckets = 0
        # Ring of [bucket_index, value]; newest last.
        self._buckets: "deque[list[int]]" = deque()

    def add(self, cycle: int, value: int = 1) -> None:
        self.total += value
        bucket = cycle // self.bucket_cycles
        buckets = self._buckets
        if buckets:
            newest = buckets[-1]
            if bucket <= newest[0]:
                newest[1] += value
                return
            if len(buckets) >= self.max_buckets:
                buckets.popleft()
                self.dropped_buckets += 1
        buckets.append([bucket, value])

    def __len__(self) -> int:
        return len(self._buckets)

    def points(self) -> list[tuple[int, int]]:
        """``(bucket_start_cycle, value)`` pairs, oldest first."""
        width = self.bucket_cycles
        return [(b * width, v) for b, v in self._buckets]

    def to_dict(self) -> dict:
        return {
            "bucket_cycles": self.bucket_cycles,
            "total": self.total,
            "dropped_buckets": self.dropped_buckets,
            "points": [[start, value] for start, value in self.points()],
        }


class GaugeSeries:
    """Point-in-time level, kept per bucket as (last, max).

    Tracks the all-time ``peak`` and most recent ``last`` value besides
    the bounded per-bucket ring.
    """

    __slots__ = (
        "name",
        "bucket_cycles",
        "max_buckets",
        "last",
        "peak",
        "dropped_buckets",
        "_buckets",
    )

    def __init__(self, name: str, bucket_cycles: int, max_buckets: int) -> None:
        self.name = name
        self.bucket_cycles = bucket_cycles
        self.max_buckets = max_buckets
        self.last = 0
        self.peak = 0
        self.dropped_buckets = 0
        # Ring of [bucket_index, last, max]; newest last.
        self._buckets: "deque[list[int]]" = deque()

    def observe(self, cycle: int, value: int) -> None:
        self.last = value
        if value > self.peak:
            self.peak = value
        bucket = cycle // self.bucket_cycles
        buckets = self._buckets
        if buckets:
            newest = buckets[-1]
            if bucket <= newest[0]:
                newest[1] = value
                if value > newest[2]:
                    newest[2] = value
                return
            if len(buckets) >= self.max_buckets:
                buckets.popleft()
                self.dropped_buckets += 1
        buckets.append([bucket, value, value])

    def __len__(self) -> int:
        return len(self._buckets)

    def points(self) -> list[tuple[int, int, int]]:
        """``(bucket_start_cycle, last, max)`` triples, oldest first."""
        width = self.bucket_cycles
        return [(b * width, last, peak) for b, last, peak in self._buckets]

    def to_dict(self) -> dict:
        return {
            "bucket_cycles": self.bucket_cycles,
            "last": self.last,
            "peak": self.peak,
            "dropped_buckets": self.dropped_buckets,
            "points": [[s, last, peak] for s, last, peak in self.points()],
        }


class MetricsHub:
    """Registry of named instruments shared by all components of a run.

    ``enabled=False`` builds a hub that
    :meth:`~repro.cell.machine.Machine.attach_hub` treats exactly like
    no hub at all: nothing binds, nothing samples, the run is
    bit-identical to an unobserved one.
    """

    def __init__(
        self, config: HubConfig | None = None, enabled: bool = True
    ) -> None:
        self.config = config or HubConfig()
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, BucketSeries] = {}
        self.gauges: dict[str, GaugeSeries] = {}

    # -- instrument registry (get-or-create) --------------------------------

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def bucket_series(self, name: str) -> BucketSeries:
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = BucketSeries(
                name, self.config.bucket_cycles, self.config.max_buckets
            )
        return inst

    def gauge(self, name: str) -> GaugeSeries:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = GaugeSeries(
                name, self.config.bucket_cycles, self.config.max_buckets
            )
        return inst

    def to_dict(self) -> dict:
        """Full JSON-serializable dump of every instrument."""
        return {
            "config": asdict(self.config),
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "series": {
                name: s.to_dict() for name, s in sorted(self.series.items())
            },
            "gauges": {
                name: g.to_dict() for name, g in sorted(self.gauges.items())
            },
        }


class MetricsSampler(Component):
    """Observation-only component that pull-samples machine-wide gauges.

    Registered by ``Machine.attach_hub`` and started by ``Machine.run``;
    ticks every ``sample_interval`` cycles, reads state, writes gauges,
    and reschedules itself.  Like the progress watchdog it stops
    rescheduling once the run's ``done`` predicate is true so it never
    keeps ``engine.drain()`` alive.
    """

    #: Tick after every functional component so samples see the settled
    #: state of the cycle.
    priority = 90

    def __init__(
        self,
        name: str,
        hub: MetricsHub,
        machine: "Machine",
        done: "Callable[[], bool] | None" = None,
    ) -> None:
        super().__init__(name)
        self._hub = hub
        self._machine = machine
        self._done = done
        self._interval = hub.config.sample_interval
        self._g_ready = hub.gauge("sched.ready_depth")
        self._g_live = hub.gauge("threads.live")
        self._g_dma_cmds = hub.gauge("dma.inflight_commands")
        self._g_dma_bytes = hub.gauge("dma.inflight_bytes")
        self._g_bus = hub.gauge("bus.pending")
        self._g_mem = hub.gauge("memory.queue_depth")
        self._g_events = hub.gauge("engine.pending_events")
        self.samples = 0

    def start(self) -> None:
        """Schedule the first sample (call once the run begins)."""
        self.wake(self._interval)

    def tick(self, now: int) -> int | None:
        self._sample(now)
        if self._done is not None and self._done():
            return None
        return now + self._interval

    def _sample(self, now: int) -> None:
        m = self._machine
        self.samples += 1
        ready = 0
        dma_cmds = 0
        dma_bytes = 0
        for spe in m.spes:
            ready += spe.lse.ready_depth
            dma_cmds += spe.mfc.outstanding_commands
            dma_bytes += spe.mfc.outstanding_bytes
        self._g_ready.observe(now, ready)
        self._g_live.observe(now, m.threads_created - m.threads_completed)
        self._g_dma_cmds.observe(now, dma_cmds)
        self._g_dma_bytes.observe(now, dma_bytes)
        self._g_bus.observe(now, m.bus.pending)
        self._g_mem.observe(now, m.memory.queue_depth)
        self._g_events.observe(now, m.engine.pending_count)

    def describe_state(self) -> str:
        return f"metrics sampler: {self.samples} samples, every {self._interval} cycles"
