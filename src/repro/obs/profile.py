"""The profiler: one call that runs a workload under full observability.

:func:`profile_workload` (or :func:`profile_activity` for a raw
activity) runs a machine with a :class:`~repro.obs.hub.MetricsHub`
attached and a tracer streaming into an
:class:`~repro.obs.intervals.IntervalSink`, and folds everything into a
:class:`Profile`: the Figure 9 pipeline usage and Figure 5 cycle
breakdown *derived from hub instruments alone*, the bounded metric
timeseries, and the pipeline / DMA / bus intervals the Perfetto
exporter turns into tracks.

The profiler is observation-only — cycle counts are identical to an
unprofiled run — and its usage/breakdown numbers reproduce
``MachineStats`` exactly (idle is the unaccounted remainder, clamped at
zero, same as ``Machine.collect_stats``).
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING

from repro.obs.hub import HubConfig, MetricsHub
from repro.obs.intervals import PROFILE_KINDS, Interval, IntervalSink
from repro.obs.trace import JsonlSink, TeeSink, Tracer, TraceSink

if TYPE_CHECKING:  # pragma: no cover
    from repro.cell.machine import Machine, RunResult
    from repro.compiler.passes import PrefetchOptions
    from repro.core.activity import TLPActivity
    from repro.sim.config import MachineConfig
    from repro.workloads.common import Workload

__all__ = [
    "Profile",
    "profile_activity",
    "profile_workload",
    "build_profile",
    "metrics_csv",
    "dma_overlap_count",
]

#: Format marker for profile JSON files (diff refuses unknown versions).
PROFILE_VERSION = 1


@dataclass
class Profile:
    """Everything one profiled run produced, JSON-serializable."""

    activity: str
    prefetch: bool
    spes: int
    cycles: int
    #: Figure 9 per-SPU usage, derived from hub issue counters.
    pipeline_usage_per_spu: list[float]
    #: Average cycles per Figure 5 bucket (idle = unaccounted remainder).
    breakdown_cycles: dict[str, float]
    #: Machine-wide totals worth diffing.
    totals: dict[str, int]
    #: Full hub dump (counters / series / gauges with their ring buffers).
    metrics: dict
    #: Interval series (pipeline per SPU, DMA per tag group, bus per channel).
    intervals: dict
    version: int = PROFILE_VERSION

    @property
    def average_pipeline_usage(self) -> float:
        if not self.pipeline_usage_per_spu:
            return 0.0
        return sum(self.pipeline_usage_per_spu) / len(self.pipeline_usage_per_spu)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "activity": self.activity,
            "prefetch": self.prefetch,
            "spes": self.spes,
            "cycles": self.cycles,
            "pipeline_usage": {
                "average": self.average_pipeline_usage,
                "per_spu": list(self.pipeline_usage_per_spu),
            },
            "breakdown_cycles": dict(self.breakdown_cycles),
            "totals": dict(self.totals),
            "metrics": self.metrics,
            "intervals": self.intervals,
        }

    def summary_dict(self) -> dict:
        """The compact section :func:`repro.bench.export.run_to_dict` embeds."""
        return {
            "pipeline_usage": self.average_pipeline_usage,
            "breakdown_cycles": dict(self.breakdown_cycles),
            "totals": dict(self.totals),
            "counters": dict(self.metrics.get("counters", {})),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        version = data.get("version")
        if version != PROFILE_VERSION:
            raise ValueError(
                f"unsupported profile version {version!r} "
                f"(this build reads version {PROFILE_VERSION})"
            )
        return cls(
            activity=data["activity"],
            prefetch=data["prefetch"],
            spes=data["spes"],
            cycles=data["cycles"],
            pipeline_usage_per_spu=list(data["pipeline_usage"]["per_spu"]),
            breakdown_cycles=dict(data["breakdown_cycles"]),
            totals=dict(data["totals"]),
            metrics=data.get("metrics", {}),
            intervals=data.get("intervals", {}),
        )


def build_profile(
    result: "RunResult", machine: "Machine", hub: MetricsHub, sink: IntervalSink
) -> Profile:
    """Assemble a :class:`Profile` from a finished observed run.

    Usage and breakdown are computed from hub instruments only (never
    from ``MachineStats``) so the profiler is an independent witness:
    per SPU, the accounted buckets are the series totals, idle is
    ``cycles - accounted`` clamped at zero (matching
    ``Machine.collect_stats``) and usage is
    ``issue_cycles / max(cycles, accounted)``.
    """
    from repro.sim.stats import Bucket

    cycles = result.cycles
    num_spes = machine.config.num_spes
    usage: list[float] = []
    bucket_sums = {b: 0.0 for b in Bucket.ALL}
    for i in range(num_spes):
        accounted = 0
        per_bucket: dict[str, int] = {}
        for bucket in Bucket.ALL:
            if bucket == Bucket.IDLE:
                continue
            total = hub.bucket_series(f"spu{i}.{bucket}").total
            per_bucket[bucket] = total
            accounted += total
        per_bucket[Bucket.IDLE] = max(0, cycles - accounted)
        total_cycles = max(cycles, accounted)
        issue = hub.counter(f"spu{i}.issue_cycles").value
        usage.append(issue / total_cycles if total_cycles else 0.0)
        for bucket, value in per_bucket.items():
            bucket_sums[bucket] += value
    breakdown = {
        b: (v / num_spes if num_spes else 0.0) for b, v in bucket_sums.items()
    }
    stats = result.stats
    totals = {
        "threads": machine.threads_completed,
        "instructions": stats.mix.total,
        "dma_commands": stats.mfc.commands,
        "dma_bytes": stats.mfc.bytes_transferred,
        "bus_transfers": stats.bus.transfers,
        "bus_bytes": stats.bus.bytes_moved,
        "memory_reads": stats.memory.read_requests,
        "memory_writes": stats.memory.write_requests,
        "engine_ticks": machine.engine.ticks_dispatched,
        "engine_callbacks": machine.engine.callbacks_dispatched,
        "engine_stale_skipped": machine.engine.stale_skipped,
    }
    return Profile(
        activity=result.activity,
        prefetch=result.prefetch,
        spes=num_spes,
        cycles=cycles,
        pipeline_usage_per_spu=usage,
        breakdown_cycles=breakdown,
        totals=totals,
        metrics=hub.to_dict(),
        intervals=sink.to_dict(),
    )


def profile_activity(
    activity: "TLPActivity",
    config: "MachineConfig | None" = None,
    max_cycles: int | None = None,
    hub_config: HubConfig | None = None,
    trace_jsonl: "str | os.PathLike | IO[str] | None" = None,
) -> "tuple[RunResult, Profile]":
    """Run ``activity`` under the profiler; returns ``(result, profile)``.

    ``trace_jsonl`` additionally streams the raw profiling events to a
    JSONL file (path or open text file).
    """
    from repro.cell.machine import Machine
    from repro.sim.config import MachineConfig

    machine = Machine(config if config is not None else MachineConfig())
    hub = MetricsHub(hub_config)
    machine.attach_hub(hub)
    interval_sink = IntervalSink()
    sink: TraceSink = interval_sink
    if trace_jsonl is not None:
        sink = TeeSink([interval_sink, JsonlSink(trace_jsonl)])
    tracer = Tracer(kinds=PROFILE_KINDS, sink=sink)
    machine.attach_tracer(tracer)
    machine.load(activity)
    result = machine.run(max_cycles=max_cycles)
    interval_sink.finish(max(1, result.cycles))
    tracer.close()
    return result, build_profile(result, machine, hub, interval_sink)


def profile_workload(
    workload: "Workload",
    config: "MachineConfig | None" = None,
    prefetch: bool = True,
    options: "PrefetchOptions | None" = None,
    max_cycles: int | None = 500_000_000,
    verify: bool = True,
    hub_config: HubConfig | None = None,
    trace_jsonl: "str | os.PathLike | IO[str] | None" = None,
) -> "tuple[RunResult, Profile]":
    """Profile one variant of a benchmark workload, verifying outputs.

    The observability twin of :func:`repro.bench.runner.run_workload`:
    same transformation, same oracle check, plus a :class:`Profile`.
    """
    from repro.compiler.passes import prefetch_transform
    from repro.workloads.common import check_outputs

    activity = workload.activity
    if prefetch:
        activity = prefetch_transform(activity, options)
    from repro.cell.machine import Machine
    from repro.sim.config import MachineConfig

    machine = Machine(config if config is not None else MachineConfig())
    hub = MetricsHub(hub_config)
    machine.attach_hub(hub)
    interval_sink = IntervalSink()
    sink: TraceSink = interval_sink
    if trace_jsonl is not None:
        sink = TeeSink([interval_sink, JsonlSink(trace_jsonl)])
    tracer = Tracer(kinds=PROFILE_KINDS, sink=sink)
    machine.attach_tracer(tracer)
    machine.load(activity)
    result = machine.run(max_cycles=max_cycles)
    interval_sink.finish(max(1, result.cycles))
    tracer.close()
    if verify:
        errors = check_outputs(workload, machine)
        if errors:
            raise AssertionError(
                f"{workload.name} ({'PF' if prefetch else 'base'}): wrong "
                f"output:\n" + "\n".join(errors[:10])
            )
    return result, build_profile(result, machine, hub, interval_sink)


def metrics_csv(profile: Profile) -> str:
    """Flat CSV of every hub instrument (one row per point / counter)."""
    import csv

    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["instrument", "name", "bucket_start", "value", "extra"])
    metrics = profile.metrics
    for name, value in sorted(metrics.get("counters", {}).items()):
        writer.writerow(["counter", name, "", value, ""])
    for name, series in sorted(metrics.get("series", {}).items()):
        for start, value in series.get("points", []):
            writer.writerow(["series", name, start, value, ""])
    for name, gauge in sorted(metrics.get("gauges", {}).items()):
        for start, last, peak in gauge.get("points", []):
            writer.writerow(["gauge", name, start, last, peak])
    return out.getvalue()


def dma_overlap_count(profile: Profile) -> int:
    """DMA intervals overlapping another thread's executing (``run``) time.

    The paper's non-blocking claim, made checkable: a DMA tag group of
    thread A counts when some pipeline ``run`` interval of a different
    thread overlaps it in time.  Zero means prefetching never actually
    hid a transfer behind other threads' execution.
    """
    intervals = profile.intervals
    runs: list[Interval] = []
    for ivs in intervals.get("pipeline", {}).values():
        for iv in ivs:
            if iv["kind"] == "run":
                runs.append(Interval(**iv))
    count = 0
    for dma in intervals.get("dma", []):
        window = Interval(
            start=dma["start"], end=dma["end"], kind="dma", tid=dma["tid"]
        )
        if any(
            run.overlaps(window) and run.tid != window.tid for run in runs
        ):
            count += 1
    return count
