"""Streaming execution tracing (tracer v2).

A :class:`Tracer` filters structured events from the simulated hardware
— thread lifecycle transitions, dispatches, DMA and bus activity — and
hands them to a :class:`TraceSink`.  Unlike the original tracer (which
only accumulated an in-memory list), sinks decide what happens to the
stream: keep a bounded window (:class:`MemorySink`), stream to a JSONL
file (:class:`JsonlSink`), fan out to several consumers
(:class:`TeeSink`), or fold events into interval series
(:class:`repro.obs.intervals.IntervalSink`).

Tracing is off by default (a ``None`` tracer costs one attribute check
per would-be event).  Attach one with
:meth:`repro.cell.machine.Machine.attach_tracer`:

>>> from repro.obs.trace import Tracer
>>> tracer = Tracer(kinds={"thread-ready", "dispatch"})   # doctest: +SKIP
>>> machine.attach_tracer(tracer)                         # doctest: +SKIP
>>> machine.run()                                         # doctest: +SKIP
>>> print(tracer.format())                                # doctest: +SKIP

``repro.sim.trace`` re-exports :class:`TraceEvent` and :class:`Tracer`
for backwards compatibility.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Iterable, Mapping

__all__ = [
    "TraceEvent",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "Tracer",
]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    source: str
    kind: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.cycle:>8}] {self.source:<8} {self.kind:<16} {extras}"

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "source": self.source,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


class TraceSink:
    """Receives the filtered event stream from a :class:`Tracer`."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush / release resources.  Idempotent; default is a no-op."""


class MemorySink(TraceSink):
    """Keeps events in a list, bounded by ``limit`` (the v1 behaviour).

    Events past the limit are counted in ``dropped`` instead of stored,
    protecting long runs from unbounded memory.
    """

    def __init__(self, limit: int | None = 100_000) -> None:
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)


class JsonlSink(TraceSink):
    """Streams events to a file as one JSON object per line.

    Accepts a path (opened and owned by the sink) or any writable
    text-file object (flushed but left open on :meth:`close`).
    """

    def __init__(self, target: "str | os.PathLike | IO[str]") -> None:
        if isinstance(target, (str, os.PathLike)):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = target
            self._owned = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if self._owned:
            self._fh.close()


class TeeSink(TraceSink):
    """Fans every event out to several sinks."""

    def __init__(self, sinks: Iterable[TraceSink]) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _validated_kinds(kinds: "Iterable[str] | None") -> "frozenset[str] | None":
    if kinds is None:
        return None
    if isinstance(kinds, (str, bytes)):
        # A bare string would silently iterate into single characters and
        # filter out every real event kind.
        raise TypeError(
            f"kinds must be an iterable of kind strings, not a bare "
            f"string; did you mean kinds={{{kinds!r}}}?"
        )
    out = frozenset(kinds)
    bad = [k for k in out if not isinstance(k, str)]
    if bad:
        raise TypeError(f"kinds must all be strings, got {sorted(map(repr, bad))}")
    return out


class Tracer:
    """Filters :class:`TraceEvent` records into a :class:`TraceSink`.

    Parameters
    ----------
    kinds:
        Only record these event kinds (``None`` records everything).
        Must be an iterable of strings; a bare string raises
        ``TypeError`` rather than being iterated character by character.
    limit:
        Bound for the default in-memory sink (ignored when ``sink`` is
        given); the sink's ``dropped`` counter keeps the overflow total.
    sink:
        Destination for the event stream.  Defaults to a
        :class:`MemorySink` so the v1 query API (``events``,
        ``of_kind`` ...) keeps working.
    """

    def __init__(
        self,
        kinds: "Iterable[str] | None" = None,
        limit: int | None = 100_000,
        sink: TraceSink | None = None,
    ) -> None:
        self.kinds = _validated_kinds(kinds)
        self.limit = limit
        self.sink = sink if sink is not None else MemorySink(limit)

    def emit(self, cycle: int, source: str, kind: str, **fields: object) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.sink.emit(
            TraceEvent(cycle=cycle, source=source, kind=kind, fields=fields)
        )

    def close(self) -> None:
        self.sink.close()

    # -- queries (served from the first in-memory sink found) ---------------

    @property
    def events(self) -> list[TraceEvent]:
        sink = self._memory_sink()
        return sink.events if sink is not None else []

    @property
    def dropped(self) -> int:
        sink = self._memory_sink()
        return sink.dropped if sink is not None else 0

    def _memory_sink(self) -> MemorySink | None:
        if isinstance(self.sink, MemorySink):
            return self.sink
        if isinstance(self.sink, TeeSink):
            for sink in self.sink.sinks:
                if isinstance(sink, MemorySink):
                    return sink
        return None

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.fields.get("tid") == tid]

    def kinds_seen(self) -> set[str]:
        return {e.kind for e in self.events}

    def __len__(self) -> int:
        return len(self.events)

    def format(self, max_lines: int | None = None) -> str:
        lines = [str(e) for e in self.events]
        if max_lines is not None and len(lines) > max_lines:
            omitted = len(lines) - max_lines
            lines = lines[:max_lines] + [f"... ({omitted} more events)"]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at the limit)")
        return "\n".join(lines)
