"""Profile comparison — the perf-regression check.

:func:`diff_profiles` takes two profile dictionaries (either
``Profile.to_dict()`` output or a JSON file loaded with
:func:`load_profile`) and produces a :class:`ProfileDiff`: per-metric
(baseline, candidate) pairs with absolute and percentage deltas over
cycles, average pipeline usage, the Figure 5 cycle buckets and the
machine-wide totals.

``ProfileDiff.regressions(max_delta_pct)`` is the CI gate: metrics
where *more is worse* (cycles, stall buckets, bus/memory traffic) that
grew beyond the threshold, plus pipeline usage shrinking beyond it.  A
profile diffed against itself always yields no regressions, which is
exactly what the CI smoke job asserts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = ["MetricDelta", "ProfileDiff", "diff_profiles", "load_profile", "render_diff"]

#: Totals where an increase is a regression (cycle buckets are listed
#: separately — every bucket except ``working`` growing is suspect).
_MORE_IS_WORSE_TOTALS = frozenset(
    {"dma_commands", "dma_bytes", "bus_transfers", "bus_bytes",
     "memory_reads", "memory_writes"}
)
_MORE_IS_WORSE_BUCKETS = frozenset(
    {"idle", "mem_stall", "ls_stall", "lse_stall", "prefetch"}
)


@dataclass
class MetricDelta:
    """One compared metric: baseline vs candidate."""

    name: str
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def delta_pct(self) -> float:
        """Percent change relative to baseline (0 when both are zero)."""
        if self.baseline:
            return 100.0 * self.delta / self.baseline
        return 0.0 if not self.candidate else float("inf")


@dataclass
class ProfileDiff:
    """Structured comparison of two profiles (baseline vs candidate)."""

    baseline_label: str
    candidate_label: str
    cycles: MetricDelta
    pipeline_usage: MetricDelta
    buckets: list[MetricDelta] = field(default_factory=list)
    totals: list[MetricDelta] = field(default_factory=list)

    def all_deltas(self) -> list[MetricDelta]:
        return [self.cycles, self.pipeline_usage, *self.buckets, *self.totals]

    def regressions(self, max_delta_pct: float = 0.0) -> list[MetricDelta]:
        """Metrics that got worse by more than ``max_delta_pct`` percent.

        Identical profiles return ``[]`` for any threshold ≥ 0.
        """
        bad: list[MetricDelta] = []
        if self.cycles.delta_pct > max_delta_pct:
            bad.append(self.cycles)
        # Usage is better when higher; a drop is the regression.
        if -self.pipeline_usage.delta_pct > max_delta_pct:
            bad.append(self.pipeline_usage)
        for d in self.buckets:
            if d.name.split(".")[-1] in _MORE_IS_WORSE_BUCKETS:
                if d.delta_pct > max_delta_pct:
                    bad.append(d)
        for d in self.totals:
            if d.name.split(".")[-1] in _MORE_IS_WORSE_TOTALS:
                if d.delta_pct > max_delta_pct:
                    bad.append(d)
        return bad


def load_profile(path: "str | os.PathLike") -> dict:
    """Load a profile JSON file written by ``repro profile --profile``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "pipeline_usage" not in data:
        raise ValueError(f"{path}: not a profile JSON file")
    return data


def diff_profiles(
    baseline: dict,
    candidate: dict,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> ProfileDiff:
    """Compare two profile dictionaries (``Profile.to_dict()`` shape)."""
    cycles = MetricDelta(
        "cycles", float(baseline["cycles"]), float(candidate["cycles"])
    )
    usage = MetricDelta(
        "pipeline_usage.average",
        float(baseline["pipeline_usage"]["average"]),
        float(candidate["pipeline_usage"]["average"]),
    )
    buckets = []
    a_buckets = baseline.get("breakdown_cycles", {})
    b_buckets = candidate.get("breakdown_cycles", {})
    for name in sorted(set(a_buckets) | set(b_buckets)):
        buckets.append(
            MetricDelta(
                f"breakdown.{name}",
                float(a_buckets.get(name, 0.0)),
                float(b_buckets.get(name, 0.0)),
            )
        )
    totals = []
    a_totals = baseline.get("totals", {})
    b_totals = candidate.get("totals", {})
    for name in sorted(set(a_totals) | set(b_totals)):
        totals.append(
            MetricDelta(
                f"totals.{name}",
                float(a_totals.get(name, 0)),
                float(b_totals.get(name, 0)),
            )
        )
    return ProfileDiff(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        cycles=cycles,
        pipeline_usage=usage,
        buckets=buckets,
        totals=totals,
    )


def render_diff(diff: ProfileDiff, max_delta_pct: float | None = None) -> str:
    """Human-readable comparison table, one metric per row."""
    regressed = (
        {id(d) for d in diff.regressions(max_delta_pct)}
        if max_delta_pct is not None
        else set()
    )
    lines = [
        f"profile diff: {diff.baseline_label} -> {diff.candidate_label}",
        f"{'metric':<28} {'baseline':>14} {'candidate':>14} "
        f"{'delta':>12} {'delta%':>9}",
    ]
    for d in diff.all_deltas():
        pct = d.delta_pct
        pct_text = f"{pct:+8.2f}%" if pct != float("inf") else "     new "
        flag = "  << regression" if id(d) in regressed else ""
        lines.append(
            f"{d.name:<28} {d.baseline:>14.2f} {d.candidate:>14.2f} "
            f"{d.delta:>+12.2f} {pct_text}{flag}"
        )
    return "\n".join(lines)
