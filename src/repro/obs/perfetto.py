"""Chrome / Perfetto ``trace_event`` export.

Turns a :class:`~repro.obs.profile.Profile` into the JSON object format
both ``chrome://tracing`` and https://ui.perfetto.dev load directly:

* process 1, one thread row per SPU — the pipeline tracks (``B``/``E``
  duration events; ``run`` for EX/PL/PS execution, ``pf`` for PF blocks
  programming the MFC);
* process 2, one thread row per ``(SPE, DMA tag)`` — the tag-group
  tracks, emitted as async ``b``/``e`` events so transfers on the same
  row may overlap;
* process 3, one thread row per bus channel — occupancy windows.

Data-fault recovery markers (``thread-reexec`` / ``dma-reverify``)
appear as instant events on the owning SPE's pipeline row.

Timestamps are simulated cycles reported as microseconds (1 cycle =
1 us) — Perfetto needs *some* time unit and cycles are the honest one.
Open a prefetch-enabled trace and the paper's non-blocking execution is
literally visible: DMA tag-group bars of one thread spanning the run
bars of other threads.

:func:`validate_trace_events` is the schema check the test-suite (and
CI) runs over exported traces: event structure, ``B``/``E`` stack
pairing per track, async ``b``/``e`` pairing per (category, id), and
non-decreasing timestamps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profile import Profile

__all__ = ["to_perfetto", "validate_trace_events"]

_PID_SPU = 1
_PID_DMA = 2
_PID_BUS = 3

#: Order of same-timestamp events: close before open so zero-gap
#: back-to-back intervals never momentarily nest in a viewer.
_PHASE_ORDER = {"M": 0, "e": 1, "E": 2, "b": 3, "B": 4}


def _meta(pid: int, tid: int | None, name: str, what: str) -> dict:
    event: dict = {
        "ph": "M",
        "name": what,
        "pid": pid,
        "ts": 0,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def to_perfetto(profile: "Profile") -> dict:
    """The complete ``trace_event`` JSON document for ``profile``."""
    events: list[dict] = [
        _meta(_PID_SPU, None, "SPU pipelines", "process_name"),
        _meta(_PID_DMA, None, "DMA tag groups", "process_name"),
        _meta(_PID_BUS, None, "bus channels", "process_name"),
    ]
    intervals = profile.intervals

    pipeline = intervals.get("pipeline", {})
    for src in sorted(pipeline):
        spu_tid = _trailing_int(src)
        events.append(_meta(_PID_SPU, spu_tid, src, "thread_name"))
        for iv in pipeline[src]:
            if iv["end"] <= iv["start"]:
                continue
            name = iv["label"] or f"tid {iv['tid']}"
            if iv["kind"] == "pf":
                name = f"PF {name}"
            common = {
                "name": name,
                "cat": "pipeline," + iv["kind"],
                "pid": _PID_SPU,
                "tid": spu_tid,
                "args": {"tid": iv["tid"], "kind": iv["kind"]},
            }
            events.append({"ph": "B", "ts": iv["start"], **common})
            events.append({"ph": "E", "ts": iv["end"], **common})

    dma_rows: dict[tuple[int, int], int] = {}
    for n, dma in enumerate(intervals.get("dma", [])):
        if dma["end"] <= dma["start"]:
            continue
        row = (dma["spe"], dma["tag"])
        if row not in dma_rows:
            # One Perfetto thread per (SPE, tag); tags are small ints so
            # the row id stays readable in the UI.
            dma_rows[row] = dma["spe"] * 100 + dma["tag"]
            events.append(
                _meta(
                    _PID_DMA, dma_rows[row],
                    f"spe{dma['spe']} tag {dma['tag']}", "thread_name",
                )
            )
        common = {
            "name": f"dma tag {dma['tag']} ({dma['size']} B)",
            "cat": "dma",
            "id": f"dma-{n}",
            "pid": _PID_DMA,
            "tid": dma_rows[row],
            "args": {"tid": dma["tid"], "bytes": dma["size"]},
        }
        events.append({"ph": "b", "ts": dma["start"], **common})
        events.append({"ph": "e", "ts": dma["end"], **common})

    for ch_key in sorted(intervals.get("bus", {}), key=int):
        ch = int(ch_key)
        events.append(_meta(_PID_BUS, ch, f"bus ch{ch}", "thread_name"))
        for iv in intervals["bus"][ch_key]:
            if iv["end"] <= iv["start"]:
                continue
            common = {
                "name": f"xfer {iv['size']} B",
                "cat": "bus",
                "pid": _PID_BUS,
                "tid": ch,
                "args": {"bytes": iv["size"]},
            }
            events.append({"ph": "B", "ts": iv["start"], **common})
            events.append({"ph": "E", "ts": iv["end"], **common})

    for mark in intervals.get("marks", []):
        # Recovery markers (thread re-executions, DMA re-fetches) as
        # instant events on the owning SPE's pipeline row, so they line
        # up with the run/PF bars they interrupted.
        tid = _trailing_int(mark.get("source", ""))
        if mark["kind"] == "thread-reexec":
            name = (f"re-exec tid {mark.get('tid')} "
                    f"(attempt {mark.get('attempt')})")
        else:
            name = (f"re-fetch cmd {mark.get('command')} "
                    f"tag {mark.get('tag')}")
        events.append({
            "ph": "i",
            "ts": mark["cycle"],
            "s": "t",
            "name": name,
            "cat": "recovery," + mark["kind"],
            "pid": _PID_SPU,
            "tid": tid,
            "args": {
                k: v for k, v in mark.items()
                if k not in ("cycle", "source", "kind")
            },
        })

    events.sort(key=lambda e: (e["ts"], _PHASE_ORDER.get(e["ph"], 9)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "activity": profile.activity,
            "prefetch": profile.prefetch,
            "spes": profile.spes,
            "cycles": profile.cycles,
            "ts_unit": "1 us == 1 simulated cycle",
        },
    }


def validate_trace_events(doc: dict) -> list[str]:
    """Schema-check a ``trace_event`` document; returns a list of errors.

    An empty list means the document is well-formed: every event has the
    required fields, timestamps are non-negative and non-decreasing in
    file order, ``B``/``E`` pairs nest properly per (pid, tid) track,
    and every async ``b`` has exactly one matching ``e`` per (cat, id).
    """
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    stacks: dict[tuple, list[str]] = {}
    async_open: dict[tuple, int] = {}
    last_ts = None
    for n, event in enumerate(events):
        where = f"event {n}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "b", "e", "M", "X", "i"):
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"{where}: ts {ts} decreases (previous {last_ts})"
            )
        last_ts = ts
        if ph == "M":
            continue
        if "tid" not in event:
            errors.append(f"{where}: missing tid")
            continue
        if ph in ("B", "E"):
            track = (event["pid"], event["tid"])
            stack = stacks.setdefault(track, [])
            if ph == "B":
                stack.append(event.get("name", ""))
            else:
                if not stack:
                    errors.append(f"{where}: E with empty stack on {track}")
                elif stack[-1] != event.get("name", ""):
                    errors.append(
                        f"{where}: E name {event.get('name')!r} does not "
                        f"match open B {stack[-1]!r} on {track}"
                    )
                    stack.pop()
                else:
                    stack.pop()
        elif ph in ("b", "e"):
            key = (event.get("cat"), event.get("id"))
            if event.get("id") is None:
                errors.append(f"{where}: async event without id")
                continue
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) < 1:
                    errors.append(f"{where}: e without open b for {key}")
                else:
                    async_open[key] -= 1
    for track, stack in stacks.items():
        if stack:
            errors.append(
                f"track {track}: {len(stack)} unclosed B events ({stack[-1]!r})"
            )
    for key, open_count in async_open.items():
        if open_count:
            errors.append(f"async {key}: {open_count} unclosed b events")
    return errors


def _trailing_int(source: str) -> int:
    digits = ""
    for ch in reversed(source):
        if not ch.isdigit():
            break
        digits = ch + digits
    return int(digits) if digits else 0
