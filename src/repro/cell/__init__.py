"""The CellDTA machine model: SPEs, bus, memory, MFC, PPE, machine."""

from repro.cell.bus import Bus, BusEndpoint
from repro.cell.local_store import (
    AllocationError,
    LocalStore,
    LocalStoreFault,
    LSAllocator,
)
from repro.cell.machine import Machine, RunResult, run_activity
from repro.cell.main_memory import MainMemory, MemoryFault
from repro.cell.mfc import MFC, DmaCommand, DmaKind
from repro.cell.ppe import PPE
from repro.cell.spe import SPE
from repro.cell.spu import SPU, SpuFault

__all__ = [
    "Machine",
    "RunResult",
    "run_activity",
    "Bus",
    "BusEndpoint",
    "MainMemory",
    "MemoryFault",
    "LocalStore",
    "LSAllocator",
    "LocalStoreFault",
    "AllocationError",
    "MFC",
    "DmaKind",
    "DmaCommand",
    "PPE",
    "SPE",
    "SPU",
    "SpuFault",
]
