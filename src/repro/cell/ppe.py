"""Power Processing Element.

The PPE "is used to initiate the DTA TLP activities" (paper Sec. 4.1):
it walks the activity's spawn list, FALLOCs each root thread through the
DSE, and stores the initial parameters into the returned frames.  It is
deliberately simple — the paper measures only what happens on the SPEs —
but it exercises the same scheduler message protocol the SPEs use, so
root spawning has realistic cost and ordering.
"""

from __future__ import annotations

import typing

from repro.cell.bus import BusEndpoint
from repro.core.messages import FallocRequest, FallocResponse, Message, StoreMsg
from repro.sim.component import Component

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.activity import TLPActivity

__all__ = ["PPE"]

#: Bus-directory id of the PPE (never a valid SPE index).
PPE_ID = -1

#: Cycles between successive PPE scheduler operations.
_ISSUE_LATENCY = 4


class PPE(Component, BusEndpoint):
    """Initiates TLP activities and then gets out of the way."""

    priority = 55
    node_id = 0

    def __init__(self, name: str = "ppe") -> None:
        Component.__init__(self, name)
        self._bus = None
        self._dse = None
        self._activity: "TLPActivity | None" = None
        self._spawn_index = 0
        self._pending_stores: list[tuple[int, int]] = []  # (slot, value)
        self._handle: int | None = None
        self._waiting_response = False
        self._seq = 0
        #: Handles of the root threads, in spawn order (for tests).
        self.spawned_handles: list[int] = []
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_spawns = None

    def _bind_metrics(self, hub) -> None:
        self._m_spawns = hub.counter("ppe.root_spawns")

    def wire(self, bus, dse) -> None:
        self._bus = bus
        self._dse = dse

    def load(self, activity: "TLPActivity") -> None:
        """Queue an activity for spawning; spawning starts at the next tick."""
        activity.validate()
        self._activity = activity
        self._spawn_index = 0
        self.spawned_handles.clear()
        self.wake()

    @property
    def done(self) -> bool:
        """True once every root spawn has been issued and parameterized."""
        return (
            self._activity is not None
            and self._spawn_index >= len(self._activity.spawns)
            and not self._pending_stores
            and not self._waiting_response
        )

    # -- bus endpoint --------------------------------------------------------

    def deliver(self, msg: Message) -> None:
        if not isinstance(msg, FallocResponse):
            raise RuntimeError(f"{self.name}: unexpected {type(msg).__name__}")
        if not self._waiting_response:
            raise RuntimeError(f"{self.name}: unsolicited FALLOC response")
        self._handle = msg.handle
        self.spawned_handles.append(msg.handle)
        self._waiting_response = False
        self.wake()

    # -- component ------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        if self._activity is None or self._waiting_response:
            return None
        if self._pending_stores:
            slot, value = self._pending_stores.pop(0)
            assert self._handle is not None
            self._bus.send(
                self, self._machine_endpoint_for(self._handle),
                StoreMsg(handle=self._handle, slot=slot, value=value),
            )
            return now + _ISSUE_LATENCY
        if self._spawn_index < len(self._activity.spawns):
            spawn = self._activity.spawns[self._spawn_index]
            self._spawn_index += 1
            self._pending_stores = [
                (slot, self._activity.resolve(value, self.spawned_handles))
                for slot, value in sorted(spawn.stores.items())
            ]
            self._seq += 1
            self._waiting_response = True
            if self._m_spawns is not None:
                self._m_spawns.add()
            self._trace("root-spawn", template=spawn.template,
                        index=self._spawn_index - 1)
            self._bus.send(
                self, self._dse,
                FallocRequest(
                    request_id=(PPE_ID & 0xFF) << 24 | self._seq,
                    requester_spe=PPE_ID,
                    template_id=self._activity.template_id(spawn.template),
                    sc=spawn.sc,
                ),
            )
            return None  # resumes when the response arrives
        return None

    def _machine_endpoint_for(self, handle: int):
        from repro.core.frame import handle_pe

        return self._machine.endpoint_of(handle_pe(handle))

    def attach_machine(self, machine) -> None:
        self._machine = machine

    def describe_state(self) -> str:
        total = len(self._activity.spawns) if self._activity else 0
        return (
            f"spawn {self._spawn_index}/{total}, "
            f"{len(self._pending_stores)} stores pending, "
            f"waiting_response={self._waiting_response}"
        )
