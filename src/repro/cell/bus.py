"""Element interconnect bus.

The Cell EIB is modeled as ``num_buses`` parallel channels of
``bytes_per_cycle`` each (Table 4: four buses of 8 bytes/cycle).  A
transfer occupies one channel for ``ceil(size / width)`` cycles plus a
fixed arbitration latency; queued transfers are granted to free channels
in FIFO order, which approximates the EIB's round-robin arbitration while
staying deterministic.

Endpoints are any object with a ``deliver(msg)`` method and a ``node_id``
attribute; transfers whose source and destination sit on different DTA
nodes pay the configured inter-node latency on top (paper Sec. 2: "the
communication between nodes is slower as we rely on a more complex
interconnection network").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.messages import Message, StoreMsg
from repro.faults.integrity import flip_word_bit, store_check
from repro.sim.component import Component
from repro.sim.config import BusConfig
from repro.sim.engine import Callback, register_callback
from repro.sim.stats import BusStats

__all__ = ["Bus", "BusEndpoint"]


class BusEndpoint:
    """Mixin giving a component a bus address."""

    node_id: int = 0

    def deliver(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(slots=True)
class _Transfer:
    src_node: int
    dst: BusEndpoint
    msg: Message
    enqueued_at: int
    #: Per-bus sequence number; makes delivery idempotent under injected
    #: duplicates and lets the sanitizer verify exactly-once delivery.
    seq: int = 0


class Bus(Component):
    """The shared interconnect for scheduler messages, memory and DMA traffic."""

    priority = 10  # move data before pipelines consume it

    def __init__(
        self,
        name: str,
        config: BusConfig,
        inter_node_latency: int = 0,
        stats: BusStats | None = None,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.inter_node_latency = inter_node_latency
        self.stats = stats if stats is not None else BusStats()
        self._queue: deque[_Transfer] = deque()
        #: Cycle each channel becomes free.
        self._channel_free = [0] * config.num_buses
        self._next_seq = 0
        #: Sequence numbers granted a channel but not yet delivered; a
        #: delivery whose seq is absent is a duplicate and is absorbed.
        self._undelivered: set[int] = set()
        self._injector = None  # optional FaultInjector
        self._sanitizer = None  # optional Sanitizer
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_busy = None
        self._m_bytes = None
        self._g_backlog = None

    def attach_faults(self, injector=None, sanitizer=None) -> None:
        """Wire the machine's fault injector / sanitizer (both optional)."""
        self._injector = injector
        self._sanitizer = sanitizer

    def _bind_metrics(self, hub) -> None:
        self._m_busy = hub.bucket_series("bus.busy_cycles")
        self._m_bytes = hub.bucket_series("bus.bytes")
        self._g_backlog = hub.gauge("bus.backlog")

    # -- API ------------------------------------------------------------------

    def send(self, src: "BusEndpoint | None", dst: BusEndpoint, msg: Message) -> None:
        """Enqueue ``msg`` for delivery to ``dst``.

        ``src`` may be ``None`` for host-originated traffic (treated as
        node 0).
        """
        src_node = getattr(src, "node_id", 0) if src is not None else 0
        inj = self._injector
        if (inj is not None and inj.plan.data_active
                and type(msg) is StoreMsg):
            # Stamp the integrity check code as the message enters the
            # bus — the one point every frame store (LSE or PPE) passes —
            # so corruption in transit is detectable at the LSE commit
            # boundary.
            msg = StoreMsg(handle=msg.handle, slot=msg.slot,
                           value=msg.value, check=store_check(msg.value))
        self._next_seq += 1
        self._queue.append(
            _Transfer(src_node=src_node, dst=dst, msg=msg,
                      enqueued_at=self.now, seq=self._next_seq)
        )
        self.wake()

    @property
    def pending(self) -> int:
        """Transfers waiting for a channel (diagnostics)."""
        return len(self._queue)

    # -- component -----------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        # Grant free channels to queued transfers in FIFO order.
        for ch in range(self.config.num_buses):
            if not self._queue:
                break
            if self._channel_free[ch] > now:
                continue
            t = self._queue.popleft()
            cycles = max(
                1, -(-t.msg.size_bytes // self.config.bytes_per_cycle)
            )
            extra = (
                self.inter_node_latency
                if t.src_node != getattr(t.dst, "node_id", 0)
                else 0
            )
            finish = now + self.config.arbitration_latency + cycles + extra
            self._channel_free[ch] = now + cycles  # channel is pipelined past
            self.stats.transfers += 1
            self.stats.bytes_moved += t.msg.size_bytes
            self.stats.busy_bus_cycles += cycles
            self.stats.queue_wait_cycles += now - t.enqueued_at
            if self._m_busy is not None:
                self._m_busy.add(now, cycles)
                self._m_bytes.add(now, t.msg.size_bytes)
                self._g_backlog.observe(now, len(self._queue))
            self._trace(
                "bus-grant", channel=ch, end=now + cycles,
                bytes=t.msg.size_bytes,
            )
            inj = self._injector
            if inj is not None:
                finish += inj.bus_transfer_delay()
                if inj.plan.data_active and type(t.msg) is StoreMsg:
                    bit = inj.store_corruption()
                    if bit is not None:
                        # Flip one payload bit in transit; the stamped
                        # check code still describes the original value,
                        # which is how the LSE detects (and corrects)
                        # the damage.  Replace the message before the
                        # delivery callbacks are scheduled so an
                        # injected duplicate carries the same bytes.
                        m = t.msg
                        self._trace("data-fault", what="store-corrupt",
                                    seq=t.seq, bit=bit)
                        t.msg = StoreMsg(
                            handle=m.handle, slot=m.slot,
                            value=flip_word_bit(m.value, bit),
                            check=m.check,
                        )
            self._undelivered.add(t.seq)
            self.engine.call_at(finish, Callback("bus.deliver", self, (t,)))
            if inj is not None and inj.bus_duplicate():
                # Deliver a second copy one cycle later; _deliver absorbs
                # it because the seq will already be retired.
                self.engine.call_at(
                    finish + 1, Callback("bus.deliver", self, (t,))
                )
        if self._queue:
            nxt = min(self._channel_free)
            return max(nxt, now + 1)
        return None

    def _deliver(self, t: _Transfer) -> None:
        """Deliver a granted transfer exactly once.

        Every transfer reaches this point at least once; injected
        duplicates reach it twice.  The seq set makes the second arrival
        a counted no-op, so endpoints never have to be duplicate-safe
        themselves (a duplicated ReadResponse would spuriously unblock a
        pipeline; a duplicated StoreMsg would decrement an SC twice).
        """
        if t.seq not in self._undelivered:
            if self._injector is not None:
                self._injector.stats.bus_duplicates_absorbed += 1
            return
        self._undelivered.discard(t.seq)
        if self._sanitizer is not None:
            self._sanitizer.message_delivered(t.seq)
        t.dst.deliver(t.msg)

    def describe_state(self) -> str:
        return (
            f"{len(self._queue)} queued transfers, channels free at "
            f"{self._channel_free}"
        )


register_callback("bus.deliver", Bus._deliver)
