"""Element interconnect bus.

The Cell EIB is modeled as ``num_buses`` parallel channels of
``bytes_per_cycle`` each (Table 4: four buses of 8 bytes/cycle).  A
transfer occupies one channel for ``ceil(size / width)`` cycles plus a
fixed arbitration latency; queued transfers are granted to free channels
in FIFO order, which approximates the EIB's round-robin arbitration while
staying deterministic.

Endpoints are any object with a ``deliver(msg)`` method and a ``node_id``
attribute; transfers whose source and destination sit on different DTA
nodes pay the configured inter-node latency on top (paper Sec. 2: "the
communication between nodes is slower as we rely on a more complex
interconnection network").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.messages import Message
from repro.sim.component import Component
from repro.sim.config import BusConfig
from repro.sim.stats import BusStats

__all__ = ["Bus", "BusEndpoint"]


class BusEndpoint:
    """Mixin giving a component a bus address."""

    node_id: int = 0

    def deliver(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class _Transfer:
    src_node: int
    dst: BusEndpoint
    msg: Message
    enqueued_at: int


class Bus(Component):
    """The shared interconnect for scheduler messages, memory and DMA traffic."""

    priority = 10  # move data before pipelines consume it

    def __init__(
        self,
        name: str,
        config: BusConfig,
        inter_node_latency: int = 0,
        stats: BusStats | None = None,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.inter_node_latency = inter_node_latency
        self.stats = stats if stats is not None else BusStats()
        self._queue: deque[_Transfer] = deque()
        #: Cycle each channel becomes free.
        self._channel_free = [0] * config.num_buses

    # -- API ------------------------------------------------------------------

    def send(self, src: "BusEndpoint | None", dst: BusEndpoint, msg: Message) -> None:
        """Enqueue ``msg`` for delivery to ``dst``.

        ``src`` may be ``None`` for host-originated traffic (treated as
        node 0).
        """
        src_node = getattr(src, "node_id", 0) if src is not None else 0
        self._queue.append(
            _Transfer(src_node=src_node, dst=dst, msg=msg, enqueued_at=self.now)
        )
        self.wake()

    @property
    def pending(self) -> int:
        """Transfers waiting for a channel (diagnostics)."""
        return len(self._queue)

    # -- component -----------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        # Grant free channels to queued transfers in FIFO order.
        for ch in range(self.config.num_buses):
            if not self._queue:
                break
            if self._channel_free[ch] > now:
                continue
            t = self._queue.popleft()
            cycles = max(
                1, -(-t.msg.size_bytes // self.config.bytes_per_cycle)
            )
            extra = (
                self.inter_node_latency
                if t.src_node != getattr(t.dst, "node_id", 0)
                else 0
            )
            finish = now + self.config.arbitration_latency + cycles + extra
            self._channel_free[ch] = now + cycles  # channel is pipelined past
            self.stats.transfers += 1
            self.stats.bytes_moved += t.msg.size_bytes
            self.stats.busy_bus_cycles += cycles
            self.stats.queue_wait_cycles += now - t.enqueued_at
            dst, msg = t.dst, t.msg
            self.engine.call_at(finish, lambda d=dst, m=msg: d.deliver(m))
        if self._queue:
            nxt = min(self._channel_free)
            return max(nxt, now + 1)
        return None

    def describe_state(self) -> str:
        return (
            f"{len(self._queue)} queued transfers, channels free at "
            f"{self._channel_free}"
        )
