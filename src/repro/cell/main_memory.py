"""Main memory model.

Table 2: 512 MB, 150-cycle latency, one port.  The port accepts one
request per cycle; service is pipelined, so the latency is paid per
request but throughput is one request per port per cycle (the bus is the
bandwidth limiter for bulk data, which is what makes DMA able to "fully
utilize the bandwidth" while scalar READs cannot — Sec. 4.3).

Storage is a sparse word dictionary so the full 512 MB address space is
addressable without allocating it.  Values are functionally read at
request *acceptance* and written at acceptance too, preserving per-source
program order for the race-free programs DTA produces (inputs are
read-only during an activity; outputs are written by exactly one thread).
"""

from __future__ import annotations

from collections import deque

from repro.core.messages import (
    CacheFillRequest,
    CacheFillResponse,
    DmaGatherRequest,
    DmaReadRequest,
    DmaReadResponse,
    DmaWriteRequest,
    Message,
    ReadRequest,
    ReadResponse,
    WriteAck,
    WriteRequest,
)
from repro.sim.component import Component
from repro.sim.config import MainMemoryConfig
from repro.sim.engine import Callback, register_callback
from repro.sim.stats import MemoryStats

__all__ = ["MainMemory", "MemoryFault"]


class MemoryFault(RuntimeError):
    """An out-of-range or misaligned main-memory access."""


class MainMemory(Component):
    """The single off-chip memory, attached to the bus."""

    priority = 20

    def __init__(
        self,
        name: str,
        config: MainMemoryConfig,
        stats: MemoryStats | None = None,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.stats = stats if stats is not None else MemoryStats()
        self._words: dict[int, int] = {}
        self._queue: deque[tuple[Message, int]] = deque()  # (msg, arrival)
        #: Wired by the machine: spe_id -> bus endpoint for responses.
        self.directory: dict[int, object] = {}
        self._bus = None  # wired by the machine
        self._injector = None  # optional FaultInjector
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_wait = None
        self._m_requests = None
        self._g_queue = None

    def attach_bus(self, bus) -> None:
        self._bus = bus

    def _bind_metrics(self, hub) -> None:
        self._m_wait = hub.bucket_series("memory.port_wait_cycles")
        self._m_requests = hub.bucket_series("memory.requests")
        self._g_queue = hub.gauge("memory.queue_depth")

    def attach_faults(self, injector=None) -> None:
        self._injector = injector

    def _stall(self) -> int:
        """Injected extra service latency for one request (usually 0)."""
        return 0 if self._injector is None else self._injector.mem_stall()

    # -- functional storage (offline access for loaders/oracles) -----------------

    def _check(self, addr: int) -> None:
        if addr % 4:
            raise MemoryFault(f"unaligned main-memory access at {addr:#x}")
        if not 0 <= addr < self.config.size:
            raise MemoryFault(
                f"main-memory access at {addr:#x} outside 0..{self.config.size:#x}"
            )

    def read_word(self, addr: int) -> int:
        self._check(addr)
        return self._words.get(addr >> 2, 0)

    def write_word(self, addr: int, value: int) -> None:
        self._check(addr)
        self._words[addr >> 2] = value

    def load_block(self, addr: int, values: "list[int] | tuple[int, ...]") -> None:
        """Bulk functional store (used to place global objects)."""
        for i, v in enumerate(values):
            self.write_word(addr + 4 * i, v)

    def read_block(self, addr: int, words: int) -> list[int]:
        """Bulk functional read (used to extract results)."""
        return [self.read_word(addr + 4 * i) for i in range(words)]

    # -- bus endpoint -------------------------------------------------------------

    node_id = 0

    def deliver(self, msg: Message) -> None:
        self._queue.append((msg, self.now))
        self.wake()

    # -- component ------------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        accepted = 0
        while self._queue and accepted < self.config.ports:
            msg, arrival = self._queue.popleft()
            accepted += 1
            self.stats.port_wait_cycles += now - arrival
            if self._m_wait is not None:
                self._m_requests.add(now, 1)
                if now > arrival:
                    self._m_wait.add(now, now - arrival)
            self._serve(msg, now)
        if self._g_queue is not None and accepted:
            self._g_queue.observe(now, len(self._queue))
        return now + 1 if self._queue else None

    def _endpoint(self, spe_id: int):
        try:
            return self.directory[spe_id]
        except KeyError:
            raise MemoryFault(
                f"no response endpoint registered for SPE {spe_id}"
            ) from None

    def _respond(self, endpoint, msg: Message, now: int) -> None:
        if self._bus is None:
            raise RuntimeError(f"{self.name}: bus not attached")
        ready = now + self.config.latency + self._stall()
        self.engine.call_at(ready, Callback("memory.send", self, (endpoint, msg)))

    def _send(self, endpoint, msg: Message) -> None:
        """Put a finished response on the bus (deferred by ``call_at``)."""
        self._bus.send(self, endpoint, msg)

    def _serve(self, msg: Message, now: int) -> None:
        if isinstance(msg, ReadRequest):
            self.stats.read_requests += 1
            self.stats.bytes_read += 4
            value = self.read_word(msg.addr)
            self._respond(
                self._endpoint(msg.requester_spe),
                ReadResponse(reply_key=msg.reply_key, value=value),
                now,
            )
        elif isinstance(msg, WriteRequest):
            self.stats.write_requests += 1
            self.stats.bytes_written += 4
            self.write_word(msg.addr, msg.value)
            # Credit the SPU's store queue as soon as the port accepts the
            # write (posted stores never wait for the array access itself).
            endpoint = self._endpoint(msg.requester_spe)
            ack = WriteAck(requester_spe=msg.requester_spe)
            extra = self._stall()
            if extra:
                self.engine.call_at(
                    now + extra, Callback("memory.send", self, (endpoint, ack))
                )
            else:
                self._bus.send(self, endpoint, ack)
        elif isinstance(msg, DmaReadRequest):
            self.stats.read_requests += 1
            self.stats.bytes_read += msg.size
            words = tuple(
                self.read_word(msg.addr + 4 * i) for i in range(msg.size // 4)
            )
            self._respond(
                self._endpoint(msg.requester_spe),
                DmaReadResponse(
                    command_id=msg.command_id,
                    chunk_index=msg.chunk_index,
                    ls_addr=0,  # filled in by the MFC from its command table
                    words=words,
                ),
                now,
            )
        elif isinstance(msg, CacheFillRequest):
            self.stats.read_requests += 1
            self.stats.bytes_read += msg.size
            words = tuple(
                self.read_word(msg.addr + 4 * i) for i in range(msg.size // 4)
            )
            self._respond(
                self._endpoint(msg.requester_spe),
                CacheFillResponse(
                    addr=msg.addr, words=words,
                    requester_spe=msg.requester_spe,
                ),
                now,
            )
        elif isinstance(msg, DmaGatherRequest):
            # Strided gather: each element is a separate array access, so
            # the response is delayed by one extra port-cycle per element
            # beyond the first (on top of the access latency).
            self.stats.read_requests += 1
            self.stats.bytes_read += 4 * msg.count
            words = tuple(
                self.read_word(msg.addr + i * msg.stride)
                for i in range(msg.count)
            )
            response = DmaReadResponse(
                command_id=msg.command_id,
                chunk_index=msg.chunk_index,
                ls_addr=0,
                words=words,
            )
            endpoint = self._endpoint(msg.requester_spe)
            ready = now + self.config.latency + (msg.count - 1) + self._stall()
            self.engine.call_at(
                ready, Callback("memory.send", self, (endpoint, response))
            )
        elif isinstance(msg, DmaWriteRequest):
            self.stats.write_requests += 1
            self.stats.bytes_written += 4 * len(msg.words)
            for i, value in enumerate(msg.words):
                self.write_word(msg.addr + 4 * i, value)
            # Write-backs are acknowledged so the MFC can retire the tag.
            self._respond(
                self._endpoint(msg.requester_spe),
                DmaReadResponse(
                    command_id=msg.command_id,
                    chunk_index=msg.chunk_index,
                    ls_addr=-1,
                    words=(),
                ),
                now,
            )
        else:
            raise MemoryFault(f"main memory cannot serve {type(msg).__name__}")

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a port (metrics sampling)."""
        return len(self._queue)

    def describe_state(self) -> str:
        return f"{len(self._queue)} queued requests"


register_callback("memory.send", MainMemory._send)
