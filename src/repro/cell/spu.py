"""SPU pipeline model.

An in-order, dual-issue core (paper Sec. 4.1: "an in-order SIMD processor
which can issue two instructions in each cycle (one memory and one
calculation).  It does not contain any branch prediction ... does not
have any caches").  The reproduction keeps the issue rules and drops the
SIMD width (the paper's effects concern memory decoupling, not data
parallelism).

Timing model
------------
* Up to one MEM-slot and one ALU-slot instruction issue per cycle, in
  program order; nothing issues past a taken branch, and taken branches
  pay a fixed penalty (no branch prediction).
* A register scoreboard delays any instruction whose source or
  destination register has a pending writer; the stall is attributed to
  the unit that owns the pending write (Local Store or pipeline), which
  is what produces the Figure 5 "LS stalls" bucket.
* Scalar READs **block the pipeline** until the response returns from
  main memory over the bus — the paper's "Memory Stalls" bucket ("these
  accesses cause stalls in the pipeline").  WRITEs are posted through a
  bounded store queue credited back by the memory controller.
* FALLOC and LSALLOC block until the scheduler responds ("LSE stalls");
  STOREs and STOP are posted but stall when the LSE's bounded request
  queue is full — the paper's bitcnt LSE-stall effect.
* DMAGET occupies the pipeline for the MFC command latency — the paper's
  "Prefetching" overhead ("the SPU must spend some time in order to
  program the DMA unit").
* **Every cycle spent inside a PF code block is attributed to the
  Prefetching bucket**, whatever the SPU is doing, matching the paper's
  definition of prefetching overhead.

At the end of a PF block with outstanding DMA tags the thread yields the
pipeline (Wait-for-DMA state) and the SPU immediately dispatches another
ready thread — the non-blocking execution this paper is about.
"""

from __future__ import annotations

import enum
import typing

from repro.cell.mfc import DmaKind
from repro.core.messages import ReadRequest, WriteRequest
from repro.core.thread import ThreadInstance, ThreadState
from repro.isa.decoded import (
    D_AREG,
    D_AVAL,
    D_BREG,
    D_BVAL,
    D_FF,
    D_FN,
    D_HAZ,
    D_KIND,
    D_LAT,
    D_MEM,
    D_NAME,
    D_RD,
    D_TARGET,
    K_ALU,
    K_BRANCH,
)
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import Op, Slot, Unit
from repro.isa.program import BlockKind
from repro.isa.semantics import alu_result, branch_taken
from repro.sim.component import Component
from repro.sim.config import MachineConfig, SPUConfig
from repro.sim.fastpath import fast_enabled
from repro.sim.stats import Bucket, SpuStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.local_store import LocalStore
    from repro.core.lse import LSE

__all__ = ["SPU", "SpuFault"]


class SpuFault(RuntimeError):
    """A program did something architecturally illegal on the SPU."""


class _State(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    TIMED = "timed"  # stalled until a known cycle (scoreboard, DMAGET, ...)
    EXTERNAL = "external"  # stalled until another component unblocks us


#: Stall bucket per owning unit.
_UNIT_BUCKET = {
    Unit.LS: Bucket.LS_STALL,
    Unit.MAIN: Bucket.MEM_STALL,
    Unit.LSE: Bucket.LSE_STALL,
    Unit.MFC: Bucket.PREFETCH,
    Unit.PIPE: Bucket.WORKING,
}


class SPU(Component):
    """One synergistic processing unit."""

    priority = 60  # tick after buses/memories/schedulers each cycle

    #: ``_dec`` holds the running thread's DecodedProgram — rows carry
    #: per-opcode closures, so it is rebuilt on restore, not serialized.
    _SNAPSHOT_EXCLUDE = frozenset({"_dec"})

    def __init__(
        self,
        name: str,
        spe_id: int,
        config: SPUConfig,
        machine_config: MachineConfig,
        local_store: "LocalStore",
        stats: SpuStats | None = None,
    ) -> None:
        super().__init__(name)
        self.spe_id = spe_id
        self.config = config
        self.machine_config = machine_config
        self.ls = local_store
        self.stats = stats if stats is not None else SpuStats()
        # Wiring.
        self._lse: "LSE | None" = None
        self._mfc = None
        self._bus = None
        self._memory = None
        self._endpoint = None
        self._cache = None
        self._sanitizer = None  # optional Sanitizer
        #: True only when a data-corrupting fault plan is active: every
        #: frame LOAD then consults the LSE's poison table.  Plain bool
        #: so the fault-free issue loop pays one predictable branch.
        self._check_loads = False
        # Architectural state.
        self.thread: ThreadInstance | None = None
        self.pc = 0
        self.regs = [0] * config.num_registers
        self._scoreboard: dict[int, tuple[int, Unit]] = {}
        self._pf_end = 0
        # Fast path (see docs/PERFORMANCE.md).  The flag is latched at
        # construction so one machine never mixes paths mid-run; _dec is
        # the running thread's DecodedProgram (None = use the slow path).
        self._fast = fast_enabled()
        self._dec = None
        self._regs_zero = [0] * config.num_registers
        # Pipeline control.
        self._state = _State.IDLE
        self._stall_start = 0
        self._stall_bucket = Bucket.WORKING
        self._timed_until = 0
        #: Deferred action retried when the timed wait expires; a plain
        #: data tuple (see _run_timed_action) so pipeline state stays
        #: checkpoint-serializable.
        self._timed_action: tuple | None = None
        #: Destination register of the blocking external op (READ/FALLOC/
        #: LSALLOC); None for waits that produce no value.
        self._ext_rd: int | None = None
        self._ext_kind: str | None = None  # "value" | "lse_queue" | "write_credit"
        self._outstanding_writes = 0
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_buckets: dict[str, object] | None = None
        self._m_issue = None
        self._m_issue_cycles = None
        self._m_dual_issue = None

    def _bind_metrics(self, hub) -> None:
        prefix = f"spu{self.spe_id}"
        self._m_buckets = {
            bucket: hub.bucket_series(f"{prefix}.{bucket}")
            for bucket in Bucket.ALL
            if bucket != Bucket.IDLE
        }
        self._m_issue = hub.bucket_series(f"{prefix}.issue")
        self._m_issue_cycles = hub.counter(f"{prefix}.issue_cycles")
        self._m_dual_issue = hub.counter(f"{prefix}.dual_issue_cycles")

    def wire(self, lse, mfc, bus, memory, endpoint, cache=None,
             injector=None, sanitizer=None) -> None:
        self._lse = lse
        self._mfc = mfc
        self._bus = bus
        self._memory = memory
        self._endpoint = endpoint
        self._cache = cache
        self._sanitizer = sanitizer
        self._check_loads = (
            injector is not None and injector.plan.data_active
        )

    # -- accounting ---------------------------------------------------------

    def _bucket(self, default: str) -> str:
        """Route to the Prefetching bucket while executing a PF block."""
        if (
            self.thread is not None
            and self._pf_end
            and self.pc < self._pf_end
            and not self.thread.prefetch_done
        ):
            return Bucket.PREFETCH
        return default

    def _account(self, bucket: str, cycles: int) -> None:
        if cycles > 0:
            self.stats.breakdown.add(bucket, cycles)
            if self.thread is not None:
                self.stats.template_cycles[self.thread.program.name] += cycles
            if self._m_buckets is not None:
                self._m_buckets[bucket].add(self.now, cycles)

    # -- external notifications ----------------------------------------------

    def notify_ready(self) -> None:
        """LSE: a thread became ready (wakes an idle SPU)."""
        if self._state is _State.IDLE:
            self.wake()

    def unblock(self, value: int) -> None:
        """LSE / memory: the value a blocked instruction was waiting for."""
        if self._state is not _State.EXTERNAL or self._ext_kind != "value":
            raise SpuFault(f"{self.name}: spurious unblock({value})")
        self._finish_external()
        rd, self._ext_rd = self._ext_rd, None
        assert rd is not None
        self.regs[rd] = value
        self.wake()

    def lse_queue_drained(self) -> None:
        """LSE: space opened in its SPU-side request queue."""
        if self._state is _State.EXTERNAL and self._ext_kind == "lse_queue":
            self._finish_external()
            self._ext_rd = None
            self.wake()

    def write_ack(self) -> None:
        """Memory: a posted WRITE was accepted (store-queue credit)."""
        if self._outstanding_writes <= 0:
            raise SpuFault(f"{self.name}: write credit underflow")
        self._outstanding_writes -= 1
        if self._state is _State.EXTERNAL and self._ext_kind == "write_credit":
            self._finish_external()
            self._ext_rd = None
            self.wake()

    def read_response(self, value: int) -> None:
        """Memory: the datum for the blocking READ in flight."""
        self.unblock(value)

    def dma_waiter_resume(self) -> None:
        """LSE: the DMAWAIT tag group completed."""
        if self._state is not _State.EXTERNAL or self._ext_kind != "dmawait":
            raise SpuFault(f"{self.name}: spurious DMA-wait resume")
        self._finish_external()
        self._ext_rd = None
        self.wake()

    def _finish_external(self) -> None:
        # The resume tick runs next cycle; charge the stall through it.
        self._account(self._stall_bucket, self.now + 1 - self._stall_start)
        self._state = _State.RUNNING
        self._ext_kind = None

    # -- blocking helpers ----------------------------------------------------------

    def _block_timed(
        self, until: int, bucket: str, action: tuple | None = None
    ) -> None:
        self._state = _State.TIMED
        self._stall_start = self.now
        self._stall_bucket = bucket
        self._timed_until = until
        self._timed_action = action
        self.wake(until)

    def _block_external(self, kind: str, bucket: str, rd: int | None = None) -> None:
        self._state = _State.EXTERNAL
        self._stall_start = self.now
        self._stall_bucket = bucket
        self._ext_kind = kind
        self._ext_rd = rd

    def _run_timed_action(self, action: tuple) -> bool:
        """Execute a deferred timed action; True when it succeeded.

        Actions are plain tuples so a TIMED pipeline snapshots cleanly;
        the only kind today programs the MFC after the channel-interface
        latency has been paid (retried every cycle while the queue is
        full — the retry accrues in the same stall bucket).
        """
        if action[0] == "dma_enqueue":
            _, kind, ls_addr, mem_addr, size, tag, tid, stride = action
            return self._mfc.enqueue(
                kind, ls_addr, mem_addr, size, tag, tid, stride=stride
            )
        raise SpuFault(f"{self.name}: unknown timed action {action[0]!r}")

    # -- component --------------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        if self._state is _State.EXTERNAL:
            return None  # spurious wake; resumes via unblock paths
        if self._state is _State.TIMED:
            if now < self._timed_until:
                return self._timed_until
            self._account(self._stall_bucket, now - self._stall_start)
            self._stall_start = now
            action = self._timed_action
            if action is not None:
                if not self._run_timed_action(action):
                    # Retry next cycle, continuing to accrue the bucket.
                    self._timed_until = now + 1
                    return now + 1
                self._timed_action = None
            self._state = _State.RUNNING
        if self._state is _State.IDLE:
            if not self._try_dispatch(now):
                return None
            if self._state is not _State.RUNNING:
                return None  # dispatch entered a timed wait
        if self._dec is not None:
            return self._issue_cycle_fast(now)
        return self._issue_cycle(now)

    # -- dispatch -----------------------------------------------------------------------

    def _try_dispatch(self, now: int) -> bool:
        assert self._lse is not None
        thread = self._lse.pop_ready()
        while thread is not None and self._lse.offload_prefetch(thread):
            thread = self._lse.pop_ready()
        if thread is None:
            self._state = _State.IDLE
            return False
        self.thread = thread
        self.regs[:] = self._regs_zero  # reuse the register file allocation
        self._scoreboard.clear()
        self._dec = thread.program.decoded if self._fast else None
        ranges = thread.program.block_ranges
        self._pf_end = ranges[BlockKind.PF][1] if BlockKind.PF in ranges else 0
        if thread.program.has_prefetch and not thread.prefetch_done:
            self.pc = 0
            thread.transition(ThreadState.PROGRAM_DMA)
        else:
            self.pc = self._pf_end
            thread.transition(ThreadState.EXECUTING)
        if self._sanitizer is not None:
            self._sanitizer.thread_started(self.name, thread.tid)
        self.stats.threads_executed += 1
        self._trace(
            "dispatch", tid=thread.tid, template=thread.program.name,
            resumed=thread.prefetch_done,
            pf=thread.program.has_prefetch and not thread.prefetch_done,
        )
        # Frame-pointer setup / context switch cost.
        lat = self._lse.config.request_latency
        self._block_timed(now + lat, Bucket.LSE_STALL)
        return True

    def _detach(self) -> None:
        self.thread = None
        self.pc = 0
        self._pf_end = 0
        self._scoreboard.clear()
        self._dec = None

    # -- hazards ----------------------------------------------------------------------------

    def _pending(self, reg: int, now: int) -> tuple[int, Unit] | None:
        entry = self._scoreboard.get(reg)
        if entry is None:
            return None
        if entry[0] <= now:
            del self._scoreboard[reg]
            return None
        return entry

    def _hazard(self, instr: Instruction, now: int) -> tuple[int, Unit] | None:
        """Worst pending (ready_cycle, unit) among the registers used."""
        worst: tuple[int, Unit] | None = None
        regs: list[int] = []
        if isinstance(instr.ra, Reg):
            regs.append(instr.ra.index)
        if isinstance(instr.rb, Reg):
            regs.append(instr.rb.index)
        if instr.rd is not None:
            regs.append(instr.rd)  # WAW
        for r in regs:
            entry = self._pending(r, now)
            if entry is not None and (worst is None or entry[0] > worst[0]):
                worst = entry
        return worst

    def _val(self, operand: "Reg | Imm | None") -> int:
        if isinstance(operand, Reg):
            return self.regs[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SpuFault(f"{self.name}: missing operand")

    # -- the issue loop ------------------------------------------------------------------------

    def _issue_cycle(self, now: int) -> int | None:
        thread = self.thread
        assert thread is not None
        program = thread.program
        flat = program.flat
        issued = 0
        mem_used = False
        alu_used = False
        penalty = 0
        # Capture the bucket at cycle start: instructions issued this cycle
        # belong to the block the PC sat in when the cycle began.
        cycle_bucket = self._bucket(Bucket.WORKING)
        while issued < self.config.issue_width:
            # PF-block boundary: yield the pipeline if DMA is outstanding.
            if (
                self._pf_end
                and self.pc == self._pf_end
                and not thread.prefetch_done
            ):
                if issued:
                    break  # handle the boundary at the top of the next cycle
                assert self._lse is not None
                if self._lse.thread_wait_dma(thread):
                    self._trace("yield-dma", tid=thread.tid,
                                tags=sorted(thread.pending_tags))
                    self._detach()
                    if not self._try_dispatch(now):
                        return None
                    return now + 1 if self._state is _State.RUNNING else None
                thread.transition(ThreadState.EXECUTING)
            if self.pc >= len(flat):
                raise SpuFault(
                    f"{self.name}: fell off the end of {program.name!r} "
                    f"(missing STOP?)"
                )
            instr = flat[self.pc]
            spec = instr.spec
            if spec.slot is Slot.MEM and mem_used:
                break
            if spec.slot is Slot.ALU and alu_used:
                break
            hz = self._hazard(instr, now)
            if hz is not None:
                if issued == 0:
                    ready, unit = hz
                    self._block_timed(ready, self._bucket(_UNIT_BUCKET[unit]))
                    return self._timed_until
                break
            outcome = self._dispatch_op(instr, now, issued)
            if outcome == "blocked":
                # The op entered a timed/external wait (only legal as the
                # first issue of the cycle).
                assert issued == 0
                return self._timed_until if self._state is _State.TIMED else None
            if outcome == "retry":
                break  # structural conflict; retry next cycle
            if outcome == "squashed":
                # Data-fault recovery pulled the thread off the pipeline;
                # the aborted LOAD is not counted as issued.
                self._detach()
                self._charge_issue(issued, now, penalty, cycle_bucket)
                if not self._try_dispatch(now):
                    return None
                if self._state is _State.TIMED:
                    self._stall_start = now + 1
                    return self._timed_until
                return now + 1
            # Issued.
            issued += 1
            self.stats.mix.record(instr.op.value)
            if spec.slot is Slot.MEM:
                mem_used = True
            else:
                alu_used = True
            if outcome == "stop":
                self._detach()
                self._charge_issue(issued, now, penalty, cycle_bucket)
                if not self._try_dispatch(now):
                    return None
                if self._state is _State.TIMED:
                    # The issue cycle is already charged; the dispatch
                    # stall starts next cycle.
                    self._stall_start = now + 1
                    return self._timed_until
                return now + 1
            if outcome == "branch-taken":
                penalty = self.config.branch_taken_penalty
                break
            if outcome == "yielded" or self._state is not _State.RUNNING:
                # A blocking op issued and is now waiting (READ, FALLOC...).
                self._charge_issue(issued, now, penalty, cycle_bucket)
                # The issue cycle is charged above; the stall interval
                # starts at the next cycle.
                self._stall_start = now + 1
                return self._timed_until if self._state is _State.TIMED else None
        self._charge_issue(issued, now, penalty, cycle_bucket)
        return now + 1 + penalty

    def _charge_issue(
        self, issued: int, now: int, penalty: int, bucket: str
    ) -> None:
        if issued:
            self.stats.issue_cycles += 1
            if issued >= 2:
                self.stats.dual_issue_cycles += 1
            if self._m_issue is not None:
                self._m_issue.add(now, 1)
                self._m_issue_cycles.add()
                if issued >= 2:
                    self._m_dual_issue.add()
            self._account(bucket, 1 + penalty)
        elif penalty:
            self._account(bucket, penalty)

    # -- the decoded issue loop (fast path) ----------------------------------------------------

    def _issue_cycle_fast(self, now: int) -> int | None:
        """Decoded mirror of :meth:`_issue_cycle`.

        Cycle-for-cycle identical to the slow path — the equivalence
        suite (``tests/integration/test_fastpath.py``) enforces it — but
        reads pre-resolved :mod:`repro.isa.decoded` rows instead of
        re-deriving specs/operands per visit, and inlines ALU/branch
        execution.  Structural ops (LS, memory, scheduler, DMA) still run
        through the single-source :meth:`_dispatch_op`.

        When the next instructions form a straight-line ALU run and no
        per-cycle observer is attached, defers to :meth:`_fast_forward`
        to retire the whole run in one tick.
        """
        thread = self.thread
        assert thread is not None
        rows = self._dec.rows
        pc = self.pc
        pf_end = self._pf_end
        # Fast-forward only outside PF blocks (no Prefetching-bucket
        # routing, no PF-boundary yield inside a window) and only when
        # nothing needs per-cycle visibility: no tracer, no metrics hub.
        # The sanitizer and fault injector never observe the SPU, and
        # nothing external can interrupt a RUNNING pipeline, so window
        # side effects at tick-time are indistinguishable from the
        # per-cycle schedule.
        if (
            (not pf_end or pc > pf_end or thread.prefetch_done)
            and pc < len(rows)
            and rows[pc][D_FF] >= 2
            and self._m_buckets is None
            and self._tracer is None
        ):
            return self._fast_forward(now, rows)
        program = thread.program
        flat = program.flat
        issued = 0
        mem_used = False
        alu_used = False
        penalty = 0
        cycle_bucket = self._bucket(Bucket.WORKING)
        regs = self.regs
        sb = self._scoreboard
        stats = self.stats
        while issued < self.config.issue_width:
            # PF-block boundary: yield the pipeline if DMA is outstanding.
            if pf_end and self.pc == pf_end and not thread.prefetch_done:
                if issued:
                    break  # handle the boundary at the top of the next cycle
                assert self._lse is not None
                if self._lse.thread_wait_dma(thread):
                    self._trace("yield-dma", tid=thread.tid,
                                tags=sorted(thread.pending_tags))
                    self._detach()
                    if not self._try_dispatch(now):
                        return None
                    return now + 1 if self._state is _State.RUNNING else None
                thread.transition(ThreadState.EXECUTING)
            if self.pc >= len(flat):
                raise SpuFault(
                    f"{self.name}: fell off the end of {program.name!r} "
                    f"(missing STOP?)"
                )
            row = rows[self.pc]
            if row[D_MEM]:
                if mem_used:
                    break
            elif alu_used:
                break
            # Scoreboard scan: same register order and same expired-entry
            # deletions as _hazard/_pending, so residual state matches.
            worst_ready = 0
            worst_unit = None
            for r in row[D_HAZ]:
                e = sb.get(r)
                if e is not None:
                    if e[0] <= now:
                        del sb[r]
                    elif e[0] > worst_ready:
                        worst_ready, worst_unit = e
            if worst_unit is not None:
                if issued == 0:
                    self._block_timed(
                        worst_ready, self._bucket(_UNIT_BUCKET[worst_unit])
                    )
                    return self._timed_until
                break
            kind = row[D_KIND]
            if kind == K_ALU:
                fn = row[D_FN]
                if fn is not None:  # None = NOP
                    ar = row[D_AREG]
                    a = regs[ar] if ar is not None else row[D_AVAL]
                    br = row[D_BREG]
                    b = regs[br] if br is not None else row[D_BVAL]
                    rd = row[D_RD]
                    regs[rd] = fn(a, b)
                    lat = row[D_LAT]
                    if lat > 1:
                        sb[rd] = (now + lat, Unit.PIPE)
                self.pc += 1
                issued += 1
                stats.mix.record(row[D_NAME])
                alu_used = True
                continue
            if kind == K_BRANCH:
                ar = row[D_AREG]
                a = regs[ar] if ar is not None else row[D_AVAL]
                br = row[D_BREG]
                b = regs[br] if br is not None else row[D_BVAL]
                issued += 1
                stats.mix.record(row[D_NAME])
                alu_used = True
                if row[D_FN](a, b):
                    self.pc = row[D_TARGET]
                    penalty = self.config.branch_taken_penalty
                    break
                self.pc += 1
                continue
            # Structural ops: the single-source slow-path implementation.
            instr = flat[self.pc]
            outcome = self._dispatch_op(instr, now, issued)
            if outcome == "blocked":
                assert issued == 0
                return self._timed_until if self._state is _State.TIMED else None
            if outcome == "retry":
                break  # structural conflict; retry next cycle
            if outcome == "squashed":
                # Data-fault recovery pulled the thread off the pipeline;
                # the aborted LOAD is not counted as issued.
                self._detach()
                self._charge_issue(issued, now, penalty, cycle_bucket)
                if not self._try_dispatch(now):
                    return None
                if self._state is _State.TIMED:
                    self._stall_start = now + 1
                    return self._timed_until
                return now + 1
            issued += 1
            stats.mix.record(row[D_NAME])
            mem_used = True  # every delegated op occupies the MEM slot
            if outcome == "stop":
                self._detach()
                self._charge_issue(issued, now, penalty, cycle_bucket)
                if not self._try_dispatch(now):
                    return None
                if self._state is _State.TIMED:
                    # The issue cycle is already charged; the dispatch
                    # stall starts next cycle.
                    self._stall_start = now + 1
                    return self._timed_until
                return now + 1
            if outcome == "yielded" or self._state is not _State.RUNNING:
                # A blocking op issued and is now waiting (READ, FALLOC...).
                self._charge_issue(issued, now, penalty, cycle_bucket)
                self._stall_start = now + 1
                return self._timed_until if self._state is _State.TIMED else None
        self._charge_issue(issued, now, penalty, cycle_bucket)
        return now + 1 + penalty

    def _fast_forward(self, now: int, rows) -> int:
        """Retire a straight-line ALU run in one tick.

        Engaged by :meth:`_issue_cycle_fast` when ``rows[pc][D_FF] >= 2``,
        the pc is past any PF block and nothing observes per-cycle state.
        Replays the per-cycle loop exactly: one ALU issue per cycle (the
        successor rule in :func:`~repro.isa.decoded.decode_program`
        guarantees the slow path could never dual-issue inside the run)
        and scoreboard stalls that advance ``now`` to the writer's ready
        cycle, with the same stats credited in bulk.  The event engine
        never visits the interior cycles.  Returns the next tick cycle.
        """
        stats = self.stats
        regs = self.regs
        sb = self._scoreboard
        by_opcode = stats.mix.by_opcode
        pc = self.pc
        end = pc + rows[pc][D_FF]
        issue_cycles = 0
        while pc < end:
            row = rows[pc]
            worst_ready = 0
            worst_unit = None
            for r in row[D_HAZ]:
                e = sb.get(r)
                if e is not None:
                    if e[0] <= now:
                        del sb[r]
                    elif e[0] > worst_ready:
                        worst_ready, worst_unit = e
            if worst_unit is not None:
                # The slow path would block TIMED until worst_ready and
                # charge the same bucket for the same interval.
                self._account(_UNIT_BUCKET[worst_unit], worst_ready - now)
                now = worst_ready
                continue
            fn = row[D_FN]
            if fn is not None:  # None = NOP
                ar = row[D_AREG]
                a = regs[ar] if ar is not None else row[D_AVAL]
                br = row[D_BREG]
                b = regs[br] if br is not None else row[D_BVAL]
                rd = row[D_RD]
                regs[rd] = fn(a, b)
                lat = row[D_LAT]
                if lat > 1:
                    sb[rd] = (now + lat, Unit.PIPE)
            by_opcode[row[D_NAME]] += 1
            pc += 1
            issue_cycles += 1
            now += 1
        self.pc = pc
        stats.issue_cycles += issue_cycles
        self._account(Bucket.WORKING, issue_cycles)
        return now

    # -- per-opcode execution -------------------------------------------------------------------

    def _dispatch_op(self, instr: Instruction, now: int, issued: int) -> str:
        """Execute ``instr`` if possible.

        Returns "issued", "stop", "branch-taken", "yielded" (issued but the
        pipeline is now waiting), "retry" (structural conflict, nothing
        done) or "blocked" (entered a stall; only when nothing was issued
        this cycle).
        """
        op = instr.op
        thread = self.thread
        assert thread is not None
        assert self._lse is not None

        # -- pure ALU -------------------------------------------------------
        if op in _ALU_OPS:
            if op is Op.NOP:
                self.pc += 1
                return "issued"
            a = self._val(instr.ra) if instr.ra is not None else 0
            b = (
                self._val(instr.rb)
                if instr.rb is not None
                else (instr.imm if instr.imm is not None else 0)
            )
            value = alu_result(op, a, b)
            self.regs[instr.rd] = value
            lat = instr.spec.result_latency or 1
            if lat > 1:
                self._scoreboard[instr.rd] = (now + lat, Unit.PIPE)
            self.pc += 1
            return "issued"

        # -- branches ----------------------------------------------------------
        if instr.spec.is_branch:
            a = self._val(instr.ra) if instr.ra is not None else 0
            b = self._val(instr.rb) if instr.rb is not None else 0
            if branch_taken(op, a, b):
                assert isinstance(instr.target, int)
                self.pc = instr.target
                return "branch-taken"
            self.pc += 1
            return "issued"

        # -- local store (frame + prefetched data) -------------------------------
        if op in (Op.LOAD, Op.STOREF, Op.LLOAD, Op.LSTORE):
            if not self.ls.reserve_port(now):
                if issued == 0:
                    wake = self.ls.next_free_port_cycle(now)
                    self._block_timed(wake, self._bucket(Bucket.LS_STALL))
                    return "blocked"
                return "retry"
            lat = self.machine_config.local_store.latency
            if op is Op.LOAD:
                assert thread.frame_addr is not None
                addr = thread.frame_addr + 4 * instr.imm
                if self._check_loads and self._lse.check_poisoned_load(
                    thread, addr
                ):
                    # The word was poisoned by a corrupted producer
                    # store; the LSE scrubbed it and squashed the thread
                    # for re-execution before anything was consumed.
                    return "squashed"
                value = self.ls.read_word(addr)
                self.regs[instr.rd] = value
                self._scoreboard[instr.rd] = (now + lat, Unit.LS)
            elif op is Op.STOREF:
                assert thread.frame_addr is not None
                self.ls.write_word(
                    thread.frame_addr + 4 * instr.imm, self._val(instr.ra)
                )
            elif op is Op.LLOAD:
                addr = self._val(instr.ra) + instr.imm
                self.regs[instr.rd] = self.ls.read_word(addr)
                self._scoreboard[instr.rd] = (now + lat, Unit.LS)
            else:  # LSTORE
                addr = self._val(instr.ra) + instr.imm
                self.ls.write_word(addr, self._val(instr.rb))
            self.pc += 1
            return "issued"

        # -- main memory -----------------------------------------------------------
        if op is Op.READ:
            addr = self._val(instr.ra) + instr.imm
            rd = instr.rd
            self.pc += 1
            self._block_external(
                "value", self._bucket(Bucket.MEM_STALL), rd=rd
            )
            if self._cache is not None:
                # The cache answers hits after its own latency and fills
                # whole lines on misses; either way it unblocks us.
                self._cache.read(addr, on_value=self.unblock)
            else:
                self._bus.send(
                    self._endpoint,
                    self._memory,
                    ReadRequest(addr=addr, reply_key=0,
                                requester_spe=self.spe_id),
                )
            return "yielded"
        if op is Op.WRITE:
            if self._outstanding_writes >= self.config.store_queue_size:
                if issued == 0:
                    self._block_external(
                        "write_credit", self._bucket(Bucket.MEM_STALL)
                    )
                    return "blocked"
                return "retry"
            addr = self._val(instr.ra) + instr.imm
            value = self._val(instr.rb)
            thread.side_effects = True
            self._outstanding_writes += 1
            if self._cache is not None:
                self._cache.write(addr, value)  # write-through: keep fresh
            self._bus.send(
                self._endpoint,
                self._memory,
                WriteRequest(
                    addr=addr, value=value,
                    requester_spe=self.spe_id,
                ),
            )
            self.pc += 1
            return "issued"

        # -- scheduler ops ------------------------------------------------------------
        if op in (Op.STORE, Op.FFREE, Op.STOP, Op.FALLOC, Op.LSALLOC):
            if not self._lse.spu_can_accept():
                if issued == 0:
                    self._block_external(
                        "lse_queue", self._bucket(Bucket.LSE_STALL)
                    )
                    return "blocked"
                return "retry"
            if op is Op.STORE:
                thread.side_effects = True
                self._lse.spu_store(
                    self._val(instr.ra), instr.imm, self._val(instr.rb)
                )
                self.pc += 1
                return "issued"
            if op is Op.FFREE:
                thread.side_effects = True
                self._lse.spu_ffree(self._val(instr.ra))
                self.pc += 1
                return "issued"
            if op is Op.STOP:
                self._trace("thread-stop", tid=thread.tid)
                self._lse.spu_stop(thread)
                self.pc += 1
                return "stop"
            if op is Op.FALLOC:
                thread.side_effects = True
                self._lse.spu_falloc(instr.imm, self._val(instr.ra))
                self.pc += 1
                self._block_external(
                    "value", self._bucket(Bucket.LSE_STALL), rd=instr.rd
                )
                return "yielded"
            # LSALLOC
            self._lse.spu_lsalloc(thread, instr.imm)
            self.pc += 1
            self._block_external(
                "value", self._bucket(Bucket.LSE_STALL), rd=instr.rd
            )
            return "yielded"

        # -- DMA ----------------------------------------------------------------------
        if op in (Op.DMAGET, Op.DMAGETS, Op.DMAPUT):
            kind = DmaKind.PUT if op is Op.DMAPUT else DmaKind.GET
            ls_addr = self._val(instr.ra)
            mem_addr = self._val(instr.rb)
            tag, tid = instr.tag, thread.tid
            if op is Op.DMAGETS:
                size = 4 * instr.imm  # imm counts gathered words
                stride = instr.stride
            else:
                size = instr.imm
                stride = 4
            if kind is DmaKind.PUT or self.pc >= self._pf_end:
                # PUTs mutate main memory; EX-block GETs may observe it
                # mid-run.  Either way the thread is no longer replayable
                # for data-fault recovery.  PF-block GETs stay replayable.
                thread.side_effects = True
            self.pc += 1
            self._block_timed(
                now + self.machine_config.mfc.command_latency,
                self._bucket(Bucket.PREFETCH),
                action=(
                    "dma_enqueue", kind, ls_addr, mem_addr, size, tag, tid,
                    stride,
                ),
            )
            return "yielded"
        if op is Op.DMAWAIT:
            if self._lse.tag_outstanding(thread.tid, instr.tag):
                self._lse.register_dma_waiter(
                    thread.tid, instr.tag, self.dma_waiter_resume
                )
                self.pc += 1
                self._block_external(
                    "dmawait", self._bucket(Bucket.MEM_STALL)
                )
                return "yielded"
            self.pc += 1
            return "issued"

        raise SpuFault(f"{self.name}: unimplemented opcode {op.value}")

    # -- checkpointing ---------------------------------------------------------------------------

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        # Re-derive the decoded mirror for the running thread.  ``_fast``
        # came from the snapshot, so the restored process pins the same
        # fast/slow path the checkpointing process was on — bit-identity
        # does not depend on the REPRO_SIM_FAST env of the new process.
        self._dec = (
            self.thread.program.decoded
            if self._fast and self.thread is not None
            else None
        )

    # -- diagnostics -----------------------------------------------------------------------------

    def describe_state(self) -> str:
        t = self.thread.describe() if self.thread else "no thread"
        return (
            f"state={self._state.value} pc={self.pc} "
            f"outstanding_writes={self._outstanding_writes} [{t}]"
        )


_ALU_OPS = frozenset(
    {
        Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
        Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI, Op.ORI,
        Op.XORI, Op.SHLI, Op.SHRI, Op.SLT, Op.SLTI, Op.SEQ, Op.SEQI, Op.MIN,
        Op.MAX, Op.NOP,
    }
)
