"""Optional per-SPE data cache for scalar main-memory accesses.

The paper (Sec. 4.3): "our simulator does not yet include the cache
module (still under development), we performed another set of
experiments by setting all memory latencies in the system to one cycle
... Considering that prefetching introduces a little overhead, this
indicates that this prefetching scheme can almost eliminate the need for
caches."

This module *is* that missing cache, so the claim can be tested directly
instead of bounded: a set-associative, write-through/no-write-allocate
cache in front of each SPU's scalar READ/WRITE path (DMA traffic
deliberately bypasses it, as MFC transfers do on real hardware).

Coherence: there is none — exactly like the Local Store itself, the
cache relies on DTA's race-free discipline (inputs are read-only during
an activity; every output word has one writer).  Write-through keeps
main memory authoritative, so DMA and other SPEs always observe
completed scalar writes.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.messages import CacheFillRequest, CacheFillResponse
from repro.sim.component import Component
from repro.sim.config import CacheConfig
from repro.sim.engine import Callback, register_callback

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.main_memory import MainMemory

__all__ = ["DataCache", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    write_through: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Line:
    tag: int
    words: list[int]
    last_used: int = 0


class DataCache(Component):
    """One SPU's data cache (event-driven; never self-ticks)."""

    priority = 35

    def __init__(
        self,
        name: str,
        spe_id: int,
        config: CacheConfig,
        stats: CacheStats | None = None,
    ) -> None:
        super().__init__(name)
        self.spe_id = spe_id
        self.config = config
        self.stats = stats if stats is not None else CacheStats()
        self._sets: list[list[_Line]] = [
            [] for _ in range(config.num_sets)
        ]
        self._use_clock = 0
        #: addr of the line being filled -> (line_base, on_value, word_addr)
        self._pending_fill: "tuple[int, object, int] | None" = None
        self._bus = None
        self._memory: "MainMemory | None" = None
        self._endpoint = None

    def wire(self, bus, memory, endpoint) -> None:
        self._bus = bus
        self._memory = memory
        self._endpoint = endpoint

    # -- indexing -----------------------------------------------------------

    def _split(self, addr: int) -> tuple[int, int, int]:
        """(tag, set index, word offset) of a byte address."""
        line = self.config.line_bytes
        base = addr - (addr % line)
        index = (base // line) % self.config.num_sets
        tag = base // line // self.config.num_sets
        return tag, index, (addr - base) // 4

    def _find(self, addr: int) -> "_Line | None":
        tag, index, _ = self._split(addr)
        for line in self._sets[index]:
            if line.tag == tag:
                self._use_clock += 1
                line.last_used = self._use_clock
                return line
        return None

    def _install(self, addr: int, words: list[int]) -> _Line:
        tag, index, _ = self._split(addr)
        ways = self._sets[index]
        if len(ways) >= self.config.ways:
            # Evict the least-recently-used way (write-through: no dirty
            # data to write back).
            ways.sort(key=lambda l: l.last_used)
            ways.pop(0)
        self._use_clock += 1
        line = _Line(tag=tag, words=list(words), last_used=self._use_clock)
        ways.append(line)
        self.stats.fills += 1
        return line

    # -- SPU-facing API ------------------------------------------------------------

    def read(self, addr: int, on_value) -> "int | None":
        """Scalar READ through the cache.

        On a hit, returns the hit latency (caller blocks that long and
        then uses the value passed to ``on_value`` immediately).  On a
        miss, returns ``None`` — the line fetch is in flight and
        ``on_value(value)`` fires when it lands.
        """
        line = self._find(addr)
        _, _, word = self._split(addr)
        if line is not None:
            self.stats.hits += 1
            value = line.words[word]
            self.engine.call_at(
                self.now + self.config.hit_latency,
                Callback("cache.hit", self, (on_value, value)),
            )
            return self.config.hit_latency
        self.stats.misses += 1
        if self._pending_fill is not None:
            raise RuntimeError(
                f"{self.name}: second outstanding miss (the SPU blocks on "
                f"READs, so this cannot happen)"
            )
        line_base = addr - (addr % self.config.line_bytes)
        self._pending_fill = (line_base, on_value, addr)
        self._bus.send(
            self._endpoint,
            self._memory,
            CacheFillRequest(
                addr=line_base,
                size=self.config.line_bytes,
                requester_spe=self.spe_id,
            ),
        )
        return None

    def write(self, addr: int, value: int) -> None:
        """Write-through update (no allocate): keep a present line fresh."""
        line = self._find(addr)
        if line is not None:
            _, _, word = self._split(addr)
            line.words[word] = value
        self.stats.write_through += 1

    # -- bus endpoint (routed via the SPE) ----------------------------------------

    def deliver(self, msg: CacheFillResponse) -> None:
        pending = self._pending_fill
        if pending is None or pending[0] != msg.addr:
            raise RuntimeError(f"{self.name}: unexpected fill for {msg.addr:#x}")
        line_base, on_value, word_addr = pending
        self._pending_fill = None
        line = self._install(line_base, list(msg.words))
        _, _, word = self._split(word_addr)
        on_value(line.words[word])

    def tick(self, now: int) -> int | None:  # pragma: no cover - passive
        return None

    def _deliver_hit(self, on_value, value: int) -> None:
        """Complete a hit after the hit latency has elapsed."""
        on_value(value)

    def describe_state(self) -> str:
        return (
            f"{self.stats.hits} hits / {self.stats.misses} misses, "
            f"pending fill: {self._pending_fill is not None}"
        )


register_callback("cache.hit", DataCache._deliver_hit)
