"""The assembled CellDTA machine.

``Machine`` builds the full system of the paper's Sec. 4.1: N SPEs (SPU +
LS + MFC + LSE each), one DSE per node, the PPE, the element interconnect
bus and main memory, wired together and clocked by one event-skipping
engine.  ``Machine.run`` executes one loaded TLP activity to completion
and returns a :class:`RunResult` with the cycle count, the Figure 5 / 9
statistics and the Table 5 instruction mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.bus import Bus
from repro.cell.main_memory import MainMemory
from repro.cell.ppe import PPE, PPE_ID
from repro.cell.spe import SPE
from repro.core.activity import TLPActivity
from repro.core.dse import DSE
from repro.faults.injector import FaultInjector
from repro.isa.program import ThreadProgram
from repro.sim.config import MachineConfig
from repro.sim.engine import Engine
from repro.sim.sanitize import Sanitizer
from repro.sim.stats import (
    BusStats,
    FaultStats,
    MachineStats,
    MemoryStats,
    MFCStats,
    SchedulerStats,
)
from repro.sim.watchdog import ProgressWatchdog

__all__ = ["Machine", "RunResult", "run_activity"]


@dataclass
class RunResult:
    """Everything one simulated run produces."""

    activity: str
    config: MachineConfig
    cycles: int
    stats: MachineStats
    #: True when the activity used prefetching (any template had a PF block).
    prefetch: bool

    @property
    def speedup_base(self) -> float:
        return float(self.cycles)


class Machine:
    """A complete CellDTA chip plus main memory."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.bus_stats = BusStats()
        self.memory_stats = MemoryStats()
        self.fault_stats = FaultStats()
        #: Fault injector (None when the plan is inert, so the fault-free
        #: fast path stays exactly the pre-fault-injection code).
        self.injector = (
            FaultInjector(config.faults, self.fault_stats)
            if config.faults.active
            else None
        )
        #: Opt-in invariant cross-checker shared by all components.
        self.sanitizer = Sanitizer() if config.sanitize else None
        self.bus = Bus(
            "bus", config.bus, config.inter_node_latency, self.bus_stats
        )
        self.memory = MainMemory("memory", config.main_memory, self.memory_stats)
        self.engine.register(self.bus)
        self.engine.register(self.memory)
        self.memory.attach_bus(self.bus)
        self.bus.attach_faults(self.injector, self.sanitizer)
        self.memory.attach_faults(self.injector)

        # DSEs (one per node) with a forwarding ring when multi-node.
        self.dse_stats = SchedulerStats()
        self.dses: list[DSE] = []
        for node in range(config.num_nodes):
            dse = DSE(
                f"dse{node}",
                node_id=node,
                spe_ids=config.spes_of_node(node),
                config=config.dse,
                frames_per_lse=config.lse.num_frames,
                stats=self.dse_stats,
            )
            self.engine.register(dse)
            self.dses.append(dse)

        # SPEs.
        self.spes: list[SPE] = [SPE(i, config) for i in range(config.num_spes)]
        for spe in self.spes:
            spe.register(self.engine)
            spe.wire(
                bus=self.bus,
                memory=self.memory,
                dse=self.dses[spe.node_id],
                machine=self,
                injector=self.injector,
                sanitizer=self.sanitizer,
            )

        # PPE.
        self.ppe = PPE()
        self.engine.register(self.ppe)
        self.ppe.wire(bus=self.bus, dse=self.dses[0])
        self.ppe.attach_machine(self)

        # DSE wiring (ring for multi-node forwarding).
        for i, dse in enumerate(self.dses):
            nxt = self.dses[(i + 1) % len(self.dses)] if len(self.dses) > 1 else None
            dse.wire(bus=self.bus, machine=self, next_dse=nxt)

        # Response directory for the bus.
        self._directory: dict[int, object] = {PPE_ID: self.ppe}
        for spe in self.spes:
            self._directory[spe.spe_id] = spe
        self.memory.directory = self._directory

        #: Optional tracer attached to every component.
        self.tracer = None
        #: Optional metrics hub (see :mod:`repro.obs.hub`) + its sampler.
        self.hub = None
        self.sampler = None

        # Run bookkeeping.
        self._activity: TLPActivity | None = None
        self._programs: tuple[ThreadProgram, ...] = ()
        self._next_tid = 0
        self.threads_created = 0
        self.threads_completed = 0

        # Checkpoint bookkeeping (harness-side; never serialized).
        #: True when this machine was rebuilt from a checkpoint: run()
        #: must not re-start the watchdog/sampler (their next wakes are
        #: already in the restored heap).
        self._resumed = False
        #: (cycle, path) of the most recent checkpoint written.
        self._last_checkpoint: "tuple[int, str] | None" = None
        self._ckpt_dir: str | None = None
        self._ckpt_name: str | None = None

        # Progress watchdog (registered last so livelock reports list the
        # real components first).  Observation-only: it never wakes or
        # messages another component, so cycle counts are unaffected.
        self.watchdog = None
        if config.watchdog.enabled:
            self.watchdog = ProgressWatchdog(
                "watchdog",
                interval=config.watchdog.interval,
                stall_cycles=config.watchdog.stall_cycles,
                progress=self._progress_snapshot,
                done=self._done,
                detail=self._watchdog_detail,
                checkpoint=self._livelock_checkpoint,
                last_checkpoint=self._last_checkpoint_info,
            )
            self.engine.register(self.watchdog)

    def attach_tracer(self, tracer) -> None:
        """Record trace events (see :mod:`repro.sim.trace`) on all units."""
        self.tracer = tracer
        for component in self.engine.components:
            component._tracer = tracer

    def attach_hub(self, hub) -> None:
        """Bind a :class:`~repro.obs.hub.MetricsHub` to every component.

        A ``None`` or disabled hub is a strict no-op: nothing binds, no
        sampler is registered, and the run is indistinguishable from an
        unobserved one.  An enabled hub is observation-only — it never
        wakes or messages a functional component, so cycle counts are
        identical with or without it.
        """
        if hub is None or not hub.enabled:
            return
        from repro.obs.hub import MetricsSampler

        self.hub = hub
        for component in self.engine.components:
            component.bind_hub(hub)
        self.sampler = MetricsSampler(
            "metrics-sampler", hub=hub, machine=self, done=self._done
        )
        self.engine.register(self.sampler)

    # -- services used by components --------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def endpoint_of(self, spe_id: int):
        return self._directory[spe_id]

    def program_of(self, template_id: int) -> ThreadProgram:
        return self._programs[template_id]

    def next_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def thread_created(self) -> None:
        self.threads_created += 1

    def thread_completed(self) -> None:
        self.threads_completed += 1

    # -- loading & running ----------------------------------------------------------

    def load(self, activity: TLPActivity) -> None:
        """Place globals in main memory and queue the root spawns."""
        if self._activity is not None:
            raise RuntimeError("machine already has an activity loaded")
        activity.validate()
        self._activity = activity
        self._programs = activity.templates
        for obj in activity.globals:
            assert obj.addr is not None
            self.memory.load_block(obj.addr, obj.data)
        self.ppe.load(activity)

    def _done(self) -> bool:
        # Checked between every dispatched cycle: cheap int comparisons
        # first, the multi-attribute ppe.done property last.
        return (
            self.threads_created > 0
            and self.threads_completed == self.threads_created
            and self.ppe.done
        )

    def _progress_snapshot(self) -> tuple[int, int, int]:
        """Forward-progress fingerprint sampled by the watchdog.

        Any of these moving counts as progress: threads retired, threads
        created, instructions committed machine-wide.
        """
        committed = sum(spe.spu_stats.mix.total for spe in self.spes)
        return (self.threads_completed, self.threads_created, committed)

    def _watchdog_detail(self) -> str:
        dma = sum(spe.mfc.outstanding_commands for spe in self.spes)
        ready = sum(spe.lse.ready_depth for spe in self.spes)
        return (
            f"threads: {self.threads_completed}/{self.threads_created} "
            f"completed; in-flight DMA commands: {dma}; "
            f"ready-queue depth: {ready}; bus transfers pending: "
            f"{self.bus.pending}"
        )

    def run(
        self,
        max_cycles: int | None = None,
        *,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_at: "list[int] | tuple[int, ...] | None" = None,
        checkpoint_path: str | None = None,
    ) -> RunResult:
        """Run the loaded activity to completion.

        ``checkpoint_every=N`` writes a checkpoint to
        ``<checkpoint_dir>/<activity>.ckpt`` (atomically replaced — the
        file always holds the latest) at the first visited cycle past
        each N-cycle boundary; ``checkpoint_path`` overrides that default
        name with an exact file path (harness-facing: per-task paths that
        cannot collide when activities share a name).
        ``checkpoint_at=[c1, c2, ...]`` instead writes
        ``<activity>.c<ci>.ckpt`` at each requested cycle (test-facing:
        lets one reference run produce both the final result and
        mid-flight snapshots).  Neither knob costs anything when off.
        """
        if self._activity is None:
            raise RuntimeError("no activity loaded")
        on_checkpoint = None
        every = checkpoint_every
        if checkpoint_every is not None or checkpoint_at is not None:
            if checkpoint_every is not None and checkpoint_at is not None:
                raise ValueError(
                    "checkpoint_every and checkpoint_at are exclusive"
                )
            self._ckpt_dir = checkpoint_dir if checkpoint_dir else "."
            self._ckpt_name = self._activity.name
            if checkpoint_every is not None:
                path = (
                    checkpoint_path if checkpoint_path
                    else f"{self._ckpt_dir}/{self._ckpt_name}.ckpt"
                )

                def on_checkpoint(cycle: int, path=path) -> None:
                    self.save_checkpoint(path)
            else:
                targets = sorted(checkpoint_at)

                def on_checkpoint(cycle: int, targets=targets) -> None:
                    while targets and cycle >= targets[0]:
                        target = targets.pop(0)
                        self.save_checkpoint(
                            f"{self._ckpt_dir}/{self._ckpt_name}"
                            f".c{target}.ckpt"
                        )
                every = 1  # visit the hook every cycle; it filters itself
        if not self._resumed:
            # A restored machine's watchdog/sampler wakes are already in
            # the heap; re-starting them would add an extra sample tick
            # and break bit-identity of gauges and profiles.
            if self.watchdog is not None:
                self.watchdog.start()
            if self.sampler is not None:
                self.sampler.start()
        self.engine.run(
            until=self._done,
            max_cycles=max_cycles,
            checkpoint_every=every,
            on_checkpoint=on_checkpoint,
        )
        finish = self.engine.now
        # Drain in-flight posted writes / acks so results are observable.
        self.engine.drain(max_cycles=max_cycles)
        return RunResult(
            activity=self._activity.name,
            config=self.config,
            cycles=finish,
            stats=self.collect_stats(finish),
            prefetch=self._activity.has_prefetch,
        )

    # -- checkpoint/restore ----------------------------------------------------------

    def save_checkpoint(self, path: str) -> str:
        """Snapshot the whole machine to ``path`` (see repro.sim.snapshot)."""
        from repro.sim.snapshot import save_checkpoint

        save_checkpoint(self, path)
        self._last_checkpoint = (self.engine.now, path)
        return path

    @staticmethod
    def load_checkpoint(path: str) -> "Machine":
        """Rebuild a checkpointed machine, ready to continue via run()."""
        from repro.sim.snapshot import load_checkpoint

        return load_checkpoint(path)

    def _livelock_checkpoint(self) -> "str | None":
        """Watchdog hook: preserve the diagnosed state, best-effort."""
        if self._ckpt_dir is None or self._ckpt_name is None:
            return None
        from repro.sim.snapshot import CheckpointError

        path = f"{self._ckpt_dir}/{self._ckpt_name}.livelock.ckpt"
        try:
            return self.save_checkpoint(path)
        except CheckpointError:
            return None  # diagnosis must not be masked by a save failure

    def _last_checkpoint_info(self) -> "tuple[int, str] | None":
        return self._last_checkpoint

    # -- statistics -----------------------------------------------------------------

    def collect_stats(self, total_cycles: int) -> MachineStats:
        """Aggregate per-component stats; idle time is the unaccounted rest."""
        spus = []
        for spe in self.spes:
            s = spe.spu_stats
            accounted = s.breakdown.total - s.breakdown.idle
            idle = total_cycles - accounted
            # Allow tiny boundary overshoot (final unblock charges through
            # the cycle after completion) but fail loudly on real leaks.
            if idle < -8:
                raise AssertionError(
                    f"SPU {spe.spe_id} accounted {accounted} cycles of "
                    f"{total_cycles}: bucket accounting leak"
                )
            s.breakdown.idle = max(0, idle)
            s.observed_cycles = total_cycles
            spus.append(s)
        mfc = MFCStats()
        for spe in self.spes:
            mfc.commands += spe.mfc_stats.commands
            mfc.bytes_transferred += spe.mfc_stats.bytes_transferred
            mfc.queue_full_rejections += spe.mfc_stats.queue_full_rejections
        sched = SchedulerStats()
        for spe in self.spes:
            st = spe.lse_stats
            sched.fallocs += st.fallocs
            sched.ffrees += st.ffrees
            sched.remote_stores += st.remote_stores
            sched.messages += st.messages
            sched.falloc_waits += st.falloc_waits
        sched.messages += self.dse_stats.messages
        return MachineStats(
            cycles=total_cycles,
            spus=spus,
            bus=self.bus_stats,
            memory=self.memory_stats,
            mfc=mfc,
            scheduler=sched,
            faults=self.fault_stats,
        )

    # -- result extraction ----------------------------------------------------------------

    def read_global(self, name: str) -> list[int]:
        """The current main-memory contents of a global object."""
        if self._activity is None:
            raise RuntimeError("no activity loaded")
        obj = self._activity.global_obj(name)
        assert obj.addr is not None
        return self.memory.read_block(obj.addr, len(obj.data))


def run_activity(
    activity: TLPActivity,
    config: MachineConfig | None = None,
    max_cycles: int | None = None,
) -> RunResult:
    """Convenience: build a machine, load ``activity``, run it."""
    machine = Machine(config if config is not None else MachineConfig())
    machine.load(activity)
    return machine.run(max_cycles=max_cycles)
