"""Memory Flow Controller — the per-SPE DMA engine.

The PF code block programs this unit (paper Table 3: LS address, main
memory address, data size, tag ID).  Commands sit in a 16-entry queue
(Table 4); the 30-cycle command latency is paid on the SPU side while the
channel interface is written (that is precisely the paper's "prefetching
overhead ... due to the fact that SPU must spend some time in order to
program the DMA unit").

A command is split into chunks of at most ``max_transfer_size`` bytes;
the MFC issues one chunk request per cycle to main memory over the bus,
and writes returned data into the Local Store at 16 bytes per port-cycle.
When the last chunk of a command lands, the MFC notifies the LSE, which
decrements the waiting thread's DMA tag counter — the standard DTA
synchronization-counter mechanism reused for DMA completion (Sec. 3).

The reproduction keys outstanding commands by ``(thread, tag)`` rather
than a per-SPU tag register: several waiting threads may coexist on one
SPE, and hardware would partition or rename the tag space per context.
"""

from __future__ import annotations

import enum
import typing
from collections import deque
from dataclasses import dataclass, field

from repro.core.messages import (
    DmaGatherRequest,
    DmaReadRequest,
    DmaReadResponse,
    DmaWriteRequest,
)
from repro.faults.integrity import checksum_words, corrupt_words
from repro.sim.component import Component
from repro.sim.config import MFCConfig
from repro.sim.engine import Callback, register_callback
from repro.sim.stats import MFCStats

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cell.local_store import LocalStore

__all__ = ["MFC", "DmaKind", "DmaCommand"]

#: LS write bandwidth per port-cycle.
_LS_WRITE_BYTES_PER_CYCLE = 16


class DmaKind(enum.Enum):
    GET = "get"  # main memory -> LS (prefetch)
    PUT = "put"  # LS -> main memory (write-back extension)


@dataclass(slots=True)
class DmaCommand:
    """One queued DMA command."""

    command_id: int
    kind: DmaKind
    ls_addr: int
    mem_addr: int
    size: int
    tag: int
    tid: int
    chunks: list[tuple[int, int]] = field(default_factory=list)  # (offset, size)
    next_chunk: int = 0
    done_chunks: int = 0
    #: Byte distance between gathered elements (4 = contiguous transfer).
    stride: int = 4
    #: Whole-transfer re-fetches performed after checksum mismatches
    #: (bounded by the fault plan's ``data_max_refetches``).
    refetches: int = 0

    @property
    def issued_all(self) -> bool:
        return self.next_chunk >= len(self.chunks)

    @property
    def complete(self) -> bool:
        return self.done_chunks >= len(self.chunks)


class MFC(Component):
    """DMA controller of one SPE."""

    priority = 30

    def __init__(
        self,
        name: str,
        spe_id: int,
        config: MFCConfig,
        local_store: "LocalStore",
        stats: MFCStats | None = None,
    ) -> None:
        super().__init__(name)
        self.spe_id = spe_id
        self.config = config
        self.ls = local_store
        self.stats = stats if stats is not None else MFCStats()
        self._queue: deque[DmaCommand] = deque()
        self._inflight: dict[int, DmaCommand] = {}
        self._next_id = 0
        #: Bytes of not-yet-completed commands (incremental, O(1) to read).
        self._outstanding_bytes = 0
        # Hub instruments (bound in _bind_metrics; None = observability off).
        self._m_bytes = None
        self._m_commands = None
        self._g_inflight = None
        self._m_refetches = None
        # Wired by the SPE/machine.
        self._bus = None
        self._memory = None
        self._lse = None
        self._endpoint = None  # the SPE bus endpoint responses return to
        self._injector = None  # optional FaultInjector
        self._sanitizer = None  # optional Sanitizer

    def _bind_metrics(self, hub) -> None:
        prefix = f"mfc{self.spe_id}"
        self._m_bytes = hub.bucket_series(f"{prefix}.bytes")
        self._m_commands = hub.counter(f"{prefix}.commands")
        self._g_inflight = hub.gauge(f"{prefix}.inflight_bytes")
        self._m_refetches = hub.counter(f"{prefix}.refetches")

    def wire(self, bus, memory, lse, endpoint, injector=None,
             sanitizer=None) -> None:
        self._bus = bus
        self._memory = memory
        self._lse = lse
        self._endpoint = endpoint
        self._injector = injector
        self._sanitizer = sanitizer

    # -- SPU-facing API -------------------------------------------------------

    @property
    def queue_free(self) -> bool:
        return len(self._queue) + len(self._inflight) < self.config.command_queue_size

    def enqueue(
        self, kind: DmaKind, ls_addr: int, mem_addr: int, size: int, tag: int,
        tid: int, stride: int = 4,
    ) -> bool:
        """Queue a DMA command; returns False when the queue is full.

        ``size`` counts the bytes *transferred*; with ``stride > 4`` the
        command gathers ``size // 4`` words, one every ``stride`` bytes
        of main memory, into a contiguous LS buffer (DMAGETS).
        """
        if size <= 0 or size % 4:
            raise ValueError(f"DMA size must be a positive word multiple, got {size}")
        if stride < 4 or stride % 4:
            raise ValueError(f"DMA stride must be a word multiple, got {stride}")
        if stride > 4 and kind is not DmaKind.GET:
            raise ValueError("strided transfers are gather (GET) only")
        if not self.queue_free:
            self.stats.queue_full_rejections += 1
            return False
        chunks: list[tuple[int, int]] = []
        offset = 0
        # Chunks are (LS offset, bytes); a strided chunk still moves at
        # most max_transfer_size bytes of payload.
        while offset < size:
            csize = min(self.config.max_transfer_size, size - offset)
            chunks.append((offset, csize))
            offset += csize
        cmd = DmaCommand(
            command_id=self._next_id,
            kind=kind,
            ls_addr=ls_addr,
            mem_addr=mem_addr,
            size=size,
            tag=tag,
            tid=tid,
            chunks=chunks,
            stride=stride,
        )
        self._next_id += 1
        if self._sanitizer is not None and kind is DmaKind.GET:
            self._sanitizer.dma_write_begin(
                self.name, cmd.command_id, ls_addr, size
            )
        self._queue.append(cmd)
        self._trace("dma-command", direction=kind.value, bytes=size, tag=tag,
                    tid=tid, chunks=len(chunks))
        self.stats.commands += 1
        self.stats.bytes_transferred += size
        self._outstanding_bytes += size
        if self._m_bytes is not None:
            self._m_bytes.add(self.now, size)
            self._m_commands.add()
            self._g_inflight.observe(self.now, self._outstanding_bytes)
        if self._lse is not None:
            self._lse.dma_command_issued(tid, tag)
        self.wake()
        return True

    # -- component ----------------------------------------------------------------

    def tick(self, now: int) -> int | None:
        """Issue one chunk request per cycle (FIFO across commands)."""
        if not self._queue:
            return None
        cmd = self._queue[0]
        chunk_index = cmd.next_chunk
        offset, csize = cmd.chunks[chunk_index]
        if cmd.kind is DmaKind.GET and cmd.stride > 4:
            # Strided gather: this chunk covers csize//4 elements whose
            # memory addresses advance by the stride.
            first_element = offset // 4
            msg: object = DmaGatherRequest(
                addr=cmd.mem_addr + first_element * cmd.stride,
                count=csize // 4,
                stride=cmd.stride,
                command_id=cmd.command_id,
                chunk_index=chunk_index,
                requester_spe=self.spe_id,
            )
        elif cmd.kind is DmaKind.GET:
            msg = DmaReadRequest(
                addr=cmd.mem_addr + offset,
                size=csize,
                command_id=cmd.command_id,
                chunk_index=chunk_index,
                requester_spe=self.spe_id,
            )
        else:
            # PUT: read the LS data now (charging one port-cycle per 16 B
            # would be symmetric; reads are cheap and bounded, so charge
            # one port this cycle as an approximation).  Snapshotting the
            # words here also makes delayed/retried sends safe: the thread
            # may STOP and its buffers be reused before the bus request
            # actually departs.
            self.ls.reserve_port(now)
            words = tuple(self.ls.read_block(cmd.ls_addr + offset, csize // 4))
            msg = DmaWriteRequest(
                addr=cmd.mem_addr + offset,
                words=words,
                command_id=cmd.command_id,
                chunk_index=chunk_index,
                requester_spe=self.spe_id,
            )
        cmd.next_chunk += 1
        if cmd.issued_all:
            self._queue.popleft()
            self._inflight[cmd.command_id] = cmd
        self._launch_chunk(cmd, msg, attempt=0)
        return now + 1 if self._queue else None

    def _launch_chunk(self, cmd: DmaCommand, msg, attempt: int) -> None:
        """Send one chunk's bus request, subject to injected faults.

        A transient failure re-launches the chunk after exponential
        backoff; retry exhaustion degrades it to
        :meth:`_fallback_chunk`.  All of this perturbs timing only — the
        request eventually carries the exact same payload.
        """
        inj = self._injector
        if inj is None:
            self._bus.send(self._endpoint, self._memory, msg)
            return
        if inj.dma_chunk_fails(self.name):
            if attempt < inj.plan.dma_max_retries:
                wait = inj.plan.backoff_cycles(attempt)
                inj.stats.dma_retries += 1
                inj.stats.dma_backoff_cycles += wait
                self._trace("dma-chunk-retry", command=cmd.command_id,
                            attempt=attempt, wait=wait)
                self.engine.call_at(
                    self.now + wait,
                    Callback("mfc.retry", self, (cmd, msg, attempt + 1)),
                )
            else:
                inj.stats.dma_fallbacks += 1
                self._trace("dma-chunk-fallback", command=cmd.command_id)
                self._fallback_chunk(cmd, msg)
            return
        delay = inj.dma_chunk_delay(self.name)
        if delay:
            self.engine.call_at(
                self.now + delay, Callback("mfc.send", self, (msg,))
            )
        else:
            self._bus.send(self._endpoint, self._memory, msg)

    def _send_chunk(self, msg) -> None:
        """Dispatch a fault-delayed chunk request onto the bus."""
        self._bus.send(self._endpoint, self._memory, msg)

    def _fallback_chunk(self, cmd: DmaCommand, msg) -> None:
        """Retries exhausted: the DMA engine gives up on this chunk and the
        owning thread effectively performs blocking scalar accesses instead.

        Functionally the transfer still happens (same words, same
        addresses); the cost is one serialized memory round-trip per word
        — the scalar-READ price Sec. 4.3 says DMA exists to avoid.  The
        chunk then completes through the normal tag mechanism, so the
        thread never wedges.
        """
        if isinstance(msg, DmaWriteRequest):
            for i, value in enumerate(msg.words):
                self._memory.write_word(msg.addr + 4 * i, value)
            words = len(msg.words)
        else:
            offset, _csize = cmd.chunks[msg.chunk_index]
            if isinstance(msg, DmaGatherRequest):
                data = tuple(
                    self._memory.read_word(msg.addr + i * msg.stride)
                    for i in range(msg.count)
                )
            else:
                data = tuple(
                    self._memory.read_word(msg.addr + 4 * i)
                    for i in range(msg.size // 4)
                )
            self.ls.write_block(cmd.ls_addr + offset, data)
            words = len(data)
        finish = self.now + words * (self._memory.config.latency + 2)
        self._chunk_done(cmd, finish)

    # -- response path ---------------------------------------------------------------

    def deliver(self, msg: DmaReadResponse) -> None:
        """Handle a chunk arriving from main memory (routed via the SPE)."""
        cmd = self._inflight.get(msg.command_id)
        if cmd is None:
            raise RuntimeError(
                f"{self.name}: response for unknown DMA command {msg.command_id}"
            )
        if cmd.kind is DmaKind.GET:
            offset, csize = cmd.chunks[msg.chunk_index]
            words = msg.words
            inj = self._injector
            if inj is not None and inj.plan.data_active:
                fault = inj.dma_chunk_corruption(self.name)
                if fault is not None:
                    self._trace("data-fault", what=fault[0],
                                command=cmd.command_id, tag=cmd.tag)
                    words = corrupt_words(words, fault)
            if words is not None:
                self.ls.write_block(cmd.ls_addr + offset, words)
            # Charge LS write ports: 16 B per port-cycle, starting at the
            # first cycle with a free port.  Charged identically whether
            # or not the payload was corrupted — data faults damage
            # bytes, not the port schedule.
            cycles = max(1, -(-csize // _LS_WRITE_BYTES_PER_CYCLE))
            when = self.now
            for _ in range(cycles):
                when = self.ls.next_free_port_cycle(when)
                self.ls.reserve_port(when)
                when += 1
            finish = when
        else:
            finish = self.now + 1
        self._chunk_done(cmd, finish)

    def _chunk_done(self, cmd: DmaCommand, finish: int) -> None:
        """Retire one chunk; on the last, notify the LSE at ``finish``."""
        cmd.done_chunks += 1
        if cmd.complete:
            inj = self._injector
            if (inj is not None and inj.plan.data_active
                    and cmd.kind is DmaKind.GET
                    and not self._verify_transfer(cmd)):
                self._transfer_corrupt(cmd)
                return
            del self._inflight[cmd.command_id]
            self._outstanding_bytes -= cmd.size
            if self._g_inflight is not None:
                self._g_inflight.observe(self.now, self._outstanding_bytes)
            if self._sanitizer is not None and cmd.kind is DmaKind.GET:
                self._sanitizer.dma_write_end(self.name, cmd.command_id)
            self.engine.call_at(
                finish, Callback("mfc.dma_done", self, (cmd.tid, cmd.tag))
            )

    # -- transfer integrity ------------------------------------------------------

    def _verify_transfer(self, cmd: DmaCommand) -> bool:
        """Compare the landed LS region against the source checksum.

        The source checksum is computed over the transfer's main-memory
        words (stride-aware for gathers) — exactly what an MFC stamping
        a checksum onto the transfer descriptor would carry.
        """
        n = cmd.size // 4
        got = checksum_words(self.ls.read_block(cmd.ls_addr, n))
        if cmd.stride > 4:
            source = (
                self._memory.read_word(cmd.mem_addr + i * cmd.stride)
                for i in range(n)
            )
        else:
            source = self._memory.read_block(cmd.mem_addr, n)
        return got == checksum_words(source)

    def _transfer_corrupt(self, cmd: DmaCommand) -> None:
        """A completed GET failed verification: re-fetch the whole
        transfer, or escalate to the LSE once the budget is exhausted.

        The re-fetch is synchronous bookkeeping (reset chunk cursors,
        back into the command queue) — no new callback kinds, so a
        checkpoint taken mid re-fetch restores for free.  The command
        stays accounted in ``_outstanding_bytes`` and keeps its
        sanitizer LS-range registration: it is still the same in-flight
        transfer, just trying again.
        """
        inj = self._injector
        inj.stats.dma_verify_failures += 1
        if cmd.refetches < inj.plan.data_max_refetches:
            cmd.refetches += 1
            inj.stats.dma_refetches += 1
            if self._m_refetches is not None:
                self._m_refetches.add()
            self._trace("dma-reverify", command=cmd.command_id, tag=cmd.tag,
                        tid=cmd.tid, attempt=cmd.refetches)
            del self._inflight[cmd.command_id]
            cmd.next_chunk = 0
            cmd.done_chunks = 0
            self._queue.append(cmd)
            self.wake()
            return
        # Budget exhausted: cancel the command and hand the decision to
        # the LSE, which squashes the owning thread for re-execution or
        # raises a structured DataCorruptionError.
        del self._inflight[cmd.command_id]
        self._outstanding_bytes -= cmd.size
        if self._g_inflight is not None:
            self._g_inflight.observe(self.now, self._outstanding_bytes)
        if self._sanitizer is not None:
            self._sanitizer.dma_write_end(self.name, cmd.command_id)
        self._lse.transfer_corrupt(cmd)

    def _notify_done(self, tid: int, tag: int) -> None:
        """Tell the LSE a command's last chunk has fully landed."""
        self._lse.dma_command_done(tid, tag)

    @property
    def outstanding_commands(self) -> int:
        """Commands queued or in flight (watchdog diagnostics)."""
        return len(self._queue) + len(self._inflight)

    @property
    def outstanding_bytes(self) -> int:
        """Bytes of queued or in-flight commands (metrics sampling)."""
        return self._outstanding_bytes

    def describe_state(self) -> str:
        return (
            f"{len(self._queue)} queued, {len(self._inflight)} in-flight commands"
        )


register_callback("mfc.retry", MFC._launch_chunk)
register_callback("mfc.send", MFC._send_chunk)
register_callback("mfc.dma_done", MFC._notify_done)
