"""Per-SPE Local Store and the prefetch-buffer allocator.

The Local Store (Table 2: 156 kB, 6-cycle latency, 3 ports) holds, per
the paper's Sec. 4.1, "the code of DTA threads" (not modeled as storage),
"the frames that are needed locally" (the frame region) and "the data
that was prefetched from the main memory" (the prefetch region).

The LS itself is passive storage with a per-cycle port budget; timing is
charged by its users (the SPU scoreboard and the MFC write engine) via
:meth:`LocalStore.reserve_port`.  :class:`LSAllocator` is the first-fit
free-list allocator behind the LSALLOC instruction; buffers are owned by
a thread and released in bulk when the thread STOPs.
"""

from __future__ import annotations

import bisect

from repro.sim.config import LocalStoreConfig

__all__ = ["LocalStore", "LSAllocator", "LocalStoreFault", "AllocationError"]


class LocalStoreFault(RuntimeError):
    """An out-of-range or misaligned Local Store access."""


class AllocationError(RuntimeError):
    """The prefetch region cannot satisfy an allocation (caller may retry)."""


class LocalStore:
    """Word-addressable scratchpad with a per-cycle port budget."""

    def __init__(self, config: LocalStoreConfig) -> None:
        self.config = config
        self._words = [0] * (config.size // 4)
        #: cycle -> ports already reserved that cycle (pruned lazily).
        self._ports_used: dict[int, int] = {}

    # -- storage ------------------------------------------------------------

    def _index(self, addr: int) -> int:
        if addr % 4:
            raise LocalStoreFault(f"unaligned LS access at {addr:#x}")
        if not 0 <= addr < self.config.size:
            raise LocalStoreFault(
                f"LS access at {addr:#x} outside 0..{self.config.size:#x}"
            )
        return addr >> 2

    def read_word(self, addr: int) -> int:
        return self._words[self._index(addr)]

    def write_word(self, addr: int, value: int) -> None:
        self._words[self._index(addr)] = value

    def write_block(self, addr: int, values: "tuple[int, ...] | list[int]") -> None:
        start = self._index(addr)
        end = start + len(values)
        if end > len(self._words):
            raise LocalStoreFault(
                f"LS block write of {len(values)} words at {addr:#x} overflows"
            )
        self._words[start:end] = list(values)

    def read_block(self, addr: int, words: int) -> list[int]:
        start = self._index(addr)
        return self._words[start : start + words]

    # -- ports ---------------------------------------------------------------

    def reserve_port(self, cycle: int) -> bool:
        """Try to reserve one of the LS ports for ``cycle``.

        Returns False when all ports are taken that cycle (the caller
        stalls and retries).  Old reservations are pruned opportunistically.
        """
        used = self._ports_used.get(cycle, 0)
        if used >= self.config.ports:
            return False
        self._ports_used[cycle] = used + 1
        if len(self._ports_used) > 4096:
            self._ports_used = {
                c: n for c, n in self._ports_used.items() if c >= cycle
            }
        return True

    def next_free_port_cycle(self, cycle: int) -> int:
        """First cycle >= ``cycle`` with a free port."""
        c = cycle
        while self._ports_used.get(c, 0) >= self.config.ports:
            c += 1
        return c


class LSAllocator:
    """First-fit allocator over the LS prefetch region.

    Keeps a sorted list of free extents ``(addr, size)``.  Allocations are
    rounded up to 16-byte lines (DMA-friendly); frees coalesce neighbours.
    """

    GRANULE = 16

    def __init__(self, base: int, size: int) -> None:
        if base % 4 or size % 4:
            raise ValueError("allocator region must be word-aligned")
        if size <= 0:
            raise ValueError(f"allocator region must be non-empty, got {size}")
        self.base = base
        self.size = size
        self._free: list[tuple[int, int]] = [(base, size)]  # sorted by addr
        self.allocated_bytes = 0
        self.high_watermark = 0

    @staticmethod
    def _round(size: int) -> int:
        g = LSAllocator.GRANULE
        return ((size + g - 1) // g) * g

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; raises :class:`AllocationError` if full."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        need = self._round(size)
        for i, (addr, extent) in enumerate(self._free):
            if extent >= need:
                if extent == need:
                    del self._free[i]
                else:
                    self._free[i] = (addr + need, extent - need)
                self.allocated_bytes += need
                self.high_watermark = max(self.high_watermark, self.allocated_bytes)
                return addr
        raise AllocationError(
            f"cannot allocate {need} B from prefetch region "
            f"({self.size - self.allocated_bytes} B free, fragmented into "
            f"{len(self._free)} extents)"
        )

    def free(self, addr: int, size: int) -> None:
        """Release a previously-allocated extent, coalescing neighbours."""
        need = self._round(size)
        if not self.base <= addr < self.base + self.size:
            raise ValueError(f"free of {addr:#x} outside the prefetch region")
        i = bisect.bisect_left(self._free, (addr, 0))
        # Overlap checks against neighbours.
        if i < len(self._free) and self._free[i][0] < addr + need:
            raise ValueError(f"double free / overlap at {addr:#x}")
        if i > 0:
            paddr, psize = self._free[i - 1]
            if paddr + psize > addr:
                raise ValueError(f"double free / overlap at {addr:#x}")
        self._free.insert(i, (addr, need))
        self.allocated_bytes -= need
        # Coalesce with successor then predecessor.
        if i + 1 < len(self._free):
            naddr, nsize = self._free[i + 1]
            caddr, csize = self._free[i]
            if caddr + csize == naddr:
                self._free[i] = (caddr, csize + nsize)
                del self._free[i + 1]
        if i > 0:
            paddr, psize = self._free[i - 1]
            caddr, csize = self._free[i]
            if paddr + psize == caddr:
                self._free[i - 1] = (paddr, psize + csize)
                del self._free[i]

    @property
    def free_bytes(self) -> int:
        return self.size - self.allocated_bytes

    def can_alloc(self, size: int) -> bool:
        need = self._round(size)
        return any(extent >= need for _, extent in self._free)
