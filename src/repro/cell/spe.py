"""Synergistic Processing Element: SPU + Local Store + MFC + LSE.

The SPE is the unit of replication in CellDTA (paper Sec. 4.1: "each SPE
contains a SPU which executes code, Local Store and a MFC"; "we have added
... one LSE to each SPE").  It owns the shared Local Store and acts as the
single bus endpoint for everything inside it, routing incoming messages to
the right sub-unit.
"""

from __future__ import annotations

from repro.cell.bus import BusEndpoint
from repro.cell.cache import CacheStats, DataCache
from repro.cell.local_store import LocalStore
from repro.cell.mfc import MFC
from repro.cell.spu import SPU
from repro.core.lse import LSE
from repro.core.messages import (
    AllocFrame,
    CacheFillResponse,
    DmaReadResponse,
    FallocResponse,
    FFreeMsg,
    Message,
    ReadResponse,
    StoreMsg,
    WriteAck,
)
from repro.sim.config import MachineConfig
from repro.sim.stats import MFCStats, SchedulerStats, SpuStats

__all__ = ["SPE"]


class SPE(BusEndpoint):
    """One synergistic processing element."""

    def __init__(self, spe_id: int, config: MachineConfig) -> None:
        self.spe_id = spe_id
        self.node_id = config.node_of(spe_id)
        self.config = config
        self.ls = LocalStore(config.local_store)
        self.spu_stats = SpuStats()
        self.mfc_stats = MFCStats()
        self.lse_stats = SchedulerStats()
        self.spu = SPU(
            f"spu{spe_id}", spe_id, config.spu, config, self.ls, self.spu_stats
        )
        self.mfc = MFC(f"mfc{spe_id}", spe_id, config.mfc, self.ls, self.mfc_stats)
        self.lse = LSE(
            f"lse{spe_id}", spe_id, config.lse, config, self.ls, self.lse_stats
        )
        self.cache_stats = CacheStats()
        self.cache = (
            DataCache(f"cache{spe_id}", spe_id, config.cache, self.cache_stats)
            if config.cache.enabled
            else None
        )

    def register(self, engine) -> None:
        engine.register(self.spu)
        engine.register(self.mfc)
        engine.register(self.lse)
        if self.cache is not None:
            engine.register(self.cache)

    def wire(self, bus, memory, dse, machine, injector=None,
             sanitizer=None) -> None:
        self.spu.wire(lse=self.lse, mfc=self.mfc, bus=bus, memory=memory,
                      endpoint=self, cache=self.cache,
                      injector=injector, sanitizer=sanitizer)
        self.mfc.wire(bus=bus, memory=memory, lse=self.lse, endpoint=self,
                      injector=injector, sanitizer=sanitizer)
        if self.cache is not None:
            self.cache.wire(bus=bus, memory=memory, endpoint=self)
        self.lse.wire(bus=bus, dse=dse, spu=self.spu, mfc=self.mfc,
                      endpoint=self, machine=machine, sanitizer=sanitizer,
                      injector=injector)

    # -- bus endpoint routing -----------------------------------------------

    def deliver(self, msg: Message) -> None:
        if isinstance(msg, ReadResponse):
            self.spu.read_response(msg.value)
        elif isinstance(msg, WriteAck):
            self.spu.write_ack()
        elif isinstance(msg, CacheFillResponse):
            assert self.cache is not None
            self.cache.deliver(msg)
        elif isinstance(msg, DmaReadResponse):
            self.mfc.deliver(msg)
        elif isinstance(msg, (StoreMsg, AllocFrame, FallocResponse, FFreeMsg)):
            self.lse.deliver(msg)
        else:
            raise RuntimeError(
                f"SPE {self.spe_id}: cannot route {type(msg).__name__}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SPE {self.spe_id} node={self.node_id}>"
