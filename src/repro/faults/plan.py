"""The declarative fault specification.

A :class:`FaultPlan` is a frozen dataclass, so it hashes, compares and
``dataclasses.asdict``-serializes like every other piece of
:class:`~repro.sim.config.MachineConfig` — which is what makes fault
specs participate in bench cache keys for free: a faulted run can never
serve (or be served by) a fault-free cached result.

Plans are usually written on the command line::

    python -m repro run mmul --faults seed=3,dma_drop=0.05,bus_dup=0.02

``FaultPlan.parse`` accepts that comma-separated ``key=value`` syntax;
every key is a field of the dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """A malformed fault specification string or field value."""


#: Data-fault probability fields (corrupting — covered by detection and
#: recovery machinery, unlike the timing-only kinds above them).
_DATA_PROB_FIELDS = (
    "data_flip", "data_truncate", "data_ls_stale", "data_store_corrupt",
)

#: Fields holding probabilities (validated to [0, 1]).
_PROB_FIELDS = (
    "dma_delay", "dma_drop", "bus_delay", "bus_dup", "mem_stall",
) + _DATA_PROB_FIELDS


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault the injector may fire.

    All probabilities default to 0.0 — the default plan is inert and a
    machine built with it behaves bit-identically to one built before
    fault injection existed.
    """

    #: Master seed; every injection site derives its own RNG stream from
    #: ``(seed, site name)`` so per-component fault sequences do not
    #: depend on cross-component event interleaving.
    seed: int = 0

    # -- MFC DMA chunk faults ------------------------------------------------
    #: Probability a DMA chunk's bus request is issued late.
    dma_delay: float = 0.0
    #: Extra cycles for a delayed chunk issue.
    dma_delay_cycles: int = 40
    #: Probability a DMA chunk attempt transiently fails (MFC retries).
    dma_drop: float = 0.0
    #: Bounded retries per chunk before the failure is permanent.
    dma_max_retries: int = 4
    #: Base backoff in cycles; attempt ``k`` waits ``dma_backoff << k``.
    dma_backoff: int = 8

    # -- bus faults ----------------------------------------------------------
    #: Probability a transfer is delivered late.
    bus_delay: float = 0.0
    #: Extra cycles for a delayed transfer.
    bus_delay_cycles: int = 16
    #: Probability a transfer is delivered twice (idempotently absorbed).
    bus_dup: float = 0.0

    # -- main memory faults --------------------------------------------------
    #: Probability a request's service transiently stalls.
    mem_stall: float = 0.0
    #: Extra latency cycles for a stalled request.
    mem_stall_cycles: int = 60

    # -- data faults (corrupting; detected and recovered) --------------------
    #: Probability one word of a delivered GET chunk has a bit flipped.
    data_flip: float = 0.0
    #: Probability a delivered GET chunk's LS write is truncated.
    data_truncate: float = 0.0
    #: Probability a delivered GET chunk's LS write is dropped entirely,
    #: so the thread would read stale Local Store contents.
    data_ls_stale: float = 0.0
    #: Probability a frame-store message has a bit flipped on the bus.
    data_store_corrupt: float = 0.0
    #: Bounded whole-transfer re-fetches after a checksum mismatch.
    data_max_refetches: int = 3
    #: Bounded thread re-executions before corruption is unrecoverable.
    data_max_reexecs: int = 2

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        for name in ("dma_delay_cycles", "bus_delay_cycles",
                     "mem_stall_cycles"):
            if getattr(self, name) < 0:
                raise FaultPlanError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.dma_max_retries < 0:
            raise FaultPlanError(
                f"dma_max_retries must be >= 0, got {self.dma_max_retries}"
            )
        if self.dma_backoff < 1:
            raise FaultPlanError(
                f"dma_backoff must be >= 1 cycle, got {self.dma_backoff}"
            )
        for name in ("data_max_refetches", "data_max_reexecs"):
            if getattr(self, name) < 0:
                raise FaultPlanError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    @property
    def active(self) -> bool:
        """True when any fault can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _PROB_FIELDS)

    @property
    def data_active(self) -> bool:
        """True when any *corrupting* fault can fire — gates the
        detection/recovery machinery so timing-only plans keep the exact
        pre-data-fault code paths (and their bit-identical timing)."""
        return any(getattr(self, name) > 0.0 for name in _DATA_PROB_FIELDS)

    def backoff_cycles(self, attempt: int) -> int:
        """Exponential backoff before re-issuing a failed chunk."""
        return self.dma_backoff << min(attempt, self.dma_max_retries)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``key=value,key=value`` CLI syntax."""
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise FaultPlanError(
                    f"bad fault spec item {part!r}; known keys: "
                    f"{', '.join(sorted(known))}"
                )
            try:
                # Probability fields take floats, everything else ints.
                value: object = (
                    float(raw) if key in _PROB_FIELDS else int(raw, 0)
                )
            except ValueError:
                raise FaultPlanError(
                    f"bad value {raw!r} for fault key {key!r}"
                ) from None
            kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Compact one-line rendering of the non-default fields."""
        default = FaultPlan()
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return ",".join(parts) if parts else "inactive"
