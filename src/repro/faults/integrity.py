"""Transfer checksums, frame-store check codes, and the corruption error.

Data faults (:mod:`repro.faults.plan`, ``data_*`` keys) corrupt payloads,
so — unlike the timing-only fault kinds — they need a detection layer:

* :func:`checksum_words` — a Fletcher-style checksum over a word
  sequence.  The MFC computes it over the transfer's source words in
  main memory and again over the Local Store region once the last chunk
  lands; a mismatch means the transfer delivered wrong bytes (flipped,
  truncated, or stale) and triggers a bounded whole-transfer re-fetch.
* :func:`store_check` — a 7-bit Hamming-style check code over one
  machine word (signed 64-bit, the simulator's value domain), stamped
  onto ``StoreMsg.check`` when the message enters the bus.  At the LSE
  commit boundary the syndrome ``check ^ store_check(received)`` is
  zero for a clean word, names the flipped bit position for a
  single-bit error (so the corrected value can be recorded and later
  scrubbed), and is out of range for anything worse.
* :class:`DataCorruptionError` — the structured, loud failure for
  corruption that recovery cannot absorb.  It names the site, thread,
  tag and command and carries a plain-dict snapshot of the fault
  counters, so it survives the multiprocessing pickle boundary intact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "checksum_words",
    "store_check",
    "store_syndrome",
    "store_corrected",
    "flip_word_bit",
    "corrupt_words",
    "DataCorruptionError",
]

#: Machine words are signed 64-bit (repro.isa.semantics); integrity
#: codes operate on the unsigned two's-complement representation.
WORD_BITS = 64
_MASK = (1 << WORD_BITS) - 1
_MOD = 0xFFFF


def _unsigned(value: int) -> int:
    return value & _MASK


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << WORD_BITS) if value >> (WORD_BITS - 1) else value


def checksum_words(words: Iterable[int]) -> int:
    """Fletcher-style 32-bit checksum of a word sequence.

    Order-sensitive (catches swapped words, not just flipped bits) and
    cheap enough to run once per completed transfer.
    """
    s1 = 1
    s2 = 0
    for w in words:
        w = _unsigned(w)
        while w:
            s1 = (s1 + (w & 0xFFFF)) % _MOD
            s2 = (s2 + s1) % _MOD
            w >>= 16
        s2 = (s2 + s1) % _MOD
    return (s2 << 16) | s1


def store_check(value: int) -> int:
    """Check code of one word: XOR of ``(i + 1)`` over set bits.

    A single flipped bit ``i`` changes the code by exactly ``i + 1``, so
    the syndrome of a one-bit error identifies the bit to correct.
    """
    code = 0
    v = _unsigned(value)
    i = 0
    while v:
        if v & 1:
            code ^= i + 1
        v >>= 1
        i += 1
    return code


def store_syndrome(value: int, check: int) -> int:
    """Syndrome of a received value against its stamped check code.

    0 = clean; 1..64 = bit ``syndrome - 1`` flipped (correctable);
    anything else = uncorrectable multi-bit damage.
    """
    return check ^ store_check(value)


def store_corrected(value: int, syndrome: int) -> int:
    """The corrected word for a correctable (single-bit) syndrome."""
    return _signed(_unsigned(value) ^ (1 << (syndrome - 1)))


def flip_word_bit(value: int, bit: int) -> int:
    """``value`` with one bit of its unsigned representation flipped,
    re-wrapped to the machine's signed word domain."""
    return _signed(_unsigned(value) ^ (1 << bit))


def corrupt_words(words: Sequence[int], fault) -> "list[int] | None":
    """Apply one injector corruption descriptor to a chunk's words.

    Returns the (possibly shorter) word list to write, or ``None`` for a
    stale fault (no write at all).  Pure, so the MFC and tests share one
    definition of what each fault kind does to a payload.
    """
    kind, u, v = fault
    if kind == "stale":
        return None
    if kind == "truncate":
        return list(words[: len(words) // 2])
    # kind == "flip": one bit of one word.
    out = list(words)
    if out:
        idx = min(int(u * len(out)), len(out) - 1)
        bit = min(int(v * WORD_BITS), WORD_BITS - 1)
        out[idx] = flip_word_bit(out[idx], bit)
    return out


class DataCorruptionError(RuntimeError):
    """Unrecoverable data corruption: detection worked, recovery could not.

    Raised instead of ever letting a wrong word reach committed state
    silently — the run fails loudly, naming the corrupted transfer (or
    frame store), its DMA tag, thread and SPE, with a snapshot of the
    machine's fault counters attached for post-mortem triage.
    """

    def __init__(
        self,
        kind: str,
        site: str,
        spe_id: int | None = None,
        tid: int | None = None,
        tag: int | None = None,
        command_id: int | None = None,
        detail: str = "",
        fault_stats: dict | None = None,
    ) -> None:
        self.kind = kind
        self.site = site
        self.spe_id = spe_id
        self.tid = tid
        self.tag = tag
        self.command_id = command_id
        self.detail = detail
        self.fault_stats = fault_stats
        where = site if spe_id is None else f"{site} (SPE {spe_id})"
        parts = [f"unrecoverable data corruption [{kind}] at {where}"]
        if tid is not None:
            parts.append(f"thread {tid}")
        if tag is not None:
            parts.append(f"DMA tag {tag}")
        if command_id is not None:
            parts.append(f"command {command_id}")
        message = ", ".join(parts)
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (self.kind, self.site, self.spe_id, self.tid, self.tag,
             self.command_id, self.detail, self.fault_stats),
        )
