"""Seeded fault decision streams.

One :class:`FaultInjector` is shared by every component of a machine.
Each injection *site* (one MFC, the bus, main memory) draws from its own
``random.Random`` stream seeded with ``(plan.seed, site name)``:

* determinism — the simulator dispatches events in a fixed order, so a
  given ``(plan, seed)`` always produces the same fault sequence and
  therefore a bit-identical cycle count;
* stability — because streams are per-site, the faults one component
  sees do not shift when an unrelated component makes more or fewer
  draws (e.g. a config change on another SPE).

The injector owns the machine's :class:`~repro.sim.stats.FaultStats`;
components count their recovery actions (retries, fallbacks) into the
same object so one counter block tells the whole story.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan
from repro.sim.stats import FaultStats

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-site decisions."""

    def __init__(self, plan: FaultPlan, stats: FaultStats | None = None) -> None:
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self._rngs: dict[str, random.Random] = {}

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
        return rng

    def _fires(self, site: str, prob: float) -> bool:
        # Draw even for prob 0/1 so enabling one fault kind never shifts
        # another kind's stream at the same site.
        return self._rng(site).random() < prob

    # -- MFC sites -----------------------------------------------------------

    def dma_chunk_delay(self, site: str) -> int:
        """Extra cycles before a chunk's bus request is sent (0 = none)."""
        if not self._fires(site, self.plan.dma_delay):
            return 0
        self.stats.dma_delays += 1
        self.stats.dma_delay_cycles += self.plan.dma_delay_cycles
        return self.plan.dma_delay_cycles

    def dma_chunk_fails(self, site: str) -> bool:
        """Whether this chunk attempt transiently fails."""
        if not self._fires(site, self.plan.dma_drop):
            return False
        self.stats.dma_drops += 1
        return True

    # -- bus sites -----------------------------------------------------------

    def bus_transfer_delay(self) -> int:
        """Extra cycles added to one transfer's delivery (0 = none)."""
        if not self._fires("bus", self.plan.bus_delay):
            return 0
        self.stats.bus_delays += 1
        self.stats.bus_delay_cycles += self.plan.bus_delay_cycles
        return self.plan.bus_delay_cycles

    def bus_duplicate(self) -> bool:
        """Whether one transfer is delivered twice."""
        if not self._fires("bus", self.plan.bus_dup):
            return False
        self.stats.bus_duplicates += 1
        return True

    # -- main-memory sites ---------------------------------------------------

    def mem_stall(self) -> int:
        """Extra latency cycles for one request's service (0 = none)."""
        if not self._fires("memory", self.plan.mem_stall):
            return 0
        self.stats.mem_stalls += 1
        self.stats.mem_stall_cycles += self.plan.mem_stall_cycles
        return self.plan.mem_stall_cycles
