"""Seeded fault decision streams.

One :class:`FaultInjector` is shared by every component of a machine.
Each injection *site* (one MFC, the bus, main memory) draws from its own
``random.Random`` stream seeded with ``(plan.seed, site name)``:

* determinism — the simulator dispatches events in a fixed order, so a
  given ``(plan, seed)`` always produces the same fault sequence and
  therefore a bit-identical cycle count;
* stability — because streams are per-site, the faults one component
  sees do not shift when an unrelated component makes more or fewer
  draws (e.g. a config change on another SPE).

The injector owns the machine's :class:`~repro.sim.stats.FaultStats`;
components count their recovery actions (retries, fallbacks) into the
same object so one counter block tells the whole story.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan
from repro.sim.stats import FaultStats

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-site decisions."""

    def __init__(self, plan: FaultPlan, stats: FaultStats | None = None) -> None:
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self._rngs: dict[str, random.Random] = {}

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
        return rng

    def _fires(self, site: str, prob: float) -> bool:
        # Draw even for prob 0/1 so enabling one fault kind never shifts
        # another kind's stream at the same site.
        return self._rng(site).random() < prob

    # -- MFC sites -----------------------------------------------------------

    def dma_chunk_delay(self, site: str) -> int:
        """Extra cycles before a chunk's bus request is sent (0 = none)."""
        if not self._fires(site, self.plan.dma_delay):
            return 0
        self.stats.dma_delays += 1
        self.stats.dma_delay_cycles += self.plan.dma_delay_cycles
        return self.plan.dma_delay_cycles

    def dma_chunk_fails(self, site: str) -> bool:
        """Whether this chunk attempt transiently fails."""
        if not self._fires(site, self.plan.dma_drop):
            return False
        self.stats.dma_drops += 1
        return True

    # -- bus sites -----------------------------------------------------------

    def bus_transfer_delay(self) -> int:
        """Extra cycles added to one transfer's delivery (0 = none)."""
        if not self._fires("bus", self.plan.bus_delay):
            return 0
        self.stats.bus_delays += 1
        self.stats.bus_delay_cycles += self.plan.bus_delay_cycles
        return self.plan.bus_delay_cycles

    def bus_duplicate(self) -> bool:
        """Whether one transfer is delivered twice."""
        if not self._fires("bus", self.plan.bus_dup):
            return False
        self.stats.bus_duplicates += 1
        return True

    # -- data-fault sites ----------------------------------------------------
    #
    # Data faults draw from their own ``data:<site>`` streams, so adding
    # (or re-seeding) a corrupting fault kind never shifts the timing
    # kinds' sequences above — a timing-only plan stays bit-identical
    # whether or not this code exists.  Each opportunity makes a *fixed*
    # number of draws for the same reason.

    def dma_chunk_corruption(self, site: str):
        """Corruption of one delivered GET chunk, or ``None``.

        Five draws per opportunity (three fire decisions plus word/bit
        selectors), always; at most one fault kind fires per chunk, with
        precedence stale > truncate > flip.  The return value feeds
        :func:`repro.faults.integrity.corrupt_words`.
        """
        rng = self._rng(f"data:{site}")
        plan = self.plan
        stale = rng.random() < plan.data_ls_stale
        truncate = rng.random() < plan.data_truncate
        flip = rng.random() < plan.data_flip
        u = rng.random()
        v = rng.random()
        if stale:
            self.stats.data_stale_drops += 1
            return ("stale", u, v)
        if truncate:
            self.stats.data_truncations += 1
            return ("truncate", u, v)
        if flip:
            self.stats.data_flips += 1
            return ("flip", u, v)
        return None

    def store_corruption(self) -> int | None:
        """Bit to flip in one frame-store message, or ``None``.

        Two draws per opportunity (fire decision plus bit selector) on
        the ``data:bus`` stream.
        """
        rng = self._rng("data:bus")
        fires = rng.random() < self.plan.data_store_corrupt
        u = rng.random()
        if not fires:
            return None
        self.stats.data_store_corruptions += 1
        return min(int(u * 64), 63)

    # -- main-memory sites ---------------------------------------------------

    def mem_stall(self) -> int:
        """Extra latency cycles for one request's service (0 = none)."""
        if not self._fires("memory", self.plan.mem_stall):
            return 0
        self.stats.mem_stalls += 1
        self.stats.mem_stall_cycles += self.plan.mem_stall_cycles
        return self.plan.mem_stall_cycles
