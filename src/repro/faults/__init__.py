"""Deterministic fault injection for the CellDTA simulator.

The paper's claim is that DMA prefetching keeps DTA execution
*non-blocking*; this package perturbs the simulated hardware to show the
claim degrades gracefully rather than resting on a perfect machine.  A
:class:`FaultPlan` is a seeded, declarative description of the faults to
inject — extra DMA chunk delays, transient chunk failures (bounded retry
with exponential backoff), permanent chunk failures (the MFC degrades the
chunk to blocking word-granularity reads), bus transfer delays and
duplicate deliveries (absorbed by idempotent delivery), and transient
main-memory stalls.  A :class:`FaultInjector` turns the plan into
per-site deterministic decision streams.

Fault kinds come in two families with different contracts:

* **Timing faults** (``dma_delay``, ``dma_drop``, ``bus_delay``,
  ``bus_dup``, ``mem_stall``) change timing only, never architectural
  results.  Every perturbation delays or repeats work; none may drop,
  corrupt or reorder a value in a way a race-free DTA program can
  observe.
* **Data faults** (``data_flip``, ``data_truncate``, ``data_ls_stale``,
  ``data_store_corrupt``) *do* corrupt payloads — DMA chunk words,
  chunk writes into the Local Store, frame-store messages on the bus.
  Their contract is end-to-end tolerance instead of transparency: a
  detection layer (per-transfer checksums at the MFC, frame-store check
  codes at the LSE commit boundary; :mod:`repro.faults.integrity`)
  catches every corruption, and a recovery layer (bounded transfer
  re-fetch, frame-word scrubbing, thread-level squash-and-re-execute)
  restores **bit-identical outputs** for recoverable plans.  When the
  bounded recovery budget is exhausted the run fails loudly with a
  structured :class:`DataCorruptionError` — never a silently wrong
  answer.

Chaos tests (``tests/integration/test_faults.py``) assert bit-identical
outputs against fault-free runs for every paper benchmark over a seed
matrix, for both families.

See ``docs/FAULTS.md`` for the fault model, CLI flags and the
determinism guarantee.
"""

from repro.faults.injector import FaultInjector
from repro.faults.integrity import (
    DataCorruptionError,
    checksum_words,
    store_check,
    store_syndrome,
)
from repro.faults.plan import FaultPlan, FaultPlanError

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "DataCorruptionError",
    "checksum_words",
    "store_check",
    "store_syndrome",
]
