"""Deterministic fault injection for the CellDTA simulator.

The paper's claim is that DMA prefetching keeps DTA execution
*non-blocking*; this package perturbs the simulated hardware to show the
claim degrades gracefully rather than resting on a perfect machine.  A
:class:`FaultPlan` is a seeded, declarative description of the faults to
inject — extra DMA chunk delays, transient chunk failures (bounded retry
with exponential backoff), permanent chunk failures (the MFC degrades the
chunk to blocking word-granularity reads), bus transfer delays and
duplicate deliveries (absorbed by idempotent delivery), and transient
main-memory stalls.  A :class:`FaultInjector` turns the plan into
per-site deterministic decision streams.

The cardinal invariant: **faults change timing only, never architectural
results**.  Every injected perturbation delays or repeats work; none may
drop, corrupt or reorder a value in a way a race-free DTA program can
observe.  Chaos tests (``tests/integration/test_faults.py``) assert
bit-identical outputs against fault-free runs for every paper benchmark
over a seed matrix.

See ``docs/FAULTS.md`` for the fault model, CLI flags and the
determinism guarantee.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultPlanError

__all__ = ["FaultPlan", "FaultPlanError", "FaultInjector"]
