"""Parallel experiment execution with a resilience layer.

Every experiment of the paper decomposes into independent simulated runs
— one per (workload, SPE count, prefetch variant) — and the simulator is
deterministic, so fanning those runs out across worker processes changes
wall-clock time and nothing else.  This module is the single execution
funnel for the bench layer: :func:`run_many` takes a list of
:class:`RunTask` descriptions, serves what it can from a
:class:`~repro.bench.cache.ResultCache`, executes the rest (serially or
on a ``ProcessPoolExecutor``) and returns results in task order,
bit-identical to a serial run.

The worker count comes from the ``jobs`` argument, falling back to the
``REPRO_BENCH_JOBS`` environment variable and then to 1 (serial).  Pool
construction failures — missing ``/dev/shm`` semaphores in sandboxes,
fork restrictions — degrade gracefully to the serial path.

Resilience
----------
Production-scale sweeps must survive partial failure, so the pool path
layers three defenses over plain fan-out:

* **Timeouts.**  With a per-task wall-clock ``timeout`` (seconds; or
  ``REPRO_BENCH_TASK_TIMEOUT``; default off) the *parent* watches every
  outstanding future.  A task that exceeds its budget is declared hung:
  the pool's workers are terminated (a running future cannot be
  cancelled), unaffected tasks are resubmitted without losing a retry
  attempt, and the hung task is retried with backoff or failed with
  kind :data:`TIMEOUT`.  Setting a timeout forces the pool path even
  for ``jobs=1`` so enforcement is always parent-side.
* **Failure taxonomy + bounded retry.**  Failures are classified as
  :data:`TIMEOUT` (wall-clock exceeded), :data:`CRASH` (the worker
  process died — OOM kill, SIGKILL, ``BrokenProcessPool``) or
  :data:`ERROR` (the task raised a deterministic exception).  Timeouts
  and crashes are transient and retried up to ``retries`` times
  (``REPRO_BENCH_RETRIES``, default 2) with exponential backoff;
  deterministic errors fail fast and are never retried — re-running a
  deterministic simulator on the same inputs cannot change the outcome.
* **Crash recovery.**  ``BrokenProcessPool`` breaks every outstanding
  future, not just the culprit's; the pool is rebuilt and surviving
  tasks are resubmitted (each outstanding task is charged one attempt,
  which bounds the damage a poison task can do to its retry budget).

Completed tasks are checkpointed incrementally: results land in the
cache *and* an append-only :class:`~repro.bench.journal.SweepJournal`
the moment they finish, so a batch killed mid-flight — Ctrl-C, SIGTERM
(a containerized drain; handled identically, see
:class:`SweepTerminated`), OOM, a rebooted runner — can be resumed
(``resume=True``) without re-simulating settled work.  ``keep_going=True`` turns task failures from a raised
:class:`TaskFailure` into ``None`` slots in the returned list, letting
callers emit partial artifacts (see
:func:`repro.bench.export.reproduce_all`).
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.bench.cache import ResultCache, result_key
from repro.bench.journal import SweepJournal
from repro.bench.runner import run_workload
from repro.cell.machine import RunResult
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import MachineConfig
from repro.workloads.common import Workload

__all__ = [
    "RunTask",
    "TaskFailure",
    "FailureInfo",
    "BatchResult",
    "TaskTimeout",
    "WorkerCrash",
    "SweepTerminated",
    "TIMEOUT",
    "CRASH",
    "ERROR",
    "run_many",
    "run_many_detailed",
    "default_jobs",
    "default_task_timeout",
    "default_retries",
    "pair_tasks",
]

#: Failure taxonomy: the task exceeded its wall-clock budget.
TIMEOUT = "timeout"
#: Failure taxonomy: the worker process died (SIGKILL, OOM, broken pool).
CRASH = "worker-crash"
#: Failure taxonomy: the task raised a deterministic exception.
ERROR = "error"


class TaskTimeout(RuntimeError):
    """A task exceeded its per-task wall-clock timeout."""


class WorkerCrash(RuntimeError):
    """The worker process executing a task died."""


class SweepTerminated(BaseException):
    """SIGTERM arrived while a batch was executing.

    A ``BaseException`` (like ``KeyboardInterrupt``) so it can never be
    swallowed by the per-task ``except Exception`` handling: it must
    propagate out of :func:`run_many` after finished work has been
    harvested into the cache and journal.  Containerized deployments
    (``docker stop``, Kubernetes eviction, systemd shutdown) deliver
    SIGTERM, not SIGINT — both now drain loss-free and resumably.
    """


@dataclass
class FailureInfo:
    """How one task of a batch failed, after all retries."""

    kind: str  #: :data:`TIMEOUT`, :data:`CRASH` or :data:`ERROR`
    attempts: int  #: executions performed (1 = failed on first try)
    error: Exception  #: the last exception observed
    #: Fault-injection / recovery counters at the point of failure
    #: (re-fetches, re-executions, ...), when the error carried them —
    #: :class:`~repro.faults.integrity.DataCorruptionError` does.
    faults: "dict | None" = None

    def describe(self) -> str:
        return (
            f"{self.kind} after {self.attempts} attempt(s): "
            f"{type(self.error).__name__}: {self.error}"
        )


class TaskFailure(RuntimeError):
    """One or more runs of a :func:`run_many` batch failed.

    Raised after every *other* task has been given the chance to finish
    (and be cached), so one bad run does not throw away a whole sweep's
    work.  ``failures`` maps each failing task's label to a
    :class:`FailureInfo` carrying the failure taxonomy, the attempt
    count and the last exception.
    """

    def __init__(self, message: str, failures: "dict[str, FailureInfo]") -> None:
        super().__init__(message)
        self.failures = failures

    @classmethod
    def from_batch(
        cls, tasks: "Sequence[RunTask]", failures: "dict[int, FailureInfo]"
    ) -> "TaskFailure":
        labels = ", ".join(tasks[i].label for i in sorted(failures))
        first_i = min(failures)
        first = failures[first_i]
        return cls(
            f"{len(failures)} of {len(tasks)} run(s) failed: {labels} — "
            f"first failure ({tasks[first_i].label}): "
            f"{type(first.error).__name__}: {first.error}",
            {tasks[i].label: info for i, info in failures.items()},
        )


@dataclass
class BatchResult:
    """Everything :func:`run_many_detailed` knows about a finished batch."""

    results: "list[RunResult | None]"  #: per-task results; ``None`` = failed
    failures: "dict[int, FailureInfo]" = field(default_factory=dict)
    attempts: "list[int]" = field(default_factory=list)
    #: Tasks skipped because the journal (validated against the cache)
    #: or a replayed deterministic failure already settled them.
    resumed: int = 0

    @property
    def complete(self) -> bool:
        return not self.failures


def default_jobs() -> int:
    """Worker count from ``REPRO_BENCH_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return max(1, jobs)


def default_task_timeout() -> "float | None":
    """Per-task timeout from ``REPRO_BENCH_TASK_TIMEOUT`` (default off)."""
    raw = os.environ.get("REPRO_BENCH_TASK_TIMEOUT", "")
    try:
        timeout = float(raw)
    except ValueError:
        return None
    return timeout if timeout > 0 else None


def default_retries() -> int:
    """Retry budget from ``REPRO_BENCH_RETRIES`` (default 2)."""
    raw = os.environ.get("REPRO_BENCH_RETRIES", "")
    try:
        retries = int(raw)
    except ValueError:
        return 2
    return max(0, retries)


@dataclass(frozen=True)
class RunTask:
    """One simulated run, fully described and picklable.

    Mirrors the signature of :func:`~repro.bench.runner.run_workload`;
    workers rebuild nothing — the workload (activity, oracle, params)
    ships to the worker and the prefetch transformation, simulation and
    oracle check all happen there.

    The checkpoint fields describe *how* this attempt executes, not
    *what* it computes — a resumed run is bit-identical to a fresh one —
    so they are deliberately excluded from :meth:`key`: cache entries and
    journal lines written with and without checkpointing interoperate.
    """

    workload: Workload
    config: MachineConfig
    prefetch: bool
    options: PrefetchOptions | None = None
    max_cycles: int = 500_000_000
    verify: bool = True
    #: Machine-checkpoint cadence in cycles (None = off).
    checkpoint_every: int | None = None
    #: Exact checkpoint file path for this task (atomically replaced).
    checkpoint_path: str | None = None
    #: Resume from this checkpoint instead of starting fresh.
    restore_from: str | None = None

    @property
    def label(self) -> str:
        variant = "prefetch" if self.prefetch else "base"
        return f"{self.workload.name} spes={self.config.num_spes} {variant}"

    def key(self) -> str:
        return result_key(
            self.workload, self.config, self.prefetch, self.options,
            self.max_cycles,
        )

    def run(self) -> RunResult:
        return run_workload(
            self.workload,
            self.config,
            prefetch=self.prefetch,
            options=self.options,
            max_cycles=self.max_cycles,
            verify=self.verify,
            checkpoint_every=self.checkpoint_every,
            checkpoint_path=self.checkpoint_path,
            restore_from=self.restore_from,
        )


def pair_tasks(
    workload: Workload,
    config: MachineConfig,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
) -> "tuple[RunTask, RunTask]":
    """The (base, prefetch) task pair of one with/without comparison."""
    return (
        RunTask(workload, config, prefetch=False, max_cycles=max_cycles),
        RunTask(workload, config, prefetch=True, options=options,
                max_cycles=max_cycles),
    )


def _execute(task: RunTask) -> RunResult:
    """Worker entry point (module-level so it pickles)."""
    return task.run()


class _PoolUnavailable(Exception):
    """Worker processes cannot be created; fall back to the serial path."""


def _kill_pool(pool) -> None:
    """Terminate a pool's workers and reap it (best effort).

    Used when a future must be abandoned: a running future cannot be
    cancelled, so the only way to stop a hung or doomed task is to kill
    the worker processes themselves.  ``_processes`` is private executor
    state; if the layout ever changes we degrade to a plain shutdown.
    """
    try:
        processes = list(getattr(pool, "_processes", {}).values())
    except Exception:
        processes = []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


class _PoolDriver:
    """Windowed pool execution with timeouts, retry and crash recovery.

    At most ``jobs`` futures are outstanding at a time, so every
    submitted future is actually *running* and its submit time is a
    faithful start time for timeout accounting.  ``finish``/``fail``
    callbacks mutate the caller's batch state; tasks awaiting a backoff
    delay sit in a ready-time heap.
    """

    def __init__(
        self,
        tasks: "Sequence[RunTask]",
        pending: "Sequence[int]",
        jobs: int,
        timeout: "float | None",
        retries: int,
        backoff: float,
        attempts: "list[int]",
        finish: "Callable[[int, RunResult, float], None]",
        fail: "Callable[[int, Exception, str], None]",
        progress: "Callable[[str], None] | None",
        prepare: "Callable[[int], RunTask] | None" = None,
        on_retry: "Callable[[int, str, int], None] | None" = None,
    ) -> None:
        self.tasks = tasks
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.attempts = attempts
        self.finish = finish
        self.fail = fail
        self.progress = progress
        #: Called at submit time to produce the task actually executed —
        #: the checkpoint layer uses it to point retries at the snapshot
        #: the previous (killed) attempt left behind.
        self.prepare = prepare
        #: Structured retry notification ``(task index, kind, attempt)``
        #: fired when a transient failure is about to be retried — the
        #: serving layer streams it to clients as a ``retrying`` event.
        self.on_retry = on_retry
        self.queue: "deque[int]" = deque(sorted(pending))
        self.delayed: "list[tuple[float, int]]" = []  # (ready_at, i) heap

    def _log(self, msg: str) -> None:
        if self.progress is not None:
            self.progress(msg)

    def _retry_delay(self, i: int) -> float:
        # attempts[i] has already been charged for the failed attempt,
        # so the first retry waits backoff * 1, the second backoff * 2, ...
        return self.backoff * (2 ** max(0, self.attempts[i] - 1))

    def _requeue_transient(self, i: int, kind: str, detail: str) -> None:
        """Retry a timed-out/crashed task with backoff, or fail it."""
        if self.attempts[i] > self.retries:
            exc: Exception = (
                TaskTimeout(detail) if kind == TIMEOUT else WorkerCrash(detail)
            )
            self.fail(i, exc, kind)
            return
        delay = self._retry_delay(i)
        self._log(
            f"{self.tasks[i].label}: {detail}; retrying in {delay:.1f}s "
            f"(attempt {self.attempts[i] + 1} of {self.retries + 1})"
        )
        if self.on_retry is not None:
            self.on_retry(i, kind, self.attempts[i] + 1)
        heapq.heappush(self.delayed, (time.monotonic() + delay, i))

    def _drain_delayed(self, block: bool) -> None:
        """Move backoff-expired tasks to the ready queue (sleep if asked)."""
        while self.delayed:
            ready_at, _ = self.delayed[0]
            now = time.monotonic()
            if ready_at <= now:
                self.queue.append(heapq.heappop(self.delayed)[1])
            elif block and not self.queue:
                time.sleep(min(ready_at - now, self.backoff or 0.05))
            else:
                return

    def _fill(self, pool, futures: dict, workers: int) -> None:
        self._drain_delayed(block=False)
        while self.queue and len(futures) < workers:
            i = self.queue.popleft()
            self.attempts[i] += 1
            task = (
                self.tasks[i] if self.prepare is None else self.prepare(i)
            )
            futures[pool.submit(_execute, task)] = (
                i, time.monotonic(),
            )

    def _poll_interval(self, futures: dict) -> "float | None":
        """How long ``wait`` may block before a deadline needs attention."""
        now = time.monotonic()
        horizons = []
        if self.timeout is not None and futures:
            earliest = min(t0 for _, t0 in futures.values())
            horizons.append(earliest + self.timeout - now)
        if self.delayed:
            horizons.append(self.delayed[0][0] - now)
        if not horizons:
            return None
        return max(0.01, min(horizons))

    def _expire(self, futures: dict) -> bool:
        """Handle futures past their deadline; True if the pool must die."""
        if self.timeout is None:
            return False
        now = time.monotonic()
        expired = [
            (f, i) for f, (i, t0) in futures.items()
            if now - t0 >= self.timeout
        ]
        if not expired:
            return False
        for f, i in expired:
            futures.pop(f)
            self._requeue_transient(
                i, TIMEOUT,
                f"timed out after {self.timeout:.1f}s of wall clock",
            )
        # The survivors were killed along with the pool through no fault
        # of their own: refund the attempt and resubmit them first.
        for f, (i, t0) in futures.items():
            self.attempts[i] -= 1
            self.queue.appendleft(i)
        futures.clear()
        return True

    def _harvest_on_interrupt(self, futures: dict) -> None:
        """Bank already-finished futures before an interrupt propagates."""
        for f, (i, t0) in list(futures.items()):
            if f.done() and not f.cancelled():
                try:
                    result = f.result()
                except BaseException:
                    continue
                self.finish(i, result, time.monotonic() - t0)
            else:
                f.cancel()
        futures.clear()

    def run(self) -> None:
        import concurrent.futures as cf
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        while self.queue or self.delayed:
            self._drain_delayed(block=True)
            workers = max(
                1, min(self.jobs, len(self.queue) + len(self.delayed))
            )
            try:
                pool = cf.ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError, ImportError) as exc:
                raise _PoolUnavailable(exc)
            futures: "dict[object, tuple[int, float]]" = {}
            try:
                try:
                    self._fill(pool, futures, workers)
                    while futures:
                        done, _ = wait(
                            set(futures),
                            timeout=self._poll_interval(futures),
                            return_when=FIRST_COMPLETED,
                        )
                        for f in done:
                            i, t0 = futures.pop(f)
                            try:
                                result = f.result()
                            except BrokenProcessPool:
                                # Put the entry back: the crash handler
                                # below requeues everything outstanding.
                                futures[f] = (i, t0)
                                raise
                            except Exception as exc:
                                # Deterministic failure inside the task:
                                # retrying cannot change the outcome.
                                self.fail(i, exc, ERROR)
                            else:
                                self.finish(i, result, time.monotonic() - t0)
                        if self._expire(futures):
                            _kill_pool(pool)
                            pool = None
                            break
                        self._fill(pool, futures, workers)
                except BrokenProcessPool as exc:
                    self._log(
                        f"worker process died ({exc}); rebuilding the pool "
                        f"and resubmitting {len(futures)} task(s)"
                    )
                    for i, t0 in futures.values():
                        self._requeue_transient(
                            i, CRASH,
                            "worker process died (killed or crashed) while "
                            "this task was outstanding",
                        )
                    futures.clear()
                    _kill_pool(pool)
                    pool = None
            except (KeyboardInterrupt, SweepTerminated):
                self._harvest_on_interrupt(futures)
                if pool is not None:
                    try:
                        pool.shutdown(wait=False, cancel_futures=True)
                    except Exception:
                        pass
                    _kill_pool(pool)
                raise
            finally:
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)


def run_many_detailed(
    tasks: Sequence[RunTask],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
    *,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: float = 0.5,
    journal: "SweepJournal | str | None" = "auto",
    resume: bool = False,
    checkpoint_every: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    keep_checkpoints: bool = False,
    on_retry: "Callable[[int, str, int], None] | None" = None,
) -> BatchResult:
    """Execute ``tasks`` and return a :class:`BatchResult` (never raises
    :class:`TaskFailure` — failed slots are ``None`` and described in
    ``failures``).

    ``on_retry`` (if given) is called as ``on_retry(index, kind,
    attempt)`` whenever a transient failure of task ``index`` is about to
    be retried.

    When called from the main thread, SIGTERM is handled exactly like
    Ctrl-C for the duration of the batch: finished futures are harvested
    into the cache and journal, the rest are cancelled, and
    :class:`SweepTerminated` propagates — so a containerized drain
    (``docker stop``/Kubernetes SIGTERM) is loss-free and the batch is
    resumable with ``resume=True``.

    ``timeout``/``retries`` default to ``REPRO_BENCH_TASK_TIMEOUT`` /
    ``REPRO_BENCH_RETRIES``; ``journal="auto"`` checkpoints next to the
    cache (pass ``None`` to disable); ``resume=True`` replays the
    journal, skipping tasks whose results are already in the cache and
    re-reporting deterministic failures without re-simulating them.

    ``checkpoint_every=N`` layers *machine-level* checkpointing over the
    harness-level journal: each running task snapshots its machine every
    N cycles to ``<checkpoint_dir>/<task key>.ckpt`` (default directory:
    ``checkpoints/`` next to the cache), and any retry — after a
    timeout kill, a worker crash, or a whole batch killed and re-run —
    *resumes* from the latest snapshot instead of re-simulating from
    cycle 0.  Checkpoints of completed tasks are deleted (the result is
    in the cache; pass ``keep_checkpoints=True`` to keep them), and
    ``resume=True`` prunes orphaned checkpoint files whose journal
    entries completed.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    timeout = default_task_timeout() if timeout is None else (
        timeout if timeout > 0 else None
    )
    retries = default_retries() if retries is None else max(0, int(retries))
    if journal == "auto":
        journal = SweepJournal.for_cache(cache) if cache is not None else None
    if checkpoint_every is not None and checkpoint_every < 1:
        checkpoint_every = None
    if checkpoint_dir is None and checkpoint_every is not None:
        checkpoint_dir = (
            os.path.join(str(cache.root), "checkpoints")
            if cache is not None else "checkpoints"
        )

    total = len(tasks)
    tasks = list(tasks)
    batch = BatchResult(results=[None] * total, attempts=[0] * total)
    keys: "list[str | None]" = [None] * total
    ckpt_paths: "list[str | None]" = [None] * total
    done_count = 0

    def note(i: int, result: RunResult, source: str) -> None:
        nonlocal done_count
        done_count += 1
        if progress is not None:
            progress(
                f"[{done_count}/{total}] {tasks[i].label}: {result.cycles} "
                f"cycles ({source})"
            )

    def settle_checkpoint(i: int) -> "str | None":
        """Delete a settled task's machine checkpoint (its result is in
        the cache); return the path that remains on disk, if any."""
        path = ckpt_paths[i]
        if path is None or not os.path.exists(path):
            return None
        if keep_checkpoints:
            return path
        try:
            os.unlink(path)
        except OSError:
            return path
        return None

    def finish(i: int, result: RunResult, duration: float = 0.0) -> None:
        batch.results[i] = result
        if cache is not None and keys[i] is not None:
            cache.put(keys[i], result)
        ckpt = settle_checkpoint(i)
        if journal is not None and keys[i] is not None:
            journal.record_done(
                keys[i], tasks[i].label, max(1, batch.attempts[i]), duration,
                checkpoint=ckpt,
            )
        note(i, result, "ran")

    def fail(
        i: int, exc: Exception, kind: str, duration: float = 0.0,
        record: bool = True,
    ) -> None:
        fault_stats = getattr(exc, "fault_stats", None)
        if not isinstance(fault_stats, dict):
            fault_stats = None
        batch.failures[i] = FailureInfo(
            kind=kind, attempts=batch.attempts[i], error=exc,
            faults=fault_stats,
        )
        # A failed task's checkpoint is kept: it is the resume point of
        # the next attempt (and the preserved state of the diagnosis).
        ckpt = ckpt_paths[i]
        if ckpt is not None and not os.path.exists(ckpt):
            ckpt = None
        if record and journal is not None and keys[i] is not None:
            journal.record_failed(
                keys[i], tasks[i].label, kind, batch.attempts[i], duration,
                f"{type(exc).__name__}: {exc}",
                checkpoint=ckpt,
                faults=fault_stats,
            )
        if progress is not None:
            progress(
                f"{tasks[i].label}: failed ({kind}) with "
                f"{type(exc).__name__}: {exc}"
            )

    replayed = journal.replay() if (resume and journal is not None) else {}
    if resume and not keep_checkpoints:
        # Prune orphans: checkpoint files whose journal entries completed
        # serve no purpose (the results live in the cache).
        for entry in replayed.values():
            if entry.done and entry.checkpoint:
                try:
                    os.unlink(entry.checkpoint)
                except OSError:
                    pass

    pending: "list[int]" = []
    for i, task in enumerate(tasks):
        if (
            cache is not None or journal is not None
            or checkpoint_every is not None
        ):
            keys[i] = task.key()
        if checkpoint_every is not None and checkpoint_dir is not None:
            ckpt_paths[i] = os.path.join(checkpoint_dir, keys[i] + ".ckpt")
        if cache is not None and keys[i] is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                batch.results[i] = hit
                entry = replayed.get(keys[i])
                if entry is not None and entry.done:
                    batch.resumed += 1
                settle_checkpoint(i)
                note(i, hit, "cached")
                continue
        entry = replayed.get(keys[i]) if keys[i] is not None else None
        if entry is not None and entry.failed and entry.kind == ERROR:
            # A deterministic failure under identical code (the key embeds
            # the code stamp) cannot resolve itself; re-report it instead
            # of burning simulation time.  Transient kinds (timeout,
            # worker-crash) are re-run — their causes live outside the
            # simulator.
            batch.attempts[i] = entry.attempts
            batch.resumed += 1
            replay_exc = RuntimeError(
                f"replayed from journal: {entry.error or 'task failed'}"
            )
            if entry.faults is not None:
                # Re-surface the recovery counters the original failure
                # recorded, so a degraded manifest built from a resumed
                # batch still names them.
                replay_exc.fault_stats = entry.faults
            fail(i, replay_exc, ERROR, record=False)
            continue
        if ckpt_paths[i] is not None:
            tasks[i] = replace(
                task, checkpoint_every=checkpoint_every,
                checkpoint_path=ckpt_paths[i],
            )
        pending.append(i)

    if batch.resumed and progress is not None:
        progress(
            f"resume: {batch.resumed} task(s) already settled by the "
            f"journal + cache"
        )

    outstanding = set(pending)

    def finish_tracked(i: int, result: RunResult, duration: float) -> None:
        outstanding.discard(i)
        finish(i, result, duration)

    def fail_tracked(i: int, exc: Exception, kind: str) -> None:
        outstanding.discard(i)
        fail(i, exc, kind)

    def prepare(i: int) -> RunTask:
        """The task to actually submit: resume from its checkpoint when
        a previous (killed or interrupted) attempt left one behind."""
        task = tasks[i]
        path = ckpt_paths[i]
        if path is not None and os.path.exists(path):
            task = replace(task, restore_from=path)
        return task

    # Treat SIGTERM like Ctrl-C while the batch executes: harvest what
    # finished, cancel the rest, propagate.  Signal handlers can only be
    # installed from the main thread; elsewhere (e.g. a repro.serve
    # worker thread) the process-wide policy stays whatever the host
    # application installed.
    previous_term = None
    term_installed = False
    if threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum, frame):
            raise SweepTerminated("SIGTERM during run_many batch")

        try:
            previous_term = signal.signal(signal.SIGTERM, _on_sigterm)
            term_installed = True
        except (ValueError, OSError):
            term_installed = False

    try:
        use_pool = bool(pending) and (
            (jobs > 1 and len(pending) > 1) or timeout is not None
        )
        if use_pool:
            driver = _PoolDriver(
                tasks, pending, jobs, timeout, retries, backoff,
                batch.attempts, finish_tracked, fail_tracked, progress,
                prepare=prepare if checkpoint_every is not None else None,
                on_retry=on_retry,
            )
            try:
                driver.run()
            except _PoolUnavailable as exc:
                if progress is not None:
                    progress(
                        f"process pool unavailable ({exc.args[0]!r}); "
                        f"finishing {len(outstanding)} run(s) serially"
                        + ("" if timeout is None
                           else " (timeout not enforced)")
                    )

        # Serial path: first resort for jobs=1, fallback when no pool can
        # be built.  No parent/worker boundary exists here, so timeouts
        # cannot be enforced and every failure is deterministic by
        # definition.
        for i in sorted(outstanding):
            batch.attempts[i] += 1
            start = time.monotonic()
            try:
                result = _execute(
                    tasks[i] if checkpoint_every is None else prepare(i)
                )
            except (KeyboardInterrupt, SweepTerminated):
                # Everything finished so far is already cached and
                # journaled incrementally — an interrupted sweep is
                # resumable as-is.
                raise
            except Exception as exc:
                fail(i, exc, ERROR, duration=time.monotonic() - start)
            else:
                finish(i, result, time.monotonic() - start)
    finally:
        if term_installed and previous_term is not None:
            try:
                signal.signal(signal.SIGTERM, previous_term)
            except (ValueError, OSError, TypeError):
                pass

    return batch


def run_many(
    tasks: Sequence[RunTask],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
    *,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    backoff: float = 0.5,
    journal: "SweepJournal | str | None" = "auto",
    resume: bool = False,
    keep_going: bool = False,
    checkpoint_every: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    keep_checkpoints: bool = False,
    on_retry: "Callable[[int, str, int], None] | None" = None,
) -> "list[RunResult]":
    """Execute ``tasks`` and return their results in task order.

    Cached results are served first; the remainder run serially
    (``jobs <= 1``) or across ``jobs`` worker processes.  Either way the
    returned :class:`RunResult` objects are identical to what a serial
    loop over :func:`~repro.bench.runner.run_workload` would produce —
    the simulator carries no global state and every run is deterministic.

    Failures raise :class:`TaskFailure` after every other task finished;
    with ``keep_going=True`` failed slots are returned as ``None``
    instead (use :func:`run_many_detailed` for the failure taxonomy).
    See :func:`run_many_detailed` for the resilience and
    machine-checkpoint knobs.
    """
    batch = run_many_detailed(
        tasks, jobs=jobs, cache=cache, progress=progress,
        timeout=timeout, retries=retries, backoff=backoff,
        journal=journal, resume=resume,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        keep_checkpoints=keep_checkpoints, on_retry=on_retry,
    )
    if batch.failures and not keep_going:
        raise TaskFailure.from_batch(tasks, batch.failures)
    return batch.results  # type: ignore[return-value]
