"""Parallel experiment execution.

Every experiment of the paper decomposes into independent simulated runs
— one per (workload, SPE count, prefetch variant) — and the simulator is
deterministic, so fanning those runs out across worker processes changes
wall-clock time and nothing else.  This module is the single execution
funnel for the bench layer: :func:`run_many` takes a list of
:class:`RunTask` descriptions, serves what it can from a
:class:`~repro.bench.cache.ResultCache`, executes the rest (serially or
on a ``ProcessPoolExecutor``) and returns results in task order,
bit-identical to a serial run.

The worker count comes from the ``jobs`` argument, falling back to the
``REPRO_BENCH_JOBS`` environment variable and then to 1 (serial).  Pool
construction failures — missing ``/dev/shm`` semaphores in sandboxes,
fork restrictions — degrade gracefully to the serial path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.bench.cache import ResultCache, result_key
from repro.bench.runner import run_workload
from repro.cell.machine import RunResult
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import MachineConfig
from repro.workloads.common import Workload

__all__ = ["RunTask", "TaskFailure", "run_many", "default_jobs", "pair_tasks"]


class TaskFailure(RuntimeError):
    """One or more runs of a :func:`run_many` batch failed.

    Raised after every *other* task has been given the chance to finish
    (and be cached), so one bad run does not throw away a whole sweep's
    work.  ``failures`` maps each failing task's label to the exception
    it raised.
    """

    def __init__(self, message: str, failures: "dict[str, Exception]") -> None:
        super().__init__(message)
        self.failures = failures


def default_jobs() -> int:
    """Worker count from ``REPRO_BENCH_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return max(1, jobs)


@dataclass(frozen=True)
class RunTask:
    """One simulated run, fully described and picklable.

    Mirrors the signature of :func:`~repro.bench.runner.run_workload`;
    workers rebuild nothing — the workload (activity, oracle, params)
    ships to the worker and the prefetch transformation, simulation and
    oracle check all happen there.
    """

    workload: Workload
    config: MachineConfig
    prefetch: bool
    options: PrefetchOptions | None = None
    max_cycles: int = 500_000_000
    verify: bool = True

    @property
    def label(self) -> str:
        variant = "prefetch" if self.prefetch else "base"
        return f"{self.workload.name} spes={self.config.num_spes} {variant}"

    def key(self) -> str:
        return result_key(
            self.workload, self.config, self.prefetch, self.options,
            self.max_cycles,
        )


def pair_tasks(
    workload: Workload,
    config: MachineConfig,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
) -> "tuple[RunTask, RunTask]":
    """The (base, prefetch) task pair of one with/without comparison."""
    return (
        RunTask(workload, config, prefetch=False, max_cycles=max_cycles),
        RunTask(workload, config, prefetch=True, options=options,
                max_cycles=max_cycles),
    )


def _execute(task: RunTask) -> RunResult:
    """Worker entry point (module-level so it pickles)."""
    return run_workload(
        task.workload,
        task.config,
        prefetch=task.prefetch,
        options=task.options,
        max_cycles=task.max_cycles,
        verify=task.verify,
    )


def _run_pool(
    tasks: Sequence[RunTask], pending: Sequence[int], jobs: int
) -> "Iterator[tuple[int, RunResult | None, Exception | None]]":
    """Yield ``(index, result, exception)`` as pool tasks finish.

    A task that raises inside its worker yields ``(i, None, exc)`` so the
    caller can record the failure and keep consuming the others — one bad
    run must not kill the whole sweep.  :class:`BrokenProcessPool` (the
    pool machinery itself died) propagates: those tasks are re-runnable
    and the caller falls back to the serial path.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(_execute, tasks[i]): i for i in pending}
        for future in as_completed(futures):
            i = futures[future]
            try:
                yield i, future.result(), None
            except BrokenProcessPool:
                raise
            except Exception as exc:
                yield i, None, exc


def run_many(
    tasks: Sequence[RunTask],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[RunResult]:
    """Execute ``tasks`` and return their results in task order.

    Cached results are served first; the remainder run serially
    (``jobs <= 1``) or across ``jobs`` worker processes.  Either way the
    returned :class:`RunResult` objects are identical to what a serial
    loop over :func:`~repro.bench.runner.run_workload` would produce —
    the simulator carries no global state and every run is deterministic.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    total = len(tasks)
    results: list[RunResult | None] = [None] * total
    keys: list[str | None] = [None] * total
    done = 0

    def note(i: int, result: RunResult, source: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(
                f"[{done}/{total}] {tasks[i].label}: {result.cycles} "
                f"cycles ({source})"
            )

    def finish(i: int, result: RunResult) -> None:
        results[i] = result
        if cache is not None and keys[i] is not None:
            cache.put(keys[i], result)
        note(i, result, "ran")

    failures: dict[int, Exception] = {}

    def fail(i: int, exc: Exception) -> None:
        failures[i] = exc
        if progress is not None:
            progress(
                f"{tasks[i].label}: failed with {type(exc).__name__}: {exc}"
            )

    pending: set[int] = set()
    for i, task in enumerate(tasks):
        if cache is not None:
            keys[i] = task.key()
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                note(i, hit, "cached")
                continue
        pending.add(i)

    if jobs > 1 and len(pending) > 1:
        # Pool failures (sandboxed semaphores, fork limits, a worker
        # dying) leave `pending` holding exactly the unfinished tasks,
        # which then run on the serial path below.  Tasks that *raised*
        # in their worker are recorded in `failures` instead — they are
        # deterministic, so re-running them serially would fail again.
        from concurrent.futures.process import BrokenProcessPool

        try:
            for i, result, exc in _run_pool(tasks, sorted(pending), jobs):
                if exc is not None:
                    fail(i, exc)
                else:
                    finish(i, result)
                pending.discard(i)
        except (OSError, ValueError, ImportError, BrokenProcessPool) as exc:
            if progress is not None:
                progress(
                    f"process pool unavailable ({exc!r}); finishing "
                    f"{len(pending)} run(s) serially"
                )
    for i in sorted(pending):
        try:
            finish(i, _execute(tasks[i]))
        except Exception as exc:
            fail(i, exc)

    if failures:
        labels = ", ".join(tasks[i].label for i in sorted(failures))
        first_i = min(failures)
        first = failures[first_i]
        raise TaskFailure(
            f"{len(failures)} of {total} run(s) failed: {labels} — first "
            f"failure ({tasks[first_i].label}): "
            f"{type(first).__name__}: {first}",
            {tasks[i].label: exc for i, exc in failures.items()},
        )
    return results  # type: ignore[return-value]  # every slot is filled
