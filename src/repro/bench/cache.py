"""Persistent result cache for simulated runs.

A simulated run is a pure function of (workload, machine configuration,
prefetch options, simulator code), so completed :class:`RunResult`s can
be reused across processes: repeated sweeps, ``reproduce`` re-runs and
the benchmark suite's shape assertions all skip simulations that have
already been performed.

Keys are content hashes: workload name + build parameters + a digest of
the activity itself, the full :class:`~repro.sim.config.MachineConfig`,
the prefetch variant and its :class:`~repro.compiler.passes.PrefetchOptions`,
the cycle limit, and a **code-version stamp** (a hash over every ``.py``
file of the :mod:`repro` package).  Any change to the simulator, the
compiler pass or a workload generator therefore invalidates every entry
automatically — a stale cache can never masquerade as a fresh result.

Entries are pickled ``RunResult`` objects, one file per key, written
atomically.  The cache directory defaults to
``$XDG_CACHE_HOME/repro-bench`` (``~/.cache/repro-bench``) and can be
moved with ``REPRO_BENCH_CACHE=<dir>`` or disabled with
``REPRO_BENCH_CACHE=off`` (the CLI's ``--no-cache`` does the same for
one invocation).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

from repro.cell.machine import RunResult
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import MachineConfig
from repro.workloads.common import Workload

__all__ = [
    "ResultCache",
    "default_cache",
    "default_max_bytes",
    "result_key",
    "code_stamp",
    "parse_bytes",
]

#: ``REPRO_BENCH_CACHE`` values that disable the default cache.
_OFF_VALUES = {"off", "none", "0", "no", "false"}

#: Multipliers for the ``k``/``m``/``g`` suffixes of :func:`parse_bytes`.
_BYTE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(text: "str | int | None") -> "int | None":
    """Parse a byte-size spec: a plain integer or ``<n>k``/``m``/``g``.

    Returns ``None`` for ``None``/empty input and raises ``ValueError``
    on garbage — callers (CLI, env parsing) decide how loudly to fail.
    """
    if text is None:
        return None
    if isinstance(text, int):
        return text if text > 0 else None
    spec = text.strip().lower()
    if not spec:
        return None
    factor = 1
    if spec[-1] in _BYTE_SUFFIXES:
        factor = _BYTE_SUFFIXES[spec[-1]]
        spec = spec[:-1]
    try:
        value = int(float(spec) * factor)
    except ValueError:
        raise ValueError(
            f"bad byte size {text!r} (expected e.g. 1048576, 512k, 64m, 2g)"
        )
    return value if value > 0 else None


@functools.lru_cache(maxsize=1)
def code_stamp() -> str:
    """Hash of every ``.py`` source file of the :mod:`repro` package.

    Computed once per process; any source change produces a new stamp and
    thereby a disjoint key space (old entries are simply never read).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _activity_digest(workload: Workload) -> str:
    """Content digest of the baseline activity (templates + globals).

    Guards against two workloads sharing a name and parameter dict while
    differing in generated code or input data.
    """
    return hashlib.sha256(pickle.dumps(workload.activity)).hexdigest()[:16]


def result_key(
    workload: Workload,
    config: MachineConfig,
    prefetch: bool,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
) -> str:
    """Deterministic cache key for one :func:`~repro.bench.runner.run_workload`."""
    ident = {
        "code": code_stamp(),
        "workload": workload.name,
        "params": workload.params,
        "activity": _activity_digest(workload),
        "config": dataclasses.asdict(config),
        "prefetch": prefetch,
        "options": dataclasses.asdict(options) if options is not None else None,
        "max_cycles": max_cycles,
    }
    blob = json.dumps(ident, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """Directory-backed store of pickled :class:`RunResult` objects.

    I/O failures (unwritable directory, corrupt entry, unpicklable stale
    class layout) degrade to cache misses — the cache must never turn a
    runnable experiment into an error.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        max_bytes: "int | None" = None,
    ) -> None:
        self.root = Path(root)
        #: Size budget in bytes; ``None`` = unbounded.  When a store
        #: pushes the cache over budget, least-recently-*used* entries
        #: (by mtime — hits touch their file) are evicted first.
        self.max_bytes = max_bytes
        #: Entries served from disk.
        self.hits = 0
        #: Lookups that fell through to simulation.
        self.misses = 0
        #: Results written since construction.
        self.stores = 0
        #: Corrupt/stale entries quarantined to ``<key>.corrupt``.
        self.corrupt = 0
        #: Entries removed by the LRU size budget.
        self.evicted = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside so it is never re-parsed.

        A truncated write (crash mid-store before the atomic rename ever
        happened is impossible, but a torn disk or a stale class layout
        is not) would otherwise be re-read and re-rejected on every
        lookup of its key.  Renaming to ``<key>.corrupt`` keeps the bytes
        for post-mortems while taking them out of the lookup path.
        """
        path = self._path(key)
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        self.corrupt += 1

    def get(self, key: str) -> RunResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss.

        Entries that exist but cannot be unpickled (corrupt bytes, a
        stale ``RunResult`` layout from before a refactor) are
        quarantined to ``<key>.corrupt`` and counted in ``corrupt``.
        """
        try:
            with open(self._path(key), "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        except (pickle.PickleError, EOFError, AttributeError,
                ImportError, TypeError, ValueError):
            self._quarantine(key)
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        try:
            # Touch on hit: mtime is the LRU clock of the size budget, so
            # a served entry must count as recently used.
            os.utime(self._path(key))
        except OSError:
            pass
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (atomic write, best effort)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return
        self.stores += 1
        if self.max_bytes is not None:
            self.trim(self.max_bytes)

    def disk_usage(self) -> "tuple[int, int]":
        """``(entries, bytes)`` currently on disk (live entries only)."""
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return entries, total

    def trim(self, max_bytes: "int | None" = None) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        ``max_bytes`` defaults to the cache's own budget; with neither
        set this is a no-op.  Returns the number of entries evicted
        (also accumulated in ``evicted``).  Eviction is best-effort: a
        file that cannot be stat'ed or unlinked is simply skipped — the
        budget is advisory, correctness never depends on it.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None or not self.root.is_dir():
            return 0
        entries = []
        total = 0
        for path in self.root.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort()  # oldest mtime first = least recently used
        removed = 0
        for mtime, size, path in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.evicted += removed
        return removed

    def clear(self) -> int:
        """Delete every entry (including quarantined ones); returns the
        number of live entries removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.root.glob("*.corrupt"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def summary(self) -> str:
        """One-line statistics for CLI status output."""
        text = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s)"
        )
        if self.corrupt:
            text += f", {self.corrupt} corrupt entr(ies) quarantined"
        if self.evicted:
            text += f", {self.evicted} entr(ies) evicted by the size budget"
        return text

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores}, "
            f"corrupt={self.corrupt})"
        )


def default_max_bytes() -> "int | None":
    """Cache size budget from ``REPRO_BENCH_CACHE_MAX_BYTES`` (off when
    unset/unparseable; accepts ``k``/``m``/``g`` suffixes)."""
    raw = os.environ.get("REPRO_BENCH_CACHE_MAX_BYTES")
    try:
        return parse_bytes(raw)
    except ValueError:
        return None


def default_cache() -> ResultCache | None:
    """The cache selected by the environment, or ``None`` when disabled.

    ``REPRO_BENCH_CACHE`` may name a directory or one of
    ``off``/``none``/``0`` to disable caching; unset, the cache lives at
    ``$XDG_CACHE_HOME/repro-bench`` (``~/.cache/repro-bench``).
    ``REPRO_BENCH_CACHE_MAX_BYTES`` (e.g. ``512m``) bounds its size with
    LRU eviction — essential for long-lived servers (see repro.serve).
    """
    max_bytes = default_max_bytes()
    env = os.environ.get("REPRO_BENCH_CACHE")
    if env is not None:
        if env.strip().lower() in _OFF_VALUES or not env.strip():
            return None
        return ResultCache(env, max_bytes=max_bytes)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return ResultCache(base / "repro-bench", max_bytes=max_bytes)
