"""ASCII execution timelines from trace events.

Turns a :class:`~repro.sim.trace.Tracer` recording into a per-SPU Gantt
chart: one row per SPU, one character per time bucket, showing what each
pipeline was doing — the visual counterpart of the Figure 5 breakdown
and the quickest way to *see* non-blocking execution (DMA waits of one
thread overlapped by another thread's work).

The interval reconstruction itself lives in
:class:`repro.obs.intervals.IntervalSink` (shared with the Perfetto
exporter); this module keeps the rendering.

Legend: ``#`` executing, ``p`` executing a PF block, ``.`` idle,
space = before first / after last activity of that SPU.
"""

from __future__ import annotations

from repro.obs.intervals import Interval, IntervalSink
from repro.sim.trace import Tracer

__all__ = ["Timeline", "render_timeline"]


class Timeline:
    """Per-SPU busy intervals reconstructed from dispatch/yield events."""

    def __init__(self, tracer: Tracer, total_cycles: int) -> None:
        self.total_cycles = max(1, total_cycles)
        sink = IntervalSink()
        for event in tracer.events:
            if event.source.startswith("spu"):
                sink.emit(event)
        sink.finish(self.total_cycles)
        self.per_spu: dict[str, list[Interval]] = sink.pipeline

    def busy_fraction(self, spu: str) -> float:
        intervals = self.per_spu.get(spu, [])
        return sum(i.end - i.start for i in intervals) / self.total_cycles

    def render(self, width: int = 72) -> str:
        """The ASCII chart; one row per SPU, ``width`` buckets."""
        if not self.per_spu:
            return "(no SPU activity traced)"
        scale = self.total_cycles / width
        lines = [
            f"0 {'cycles':^{width - 10}} {self.total_cycles}",
        ]
        for spu in sorted(self.per_spu):
            row = [" "] * width
            for iv in self.per_spu[spu]:
                lo = min(width - 1, int(iv.start / scale))
                hi = min(width - 1, max(lo, int((iv.end - 1) / scale)))
                ch = "p" if iv.kind == "pf" else "#"
                for x in range(lo, hi + 1):
                    if row[x] == " " or (row[x] == "p" and ch == "#"):
                        row[x] = ch
            # Fill interior gaps as idle.
            first = next((i for i, c in enumerate(row) if c != " "), None)
            last = next(
                (i for i in range(width - 1, -1, -1) if row[i] != " "), None
            )
            if first is not None and last is not None:
                for x in range(first, last + 1):
                    if row[x] == " ":
                        row[x] = "."
            lines.append(f"{spu:>6} |{''.join(row)}|"
                         f" {self.busy_fraction(spu):5.1%} busy")
        lines.append("legend: # executing, p prefetch block, . idle")
        return "\n".join(lines)


def render_timeline(tracer: Tracer, total_cycles: int, width: int = 72) -> str:
    """Convenience wrapper: build and render in one call."""
    return Timeline(tracer, total_cycles).render(width)
