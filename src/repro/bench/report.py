"""Paper-style text renderings of every table and figure.

The harness does not plot; it prints the same rows/series the paper's
figures show, so a reader can compare shapes directly:

* :func:`breakdown_table`   — Figure 5 (per-benchmark time breakdown);
* :func:`execution_table`   — Figures 6a/7a/8a (execution time vs SPEs);
* :func:`scalability_table` — Figures 6b/7b/8b (speedup vs 1 SPE);
* :func:`pipeline_usage_table` — Figure 9;
* :func:`table5`            — Table 5 (dynamic instruction counts).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench.runner import PairResult, ScalingResult
from repro.cell.machine import RunResult
from repro.sim.stats import Bucket

__all__ = [
    "format_table",
    "breakdown_table",
    "execution_table",
    "scalability_table",
    "pipeline_usage_table",
    "table5",
]

_BUCKET_LABELS = {
    Bucket.WORKING: "Working",
    Bucket.IDLE: "Idle",
    Bucket.MEM_STALL: "Memory stalls",
    Bucket.LS_STALL: "LS stalls",
    Bucket.LSE_STALL: "LSE stalls",
    Bucket.PREFETCH: "Prefetching",
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append(
            "  ".join(c.rjust(w) if ri else c.ljust(w)
                      for c, w in zip(row, widths))
        )
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _pct(x: float) -> str:
    return f"{100 * x:5.1f}%"


def breakdown_table(pairs: Mapping[str, PairResult], prefetch: bool) -> str:
    """Figure 5a (no prefetching) or 5b (with prefetching)."""
    headers = ["benchmark"] + [_BUCKET_LABELS[b] for b in Bucket.ALL]
    rows = []
    for name, pair in pairs.items():
        run = pair.prefetch if prefetch else pair.base
        fr = run.stats.bucket_fractions()
        rows.append([name] + [_pct(fr[b]) for b in Bucket.ALL])
    title = "with prefetching" if prefetch else "no prefetching"
    return f"Figure 5 ({title}) — average SPU time breakdown\n" + format_table(
        headers, rows
    )


def execution_table(scaling: ScalingResult) -> str:
    """Figures 6a/7a/8a: execution time (cycles) vs SPE count."""
    headers = ["SPEs", "original (cycles)", "prefetch (cycles)", "speedup"]
    rows = []
    for n, pair in sorted(scaling.pairs.items()):
        rows.append(
            [n, pair.base.cycles, pair.prefetch.cycles, f"{pair.speedup:.2f}x"]
        )
    return (
        f"Execution time — {scaling.workload}\n" + format_table(headers, rows)
    )


def scalability_table(scaling: ScalingResult) -> str:
    """Figures 6b/7b/8b: speedup relative to the smallest machine."""
    base = scaling.scalability(prefetch=False)
    pf = scaling.scalability(prefetch=True)
    headers = ["SPEs", "original", "prefetch"]
    rows = [[n, f"{base[n]:.2f}", f"{pf[n]:.2f}"] for n in sorted(base)]
    return f"Scalability — {scaling.workload}\n" + format_table(headers, rows)


def pipeline_usage_table(pairs: Mapping[str, PairResult]) -> str:
    """Figure 9: pipeline usage with and without prefetching."""
    headers = ["benchmark", "no prefetch", "with prefetch"]
    rows = []
    for name, pair in pairs.items():
        rows.append(
            [
                name,
                _pct(pair.base.stats.average_pipeline_usage),
                _pct(pair.prefetch.stats.average_pipeline_usage),
            ]
        )
    return "Figure 9 — pipeline usage\n" + format_table(headers, rows)


def table5(runs: Mapping[str, RunResult]) -> str:
    """Table 5: dynamic instruction counts per benchmark (baseline runs)."""
    headers = ["Benchmark", "Total", "LOAD", "STORE", "READ", "WRITE"]
    rows = []
    for name, run in runs.items():
        row = run.stats.mix.table5_row()
        rows.append(
            [name, row["total"], row["LOAD"], row["STORE"], row["READ"],
             row["WRITE"]]
        )
    return "Table 5 — executed instructions\n" + format_table(headers, rows)
