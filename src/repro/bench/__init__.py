"""Experiment harness: runners, scales and paper-style reports."""

from repro.bench.cache import ResultCache, default_cache, result_key
from repro.bench.journal import JournalEntry, SweepJournal
from repro.bench.parallel import (
    BatchResult,
    FailureInfo,
    RunTask,
    TaskFailure,
    default_jobs,
    pair_tasks,
    run_many,
    run_many_detailed,
)
from repro.bench.report import (
    breakdown_table,
    execution_table,
    format_table,
    pipeline_usage_table,
    scalability_table,
    table5,
)
from repro.bench.runner import (
    PairResult,
    ScalingResult,
    run_pair,
    run_workload,
    sweep,
)
from repro.bench.scale import SCALES, builders, current_scale, spe_counts
from repro.bench.timeline import Timeline, render_timeline

__all__ = [
    "run_pair",
    "run_workload",
    "sweep",
    "PairResult",
    "ScalingResult",
    "breakdown_table",
    "execution_table",
    "scalability_table",
    "pipeline_usage_table",
    "table5",
    "format_table",
    "SCALES",
    "builders",
    "current_scale",
    "spe_counts",
    "Timeline",
    "render_timeline",
    "ResultCache",
    "default_cache",
    "result_key",
    "RunTask",
    "run_many",
    "run_many_detailed",
    "pair_tasks",
    "default_jobs",
    "TaskFailure",
    "FailureInfo",
    "BatchResult",
    "SweepJournal",
    "JournalEntry",
]
