"""Append-only sweep journal: the crash-recovery checkpoint of a batch.

Long sweeps die for reasons that have nothing to do with the simulator —
an OOM-killed worker, a Ctrl-C, a rebooted CI runner.  The
:class:`SweepJournal` makes such an interruption cheap: every task that
finishes (or permanently fails) inside :func:`repro.bench.parallel.run_many`
appends one JSON line — task key, label, status, failure taxonomy,
attempt count, duration — to a journal file living next to the result
cache.  A later run with ``resume=True`` replays the journal and skips
work that is already settled.

Two properties keep the journal honest:

* **It never fabricates results.**  A ``done`` entry is only a *claim*;
  the actual :class:`~repro.cell.machine.RunResult` must still be
  present in the :class:`~repro.bench.cache.ResultCache` under the same
  key.  A journal whose cache entries have been cleared simply causes
  re-simulation.
* **It can never go stale silently.**  Task keys embed the code stamp
  (a hash of every source file), the workload content digest and the
  full machine configuration — any change produces disjoint keys, so
  entries written by older code are never matched, merely ignored.

The file is plain JSONL appended with ``O_APPEND`` semantics and
fsync'd per record, so a batch killed mid-write loses at most the
in-flight line; :meth:`SweepJournal.replay` skips malformed or
unversioned lines instead of failing.  Journal I/O errors degrade to
no-ops — checkpointing must never turn a runnable sweep into an error.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

__all__ = ["JournalEntry", "SweepJournal"]

#: Journal line format version; replay ignores lines with any other value.
_VERSION = 1


@dataclass(frozen=True)
class JournalEntry:
    """The settled state of one task, as recorded in the journal."""

    key: str
    label: str
    status: str  #: ``"done"`` or ``"failed"``
    kind: str | None  #: failure taxonomy for ``failed`` entries
    attempts: int
    duration: float
    error: str | None
    #: Path of the machine checkpoint this task left behind (if any):
    #: written by timeout/crash retries so a later ``resume`` can prune
    #: or reuse it.  Absent in journals written by older code.
    checkpoint: str | None = None
    #: Fault-injection / recovery counters at the point of failure
    #: (re-fetches, re-executions, ...), when the final error carried
    #: them — :class:`~repro.faults.integrity.DataCorruptionError` does.
    faults: "dict | None" = None

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def failed(self) -> bool:
        return self.status == "failed"


class SweepJournal:
    """Append-only JSONL checkpoint of a sweep's settled tasks."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        #: Records appended by this process (best-effort; I/O errors skip).
        self.records = 0

    @classmethod
    def for_cache(cls, cache) -> "SweepJournal":
        """The default journal: ``journal.jsonl`` next to the result cache."""
        return cls(Path(cache.root) / "journal.jsonl")

    def record_done(
        self, key: str, label: str, attempts: int, duration: float,
        checkpoint: "str | None" = None,
    ) -> None:
        """Checkpoint a completed task (its result lives in the cache)."""
        self._append(
            {
                "v": _VERSION,
                "key": key,
                "label": label,
                "status": "done",
                "kind": None,
                "attempts": attempts,
                "duration": round(duration, 6),
                "error": None,
                "checkpoint": checkpoint,
            }
        )

    def record_failed(
        self,
        key: str,
        label: str,
        kind: str,
        attempts: int,
        duration: float,
        error: str,
        checkpoint: "str | None" = None,
        faults: "dict | None" = None,
    ) -> None:
        """Checkpoint a task that exhausted its retry budget."""
        self._append(
            {
                "v": _VERSION,
                "key": key,
                "label": label,
                "status": "failed",
                "kind": kind,
                "attempts": attempts,
                "duration": round(duration, 6),
                "error": error,
                "checkpoint": checkpoint,
                "faults": faults,
            }
        )

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True).encode("utf-8")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a+b") as fh:
                # A crash can leave a torn line without its newline; a new
                # record must not glue onto it (that would corrupt both).
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
                fh.write(line + b"\n")
                fh.flush()
                try:
                    os.fsync(fh.fileno())
                except OSError:
                    pass
        except OSError:
            return
        self.records += 1

    def replay(self) -> "dict[str, JournalEntry]":
        """Last settled state per task key; ``{}`` for a missing journal.

        Malformed lines (torn writes from a crash mid-append), entries of
        other format versions and entries missing fields are skipped —
        replay is best-effort by design, because the worst case is only
        that a task re-runs.
        """
        entries: dict[str, JournalEntry] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return entries
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except ValueError:
                continue
            if not isinstance(raw, dict) or raw.get("v") != _VERSION:
                continue
            try:
                entry = JournalEntry(
                    key=str(raw["key"]),
                    label=str(raw["label"]),
                    status=str(raw["status"]),
                    kind=raw.get("kind"),
                    attempts=int(raw["attempts"]),
                    duration=float(raw.get("duration", 0.0)),
                    error=raw.get("error"),
                    checkpoint=raw.get("checkpoint"),
                    faults=(
                        raw["faults"]
                        if isinstance(raw.get("faults"), dict) else None
                    ),
                )
            except (KeyError, TypeError, ValueError):
                continue
            if entry.status not in ("done", "failed"):
                continue
            entries[entry.key] = entry
        return entries

    def clear(self) -> None:
        """Delete the journal file (best effort)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self.replay())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepJournal({str(self.path)!r}, records={self.records})"
        )
