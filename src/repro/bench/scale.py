"""Benchmark workload scales.

The paper runs bitcnt(10000), mmul(32) and zoom(32) — sizes chosen for a
compiled C++ simulator.  A pure-Python cycle simulator trades absolute
scale for turn-around, so the harness defines three scales and reads the
``REPRO_BENCH_SCALE`` environment variable (``test`` / ``default`` /
``paper``) to pick one.  Shape claims (who wins, by what factor, where
the breakdown mass sits) are stable across scales; EXPERIMENTS.md records
the defaults used.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.workloads import bitcount, matmul, zoom
from repro.workloads.common import Workload

__all__ = ["SCALES", "current_scale", "builders", "spe_counts"]

SCALES: dict[str, dict[str, dict]] = {
    # Small: CI-friendly, < a second per run.
    "test": {
        "bitcnt": dict(iterations=24),
        "mmul": dict(n=8, threads=8),
        "zoom": dict(n=8, z=4, threads=8),
    },
    # Default: a few seconds per run, stable fractions.
    "default": {
        "bitcnt": dict(iterations=96),
        "mmul": dict(n=16, threads=16),
        "zoom": dict(n=16, z=4, threads=16),
    },
    # Paper-scale inputs (bitcnt iteration count still reduced: the
    # paper's 10000 iterations are ~2.5M simulated instructions).
    "paper": {
        "bitcnt": dict(iterations=512),
        "mmul": dict(n=32, threads=16),
        "zoom": dict(n=32, z=4, threads=16),
    },
}


def current_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={scale!r} (expected one of {sorted(SCALES)})"
        )
    return scale


def builders(scale: str | None = None) -> dict[str, Callable[[], Workload]]:
    """Zero-argument builders for the three benchmarks at ``scale``."""
    params = SCALES[scale or current_scale()]
    return {
        "bitcnt": lambda: bitcount.build(**params["bitcnt"]),
        "mmul": lambda: matmul.build(**params["mmul"]),
        "zoom": lambda: zoom.build(**params["zoom"]),
    }


def spe_counts() -> tuple[int, ...]:
    """The SPE sweep axis (paper: 1..8).

    The axis is the same at every workload scale: the scaling figures'
    shape claims (Figures 6-8) are asserted at fixed SPE counts, so the
    scales vary problem size only.  (An earlier signature accepted a
    ``scale`` argument and silently ignored it.)
    """
    return (1, 2, 4, 8)
