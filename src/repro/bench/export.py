"""Machine-readable experiment exports.

Renders run results into plain dictionaries / JSON / CSV so users can
plot the paper's figures with their own tooling, and provides
:func:`reproduce_all` — a single call that executes every experiment of
EXPERIMENTS.md and returns (or writes) the complete result set.

Used by ``python -m repro reproduce``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

from repro.bench.runner import PairResult, ScalingResult
from repro.bench.scale import builders, current_scale, spe_counts
from repro.cell.machine import RunResult
from repro.sim.config import latency1_config, paper_config
from repro.sim.stats import Bucket

__all__ = [
    "SCHEMA_VERSION",
    "run_to_dict",
    "pair_to_dict",
    "scaling_to_dict",
    "scaling_to_csv",
    "reproduce_all",
    "to_json",
]

#: Version of every machine-readable payload this module (and the
#: :mod:`repro.serve` gateway, which re-exports it) emits.  Bump it on
#: ANY change to the shape, keys or units of :func:`run_to_dict` /
#: :func:`pair_to_dict` / :func:`scaling_to_dict` output — consumers
#: pin against it, and the serving protocol echoes it so clients can
#: reject payloads they do not understand.  See docs/SERVING.md.
SCHEMA_VERSION = 1


def run_to_dict(run: RunResult, profile=None) -> dict:
    """Flatten one run into JSON-serializable primitives.

    When a :class:`repro.obs.profile.Profile` is given, its summary
    (profiler-derived usage / breakdown / totals / counters) is embedded
    under the ``"obs"`` key next to the stats-derived numbers.
    """
    mix = run.stats.mix.table5_row()
    out = {
        "schema_version": SCHEMA_VERSION,
        "activity": run.activity,
        "prefetch": run.prefetch,
        "cycles": run.cycles,
        "spes": run.config.num_spes,
        "memory_latency": run.config.main_memory.latency,
        "breakdown": {
            b: run.stats.average_breakdown.fraction(b) for b in Bucket.ALL
        },
        "pipeline_usage": run.stats.average_pipeline_usage,
        "instructions": {
            "total": mix["total"],
            "load": mix["LOAD"],
            "store": mix["STORE"],
            "read": mix["READ"],
            "write": mix["WRITE"],
        },
        "dma": {
            "commands": run.stats.mfc.commands,
            "bytes": run.stats.mfc.bytes_transferred,
        },
        "scheduler": {
            "fallocs": run.stats.scheduler.fallocs,
            "falloc_waits": run.stats.scheduler.falloc_waits,
            "remote_stores": run.stats.scheduler.remote_stores,
        },
        "bus": {
            "transfers": run.stats.bus.transfers,
            "bytes": run.stats.bus.bytes_moved,
        },
        "faults": {
            "plan": run.config.faults.describe(),
            "dma_delays": run.stats.faults.dma_delays,
            "dma_drops": run.stats.faults.dma_drops,
            "dma_retries": run.stats.faults.dma_retries,
            "dma_fallbacks": run.stats.faults.dma_fallbacks,
            "bus_delays": run.stats.faults.bus_delays,
            "bus_duplicates": run.stats.faults.bus_duplicates,
            "bus_duplicates_absorbed":
                run.stats.faults.bus_duplicates_absorbed,
            "mem_stalls": run.stats.faults.mem_stalls,
            # Data-fault injection and recovery counters (all zero for
            # timing-only plans).
            **run.stats.faults.recovery_counters(),
        },
    }
    if profile is not None:
        out["obs"] = profile.summary_dict()
    return out


def pair_to_dict(pair: PairResult) -> dict:
    return {
        "workload": pair.workload,
        "speedup": pair.speedup,
        "decoupled_fraction": pair.decoupled_fraction,
        "base": run_to_dict(pair.base),
        "prefetch": run_to_dict(pair.prefetch),
    }


def scaling_to_dict(scaling: ScalingResult) -> dict:
    return {
        "workload": scaling.workload,
        "points": {
            str(n): pair_to_dict(p) for n, p in sorted(scaling.pairs.items())
        },
        "scalability": {
            "base": {str(k): v for k, v in scaling.scalability(False).items()},
            "prefetch": {
                str(k): v for k, v in scaling.scalability(True).items()
            },
        },
    }


def scaling_to_csv(scaling: ScalingResult) -> str:
    """One row per (SPE count, variant) — ready for a spreadsheet."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["workload", "spes", "variant", "cycles", "speedup_vs_base",
         "mem_stall_frac", "pipeline_usage"]
    )
    for n, pair in sorted(scaling.pairs.items()):
        for variant, run in (("base", pair.base), ("prefetch", pair.prefetch)):
            writer.writerow(
                [
                    scaling.workload,
                    n,
                    variant,
                    run.cycles,
                    f"{pair.speedup:.4f}" if variant == "prefetch" else "1.0",
                    f"{run.stats.average_breakdown.fraction(Bucket.MEM_STALL):.4f}",
                    f"{run.stats.average_pipeline_usage:.4f}",
                ]
            )
    return out.getvalue()


def reproduce_all(
    scale: str | None = None,
    spes: "tuple[int, ...] | None" = None,
    progress=None,
    jobs: int | None = None,
    cache=None,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    keep_going: bool = False,
    checkpoint_every: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    keep_checkpoints: bool = False,
    faults: "str | None" = None,
) -> dict:
    """Execute the full experiment matrix (Figures 5-9, Table 5, L1).

    Returns a JSON-serializable dictionary keyed by experiment id.
    ``progress`` (if given) is called with a status line per step.

    The whole matrix — every (workload, SPE count, variant) point plus
    the latency-1 study — is one batch of independent deterministic
    runs, so it is submitted to :func:`repro.bench.parallel.run_many`
    in a single fan-out: ``jobs`` worker processes drain it (default
    ``REPRO_BENCH_JOBS`` or serial) and a
    :class:`~repro.bench.cache.ResultCache` makes a re-run with
    unchanged code and parameters perform zero new simulations.

    ``timeout``/``retries``/``resume`` are the resilience knobs of
    :func:`~repro.bench.parallel.run_many_detailed`; ``resume=True``
    continues an interrupted matrix from the sweep journal without
    re-simulating settled tasks, producing output bit-identical to an
    uninterrupted run.  With ``keep_going=True`` a permanently failing
    task no longer aborts the batch: every experiment that *can* be
    assembled from the surviving runs is emitted, and a ``degraded``
    manifest section names each failed task (label, taxonomy kind,
    attempts, last error).  Pairs with a failed half are dropped from
    their experiment; a workload missing its max-SPE pair is dropped
    from the Table 5 / Figure 5 / Figure 9 sections.
    """
    from repro.bench.parallel import TaskFailure, pair_tasks, run_many_detailed
    from repro.faults.plan import FaultPlan

    def log(msg: str) -> None:
        if progress is not None:
            progress(msg)

    # Validate the fault spec before anything is built or spawned — a
    # typo'd key must fail here, not deep inside a worker process.
    plan = FaultPlan.parse(faults) if faults else None

    def _cfg(config):
        return config.replace(faults=plan) if plan is not None else config

    scale = scale or current_scale()
    axis = tuple(spes or spe_counts())
    result: dict = {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "spes": list(axis),
        "experiments": {},
    }
    if plan is not None:
        result["faults"] = plan.describe()

    workloads = {name: build() for name, build in builders(scale).items()}
    tasks = []
    slots: list[tuple[str, str, int]] = []  # (experiment, workload, spes)
    for name, workload in workloads.items():
        for n in axis:
            tasks.extend(pair_tasks(workload, _cfg(paper_config(n))))
            slots.append(("scaling", name, n))
    for name, workload in workloads.items():
        tasks.extend(pair_tasks(workload, _cfg(latency1_config(max(axis)))))
        slots.append(("latency1", name, max(axis)))

    log(f"running {len(tasks)} simulations "
        f"({len(workloads)} workloads x {len(axis)} SPE counts x 2 "
        f"variants + latency-1 study) ...")
    batch = run_many_detailed(
        tasks, jobs=jobs, cache=cache, progress=progress,
        timeout=timeout, retries=retries, resume=resume,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        keep_checkpoints=keep_checkpoints,
    )
    if batch.failures and not keep_going:
        raise TaskFailure.from_batch(tasks, batch.failures)
    runs = batch.results

    scalings: dict[str, ScalingResult] = {
        name: ScalingResult(workload=name) for name in workloads
    }
    latency1_pairs: dict[str, PairResult] = {}
    for i, (experiment, name, n) in enumerate(slots):
        base, prefetch = runs[2 * i], runs[2 * i + 1]
        if base is None or prefetch is None:
            continue  # a failed half degrades the whole pair
        pair = PairResult(
            workload=name,
            config=tasks[2 * i].config,
            base=base,
            prefetch=prefetch,
        )
        if experiment == "scaling":
            scalings[name].pairs[n] = pair
        else:
            latency1_pairs[name] = pair

    result["experiments"]["scaling"] = {
        name: scaling_to_dict(s) for name, s in scalings.items() if s.pairs
    }
    pairs_at_max = {
        name: s.pairs[max(axis)]
        for name, s in scalings.items() if max(axis) in s.pairs
    }
    result["experiments"]["table5"] = {
        name: run_to_dict(p.base)["instructions"]
        for name, p in pairs_at_max.items()
    }
    result["experiments"]["fig5"] = {
        name: {
            "base": run_to_dict(p.base)["breakdown"],
            "prefetch": run_to_dict(p.prefetch)["breakdown"],
        }
        for name, p in pairs_at_max.items()
    }
    result["experiments"]["fig9"] = {
        name: {
            "base": p.base.stats.average_pipeline_usage,
            "prefetch": p.prefetch.stats.average_pipeline_usage,
        }
        for name, p in pairs_at_max.items()
    }
    result["experiments"]["latency1"] = {
        name: pair_to_dict(pair) for name, pair in latency1_pairs.items()
    }
    if batch.failures:
        result["degraded"] = [
            {
                "label": tasks[i].label,
                "kind": info.kind,
                "attempts": info.attempts,
                "error": f"{type(info.error).__name__}: {info.error}",
                # Fault/recovery counters at the point of failure, when
                # the error carried them (DataCorruptionError does).
                "faults": info.faults,
            }
            for i, info in sorted(batch.failures.items())
        ]
        log(
            f"degraded result: {len(batch.failures)} of {len(tasks)} "
            f"task(s) failed; partial artifacts emitted"
        )
    return result


def to_json(data: Mapping, indent: int = 2) -> str:
    return json.dumps(data, indent=indent, sort_keys=True)
