"""Experiment runner: the with/without-prefetching comparisons.

Every figure and table of the paper's evaluation reduces to one of two
experiment shapes:

* a **pair run** — the same workload executed on the same machine with
  and without the prefetch transformation (Figures 5 and 9, Table 5, the
  latency-1 study); or
* a **scaling sweep** — pair runs repeated for 1..8 SPEs (Figures 6-8).

:func:`run_pair` and :func:`sweep` implement those shapes, verify every
run against the workload oracle (a run that produces wrong answers must
never contribute a data point), and return plain dataclasses the report
module renders into paper-style tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cell.machine import Machine, RunResult
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.sim.config import MachineConfig, paper_config
from repro.workloads.common import Workload, check_outputs

__all__ = ["PairResult", "ScalingResult", "run_workload", "run_pair", "sweep"]


@dataclass
class PairResult:
    """One with/without-prefetching comparison."""

    workload: str
    config: MachineConfig
    base: RunResult
    prefetch: RunResult

    @property
    def speedup(self) -> float:
        """Execution-time ratio base / prefetch (the paper's headline)."""
        return self.base.cycles / self.prefetch.cycles

    @property
    def decoupled_fraction(self) -> float:
        """Fraction of baseline READs removed by the transformation."""
        base_reads = self.base.stats.mix.reads
        if base_reads == 0:
            return 0.0
        return 1.0 - self.prefetch.stats.mix.reads / base_reads


@dataclass
class ScalingResult:
    """A Figures 6-8 style sweep over SPE counts."""

    workload: str
    pairs: dict[int, PairResult] = field(default_factory=dict)

    def speedup_at(self, spes: int) -> float:
        return self.pairs[spes].speedup

    def scalability(self, prefetch: bool) -> dict[int, float]:
        """Execution time at 1 SPE divided by time at N SPEs."""
        pick = (lambda p: p.prefetch.cycles) if prefetch else (
            lambda p: p.base.cycles
        )
        baseline = pick(self.pairs[min(self.pairs)])
        return {n: baseline / pick(p) for n, p in sorted(self.pairs.items())}


def run_workload(
    workload: Workload,
    config: MachineConfig,
    prefetch: bool,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
    verify: bool = True,
) -> RunResult:
    """Run one variant of a workload, verifying outputs."""
    activity = workload.activity
    if prefetch:
        activity = prefetch_transform(activity, options)
    machine = Machine(config)
    machine.load(activity)
    result = machine.run(max_cycles=max_cycles)
    if verify:
        errors = check_outputs(workload, machine)
        if errors:
            raise AssertionError(
                f"{workload.name} ({'PF' if prefetch else 'base'}): wrong "
                f"output:\n" + "\n".join(errors[:10])
            )
    return result


def run_pair(
    workload: Workload,
    config: MachineConfig | None = None,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
) -> PairResult:
    """Run a workload with and without prefetching on the same machine."""
    cfg = config if config is not None else paper_config()
    return PairResult(
        workload=workload.name,
        config=cfg,
        base=run_workload(workload, cfg, prefetch=False, max_cycles=max_cycles),
        prefetch=run_workload(
            workload, cfg, prefetch=True, options=options, max_cycles=max_cycles
        ),
    )


def sweep(
    build: Callable[[], Workload],
    spes: Sequence[int] = (1, 2, 4, 8),
    config_for: Callable[[int], MachineConfig] = paper_config,
    options: PrefetchOptions | None = None,
) -> ScalingResult:
    """Pair runs across SPE counts (the Figures 6-8 axes).

    ``build`` is called once; the same workload (hence identical inputs
    and oracle) is reused across machine sizes.
    """
    workload = build()
    result = ScalingResult(workload=workload.name)
    for n in spes:
        result.pairs[n] = run_pair(workload, config_for(n), options=options)
    return result
