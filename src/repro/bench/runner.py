"""Experiment runner: the with/without-prefetching comparisons.

Every figure and table of the paper's evaluation reduces to one of two
experiment shapes:

* a **pair run** — the same workload executed on the same machine with
  and without the prefetch transformation (Figures 5 and 9, Table 5, the
  latency-1 study); or
* a **scaling sweep** — pair runs repeated for 1..8 SPEs (Figures 6-8).

:func:`run_pair` and :func:`sweep` implement those shapes, verify every
run against the workload oracle (a run that produces wrong answers must
never contribute a data point), and return plain dataclasses the report
module renders into paper-style tables.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cell.machine import Machine, RunResult
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.sim.config import MachineConfig, paper_config
from repro.workloads.common import Workload, check_outputs

__all__ = ["PairResult", "ScalingResult", "run_workload", "run_pair", "sweep"]


@dataclass
class PairResult:
    """One with/without-prefetching comparison."""

    workload: str
    config: MachineConfig
    base: RunResult
    prefetch: RunResult

    @property
    def speedup(self) -> float:
        """Execution-time ratio base / prefetch (the paper's headline)."""
        return self.base.cycles / self.prefetch.cycles

    @property
    def decoupled_fraction(self) -> float:
        """Fraction of baseline READs removed by the transformation."""
        base_reads = self.base.stats.mix.reads
        if base_reads == 0:
            return 0.0
        return 1.0 - self.prefetch.stats.mix.reads / base_reads


@dataclass
class ScalingResult:
    """A Figures 6-8 style sweep over SPE counts."""

    workload: str
    pairs: dict[int, PairResult] = field(default_factory=dict)

    def speedup_at(self, spes: int) -> float:
        return self.pairs[spes].speedup

    @property
    def baseline_spes(self) -> int:
        """SPE count :meth:`scalability` normalizes against.

        The 1-SPE point when the sweep includes it (the paper's Figures
        6-8 baseline); otherwise the smallest swept count, so partial
        sweeps still yield a curve anchored at 1.0.
        """
        return 1 if 1 in self.pairs else min(self.pairs)

    def scalability(self, prefetch: bool) -> dict[int, float]:
        """Execution time at :attr:`baseline_spes` divided by time at N SPEs.

        With a full 1..8 sweep this is the paper's scalability metric
        (time at 1 SPE over time at N); a sweep that omits 1 SPE is
        normalized to its smallest point instead.
        """
        pick = (lambda p: p.prefetch.cycles) if prefetch else (
            lambda p: p.base.cycles
        )
        baseline = pick(self.pairs[self.baseline_spes])
        return {n: baseline / pick(p) for n, p in sorted(self.pairs.items())}


def run_workload(
    workload: Workload,
    config: MachineConfig,
    prefetch: bool,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
    verify: bool = True,
    *,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_path: str | None = None,
    restore_from: str | None = None,
) -> RunResult:
    """Run one variant of a workload, verifying outputs.

    ``checkpoint_every=N`` snapshots the machine to ``checkpoint_path``
    every N cycles (see :mod:`repro.sim.snapshot`).  ``restore_from``
    resumes a previously checkpointed machine instead of starting fresh
    — results stay bit-identical to an uninterrupted run.  A missing,
    corrupt or mismatched (wrong activity) restore file falls back to a
    fresh start: a stale checkpoint must never poison a run.
    """
    from repro.sim.snapshot import CheckpointError

    activity = workload.activity
    if prefetch:
        activity = prefetch_transform(activity, options)
    machine = None
    if restore_from is not None and os.path.exists(restore_from):
        try:
            restored = Machine.load_checkpoint(restore_from)
        except CheckpointError:
            restored = None  # unusable checkpoint: start fresh
        if (
            restored is not None
            and restored._activity is not None
            and restored._activity.name == activity.name
            and restored.config == config
        ):
            machine = restored
    if machine is None:
        machine = Machine(config)
        machine.load(activity)
    if checkpoint_dir is None and checkpoint_path is not None:
        checkpoint_dir = os.path.dirname(checkpoint_path) or "."
    result = machine.run(
        max_cycles=max_cycles,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_path=checkpoint_path,
    )
    if verify:
        errors = check_outputs(workload, machine)
        if errors:
            raise AssertionError(
                f"{workload.name} ({'PF' if prefetch else 'base'}): wrong "
                f"output:\n" + "\n".join(errors[:10])
            )
    return result


def run_pair(
    workload: Workload,
    config: MachineConfig | None = None,
    options: PrefetchOptions | None = None,
    max_cycles: int = 500_000_000,
    jobs: int | None = None,
    cache=None,
    progress: Callable[[str], None] | None = None,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    checkpoint_every: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    keep_checkpoints: bool = False,
) -> PairResult:
    """Run a workload with and without prefetching on the same machine.

    ``jobs``/``cache`` route the two runs through
    :func:`repro.bench.parallel.run_many`: ``jobs`` worker processes
    (default ``REPRO_BENCH_JOBS`` or serial) and an optional
    :class:`~repro.bench.cache.ResultCache` of finished results.
    ``timeout``/``retries``/``resume`` are the resilience knobs, and the
    ``checkpoint_*`` arguments the machine-checkpoint knobs, of
    :func:`~repro.bench.parallel.run_many_detailed`.
    """
    from repro.bench.parallel import pair_tasks, run_many

    cfg = config if config is not None else paper_config()
    base, pf = run_many(
        pair_tasks(workload, cfg, options=options, max_cycles=max_cycles),
        jobs=jobs, cache=cache, progress=progress,
        timeout=timeout, retries=retries, resume=resume,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        keep_checkpoints=keep_checkpoints,
    )
    return PairResult(
        workload=workload.name, config=cfg, base=base, prefetch=pf
    )


def sweep(
    build: Callable[[], Workload],
    spes: Sequence[int] = (1, 2, 4, 8),
    config_for: Callable[[int], MachineConfig] = paper_config,
    options: PrefetchOptions | None = None,
    jobs: int | None = None,
    cache=None,
    progress: Callable[[str], None] | None = None,
    timeout: "float | None" = None,
    retries: "int | None" = None,
    resume: bool = False,
    keep_going: bool = False,
    checkpoint_every: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    keep_checkpoints: bool = False,
) -> ScalingResult:
    """Pair runs across SPE counts (the Figures 6-8 axes).

    ``build`` is called once; the same workload (hence identical inputs
    and oracle) is reused across machine sizes.  All ``2 * len(spes)``
    runs are independent, so with ``jobs > 1`` (or ``REPRO_BENCH_JOBS``
    set) they fan out across worker processes; results are bit-identical
    to the serial path either way, and ``cache`` serves already-finished
    runs without simulating.

    ``timeout``/``retries``/``resume`` are the resilience knobs of
    :func:`~repro.bench.parallel.run_many_detailed`.  With
    ``keep_going=True`` a permanently failing point is *dropped* from
    the returned :class:`ScalingResult` (both variants must finish for a
    pair to count) instead of aborting the sweep.
    """
    from repro.bench.parallel import pair_tasks, run_many

    workload = build()
    tasks = []
    for n in spes:
        tasks.extend(pair_tasks(workload, config_for(n), options=options))
    runs = run_many(
        tasks, jobs=jobs, cache=cache, progress=progress,
        timeout=timeout, retries=retries, resume=resume,
        keep_going=keep_going,
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
        keep_checkpoints=keep_checkpoints,
    )
    result = ScalingResult(workload=workload.name)
    for i, n in enumerate(spes):
        base, prefetch = runs[2 * i], runs[2 * i + 1]
        if base is None or prefetch is None:
            continue  # keep_going dropped this point; see the progress log
        result.pairs[n] = PairResult(
            workload=workload.name,
            config=tasks[2 * i].config,
            base=base,
            prefetch=prefetch,
        )
    return result
