"""``repro.serve`` — the simulation-as-a-service gateway.

Turns the one-shot bench harness into a long-lived multi-tenant job
engine: an asyncio HTTP/JSON service (stdlib only) that accepts run /
sweep / profile jobs, schedules them over the existing
:func:`repro.bench.parallel.run_many_detailed` machinery, coalesces
identical requests down to a single simulation, streams per-job progress
as NDJSON, exports Prometheus metrics, applies admission control under
overload, and drains gracefully on SIGTERM.

Layering (bottom up):

``protocol``
    Versioned request/response schemas with strict eager validation.
``queue``
    Priority job queue with per-client fairness, bounded depth and
    admission control (the 503 + ``Retry-After`` source).
``scheduler``
    Worker-pool dispatcher + request coalescing over the result cache.
``app``
    The asyncio HTTP server: submit/status/result/cancel endpoints,
    NDJSON event streaming, ``/healthz``, ``/metricsz``, SIGTERM drain.
``client``
    Small synchronous client used by tests, examples and the
    ``repro submit`` CLI.

See docs/SERVING.md for the full API and semantics.
"""

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    JobRequest,
    JobSpec,
    ProtocolError,
    parse_request,
)
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.scheduler import JobRecord, JobScheduler

__all__ = [
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "JobRequest",
    "JobSpec",
    "ProtocolError",
    "parse_request",
    "JobQueue",
    "QueueFull",
    "JobRecord",
    "JobScheduler",
    "ServeApp",
    "ServeClient",
    "ServeError",
]
