"""Versioned request/response schemas of the serving gateway.

Every request body is a JSON object::

    {"v": 1, "kind": "sweep", "client": "alice", "priority": 5,
     "params": {"benchmark": "mmul", "spes": [1, 2, 4, 8]}}

Validation is **strict and eager** (the ``_validate_faults`` discipline
of the CLI): unknown keys, wrong types, out-of-range values and typo'd
fault specs all raise :class:`ProtocolError` *before* a job is admitted
— a bad request must be rejected at the front door, never discovered
inside a worker process.

Result payloads embed :data:`SCHEMA_VERSION` — the same constant
:func:`repro.bench.export.run_to_dict` stamps into every export — so a
client can pin the payload shape it understands.  The request envelope
is versioned separately by :data:`PROTOCOL_VERSION`; bump either on any
incompatible change (see docs/SERVING.md for the bump-on-change rule).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.bench.export import SCHEMA_VERSION
from repro.bench.parallel import RunTask, pair_tasks
from repro.bench.scale import SCALES, builders, current_scale
from repro.sim.config import MachineConfig, paper_config

__all__ = [
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "JOB_KINDS",
    "ProtocolError",
    "JobSpec",
    "JobRequest",
    "parse_request",
    "build_tasks",
    "job_key",
]

#: Version of the request envelope; requests carrying any other ``"v"``
#: are rejected.  Bump on any incompatible request-shape change.
PROTOCOL_VERSION = 1

#: The job kinds the gateway accepts.
JOB_KINDS = ("run", "sweep", "profile")

#: Priorities span 0 (most urgent) .. 9 (least); default 5.
MIN_PRIORITY, MAX_PRIORITY, DEFAULT_PRIORITY = 0, 9, 5

#: Hard bound on requested machine sizes (the paper sweeps 1..8; the
#: simulator happily goes wider, but a service must bound its work).
MAX_SPES = 32

#: Hard bound on the number of points one sweep job may request.
MAX_SWEEP_POINTS = 16

_TOP_KEYS = {"v", "kind", "params", "client", "priority"}
_BASE_PARAMS = {
    "benchmark", "scale", "latency", "faults", "sanitize", "threshold",
}
_PARAM_KEYS = {
    "run": _BASE_PARAMS | {"spes", "prefetch"},
    "sweep": _BASE_PARAMS | {"spes"},
    "profile": _BASE_PARAMS | {"spes", "prefetch", "bucket_cycles"},
}


class ProtocolError(ValueError):
    """A request violated the schema; maps to HTTP 400."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, canonical description of one job's work."""

    kind: str
    benchmark: str
    scale: str
    spes: "tuple[int, ...]"
    prefetch: bool = True
    latency: "int | None" = None
    faults: "str | None" = None
    sanitize: bool = False
    threshold: float = 0.5
    bucket_cycles: "int | None" = None

    @property
    def label(self) -> str:
        axis = ",".join(str(n) for n in self.spes)
        return f"{self.kind} {self.benchmark} spes={axis}"

    def to_dict(self) -> dict:
        """The ``params`` object that re-parses to this spec."""
        out: dict = {
            "benchmark": self.benchmark,
            "scale": self.scale,
            "latency": self.latency,
            "faults": self.faults,
            "sanitize": self.sanitize,
            "threshold": self.threshold,
        }
        if self.kind == "sweep":
            out["spes"] = list(self.spes)
        else:
            out["spes"] = self.spes[0]
            out["prefetch"] = self.prefetch
        if self.kind == "profile":
            out["bucket_cycles"] = self.bucket_cycles
        return out


@dataclass(frozen=True)
class JobRequest:
    """A validated request: the spec plus scheduling metadata."""

    spec: JobSpec
    client: str = "anonymous"
    priority: int = DEFAULT_PRIORITY

    def to_dict(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.spec.kind,
            "client": self.client,
            "priority": self.priority,
            "params": self.spec.to_dict(),
        }


def _fail(msg: str) -> "ProtocolError":
    return ProtocolError(msg)


def _require_int(
    params: dict, key: str, lo: int, hi: int, default: "int | None",
) -> "int | None":
    value = params.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(f"params.{key} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise _fail(f"params.{key} must be in [{lo}, {hi}], got {value}")
    return value


def _require_bool(params: dict, key: str, default: bool) -> bool:
    value = params.get(key, default)
    if not isinstance(value, bool):
        raise _fail(f"params.{key} must be a boolean, got {value!r}")
    return value


def _parse_spes(params: dict, kind: str) -> "tuple[int, ...]":
    raw = params.get("spes", [1, 2, 4, 8] if kind == "sweep" else 8)
    if kind in ("run", "profile"):
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise _fail(
                f"params.spes must be a single integer for kind={kind!r}, "
                f"got {raw!r}"
            )
        raw = [raw]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise _fail(f"params.spes must be a non-empty list, got {raw!r}")
    if len(raw) > MAX_SWEEP_POINTS:
        raise _fail(
            f"params.spes requests {len(raw)} points "
            f"(max {MAX_SWEEP_POINTS})"
        )
    spes = []
    for n in raw:
        if isinstance(n, bool) or not isinstance(n, int):
            raise _fail(f"params.spes entries must be integers, got {n!r}")
        if not 1 <= n <= MAX_SPES:
            raise _fail(f"params.spes entries must be in [1, {MAX_SPES}], "
                        f"got {n}")
        if n in spes:
            raise _fail(f"params.spes repeats {n}")
        spes.append(n)
    return tuple(spes)


def _parse_faults(params: dict) -> "str | None":
    spec = params.get("faults")
    if spec is None:
        return None
    if not isinstance(spec, str):
        raise _fail(f"params.faults must be a string spec, got {spec!r}")
    from repro.faults import FaultPlanError
    from repro.faults.plan import FaultPlan

    try:
        FaultPlan.parse(spec)
    except FaultPlanError as exc:
        raise _fail(f"params.faults: {exc}")
    return spec


def parse_request(payload: object) -> JobRequest:
    """Validate one decoded JSON request body into a :class:`JobRequest`.

    Raises :class:`ProtocolError` naming the offending field on any
    violation; never partially accepts a request.
    """
    if not isinstance(payload, dict):
        raise _fail(f"request body must be a JSON object, got "
                    f"{type(payload).__name__}")
    unknown = set(payload) - _TOP_KEYS
    if unknown:
        raise _fail(
            f"unknown request key(s): {sorted(unknown)}; "
            f"valid keys: {sorted(_TOP_KEYS)}"
        )
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise _fail(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v={PROTOCOL_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise _fail(f"kind must be one of {list(JOB_KINDS)}, got {kind!r}")

    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client or len(client) > 128:
        raise _fail(
            f"client must be a non-empty string (<= 128 chars), "
            f"got {client!r}"
        )
    priority = payload.get("priority", DEFAULT_PRIORITY)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise _fail(f"priority must be an integer, got {priority!r}")
    if not MIN_PRIORITY <= priority <= MAX_PRIORITY:
        raise _fail(
            f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}], "
            f"got {priority}"
        )

    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise _fail(f"params must be a JSON object, got "
                    f"{type(params).__name__}")
    allowed = _PARAM_KEYS[kind]
    unknown = set(params) - allowed
    if unknown:
        raise _fail(
            f"unknown params key(s) for kind={kind!r}: {sorted(unknown)}; "
            f"valid keys: {sorted(allowed)}"
        )

    benchmark = params.get("benchmark")
    known = sorted(builders())
    if benchmark not in known:
        raise _fail(
            f"params.benchmark must be one of {known}, got {benchmark!r}"
        )
    scale = params.get("scale", None)
    if scale is None:
        scale = current_scale()
    if scale not in SCALES:
        raise _fail(
            f"params.scale must be one of {sorted(SCALES)}, got {scale!r}"
        )

    threshold = params.get("threshold", 0.5)
    if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
        raise _fail(f"params.threshold must be a number, got {threshold!r}")
    if not 0.0 <= threshold <= 1.0:
        raise _fail(f"params.threshold must be in [0, 1], got {threshold}")

    spec = JobSpec(
        kind=kind,
        benchmark=benchmark,
        scale=scale,
        spes=_parse_spes(params, kind),
        prefetch=_require_bool(params, "prefetch", True),
        latency=_require_int(params, "latency", 1, 1_000_000, None),
        faults=_parse_faults(params),
        sanitize=_require_bool(params, "sanitize", False),
        threshold=float(threshold),
        bucket_cycles=_require_int(params, "bucket_cycles", 1, 2**31, None),
    )
    return JobRequest(spec=spec, client=client, priority=priority)


def _config_for(spec: JobSpec, spes: int) -> MachineConfig:
    cfg = paper_config(spes)
    if spec.latency is not None:
        cfg = cfg.with_latency(spec.latency)
    if spec.faults:
        cfg = cfg.with_faults(spec.faults)
    if spec.sanitize:
        cfg = cfg.replace(sanitize=True)
    return cfg


def build_tasks(spec: JobSpec) -> "list[RunTask]":
    """The :class:`RunTask` list a spec's simulation work decomposes into.

    ``run``/``profile`` map to one task, ``sweep`` to a (base, prefetch)
    pair per SPE count — exactly the tasks :func:`repro.bench.runner.sweep`
    would submit, so results (and cache entries) are shared with the CLI.
    """
    from repro.compiler.passes import PrefetchOptions

    workload = builders(spec.scale)[spec.benchmark]()
    options = PrefetchOptions(worthwhile_threshold=spec.threshold)
    tasks: "list[RunTask]" = []
    if spec.kind == "sweep":
        for n in spec.spes:
            tasks.extend(
                pair_tasks(workload, _config_for(spec, n), options=options)
            )
    else:
        tasks.append(
            RunTask(
                workload, _config_for(spec, spec.spes[0]),
                prefetch=spec.prefetch,
                options=options if spec.prefetch else None,
            )
        )
    return tasks


def job_key(spec: JobSpec, tasks: "list[RunTask]") -> str:
    """Coalescing key: jobs with equal keys cost one simulation.

    Derived from the underlying :meth:`RunTask.key` content hashes (which
    embed workload content, config, options and the code stamp), the job
    kind, and the kind-specific knobs that change the *payload* without
    changing the simulation (profile bucketing).  Client identity and
    priority are deliberately excluded — that is the whole point.
    """
    digest = hashlib.sha256()
    digest.update(f"{PROTOCOL_VERSION}:{spec.kind}".encode())
    if spec.kind == "profile":
        digest.update(f":bucket={spec.bucket_cycles}".encode())
    for key in sorted(task.key() for task in tasks):
        digest.update(b"\0")
        digest.update(key.encode())
    return digest.hexdigest()
