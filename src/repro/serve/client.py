"""Small synchronous client of the serving gateway.

Used by the ``repro submit`` CLI, the test-suite and the examples; one
``http.client`` connection per call (the server speaks
``Connection: close``), so there is no connection state to manage.

    client = ServeClient(port=8357)
    job = client.submit("sweep", "mmul", spes=[1, 2, 4, 8])
    for event in client.events(job["id"]):
        print(event["event"])
    payload = client.result(job["id"])

Errors surface as :class:`ServeError` carrying the HTTP status and,
for 503 rejections, the server's ``Retry-After`` hint.
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = ["ServeClient", "ServeError"]

from repro.serve.protocol import PROTOCOL_VERSION

_TERMINAL_EVENTS = {"done", "failed", "cancelled"}


class ServeError(RuntimeError):
    """A request the server refused; ``status`` is the HTTP code."""

    def __init__(
        self, status: int, message: str, retry_after: "int | None" = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Talk to one gateway instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8357,
        timeout: "float | None" = 60.0,
        client: str = "anonymous",
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client = client

    # -- plumbing ------------------------------------------------------------

    def _connect(self, timeout: "float | None") -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: "object | None" = None,
        ok: "tuple[int, ...]" = (200, 202),
    ) -> dict:
        conn = self._connect(self.timeout)
        try:
            data = None
            headers = {}
            if body is not None:
                data = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=data, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode(errors="replace")}
            if resp.status not in ok:
                retry = resp.getheader("Retry-After")
                raise ServeError(
                    resp.status,
                    str(payload.get("error", payload)),
                    retry_after=int(retry) if retry else None,
                )
            return payload
        finally:
            conn.close()

    # -- API -----------------------------------------------------------------

    def submit_request(self, payload: dict) -> dict:
        """POST a raw request body; returns the 202 job status."""
        return self._request("POST", "/v1/jobs", body=payload, ok=(202,))

    def submit(
        self,
        kind: str,
        benchmark: str,
        *,
        priority: "int | None" = None,
        client: "str | None" = None,
        **params: object,
    ) -> dict:
        """Build and POST a v1 request; kwargs become ``params``."""
        body: dict = {
            "v": PROTOCOL_VERSION,
            "kind": kind,
            "client": client if client is not None else self.client,
            "params": {"benchmark": benchmark, **params},
        }
        if priority is not None:
            body["priority"] = priority
        return self.submit_request(body)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, client: "str | None" = None) -> "list[dict]":
        path = "/v1/jobs" + (f"?client={client}" if client else "")
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> dict:
        """The terminal payload; :class:`ServeError` 409 while running."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}", ok=(200, 409))

    def events(
        self,
        job_id: str,
        start: int = 0,
        timeout: "float | None" = None,
    ):
        """Yield the job's NDJSON events; ends after the terminal event.

        ``timeout`` bounds each blocking read (None = wait as long as
        the job takes); ``start`` resumes mid-stream after a disconnect.
        """
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?from={start}")
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    message = json.loads(raw).get("error", raw.decode())
                except json.JSONDecodeError:
                    message = raw.decode(errors="replace")
                raise ServeError(resp.status, message)
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: "float | None" = None) -> dict:
        """Stream events until the job settles; returns the final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        start = 0
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still running after {timeout}s"
                    )
            for event in self.events(job_id, start=start, timeout=remaining):
                start = event["seq"] + 1
                if event["event"] in _TERMINAL_EVENTS:
                    return self.status(job_id)
            # Stream ended without a terminal event (server-side hiccup);
            # re-attach from where we left off.
            time.sleep(0.05)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """Raw Prometheus text from ``/metricsz``."""
        conn = self._connect(self.timeout)
        try:
            conn.request("GET", "/metricsz")
            resp = conn.getresponse()
            body = resp.read().decode()
            if resp.status != 200:
                raise ServeError(resp.status, body)
            return body
        finally:
            conn.close()
