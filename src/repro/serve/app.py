"""The asyncio HTTP gateway: routes, streaming, drain.

Endpoints (all JSON unless noted)::

    POST   /v1/jobs            submit -> 202 status | 400 | 503+Retry-After
    GET    /v1/jobs            list job statuses (?client= filter)
    GET    /v1/jobs/<id>        one job's status
    GET    /v1/jobs/<id>/result terminal payload (409 while running)
    GET    /v1/jobs/<id>/events NDJSON event stream (?from=N to resume)
    DELETE /v1/jobs/<id>        cancel a queued job
    GET    /healthz             liveness + queue/worker snapshot
    GET    /metricsz            Prometheus text (serving + sim metrics)

Shutdown: SIGTERM or SIGINT flips the app into *drain* mode — new
submissions get 503, every already-accepted job still runs to
completion (each result lands in the cache and journal the moment it
finishes), event streams stay up until their job settles, and only
then does the process exit.  ``docker stop`` therefore never loses an
accepted job; at worst a re-submit after restart replays from cache.

The app is equally happy hosted off the main thread (tests do this):
signal-handler installation degrades gracefully and
:meth:`ServeApp.request_drain` is thread-safe.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import TYPE_CHECKING

from repro.serve import http
from repro.serve.http import HttpError, Request
from repro.serve.prom import render_prometheus
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.queue import QueueFull
from repro.serve.scheduler import DONE, FAILED, TERMINAL_STATES, JobScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.cache import ResultCache
    from repro.obs.hub import MetricsHub

__all__ = ["ServeApp", "DEFAULT_PORT"]

DEFAULT_PORT = 8357


class ServeApp:
    """One gateway instance: HTTP front end + scheduler + metrics hub."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: "ResultCache | None" = None,
        hub: "MetricsHub | None" = None,
        workers: int = 2,
        sim_jobs: int = 1,
        max_depth: int = 64,
        timeout: "float | None" = None,
        retries: "int | None" = None,
        backoff: float = 0.5,
        scheduler: "JobScheduler | None" = None,
        log=None,
    ) -> None:
        if hub is None:
            from repro.obs.hub import MetricsHub

            hub = MetricsHub()
        self.host = host
        self.port = port
        self.hub = hub
        self.scheduler = scheduler if scheduler is not None else JobScheduler(
            cache=cache,
            hub=hub,
            workers=workers,
            sim_jobs=sim_jobs,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            max_depth=max_depth,
        )
        self.log = log or (lambda msg: None)
        #: Actual bound port (resolves ``port=0``); set before ``ready``.
        self.bound_port: "int | None" = None
        #: Set once the server is accepting connections (thread-safe).
        self.ready = threading.Event()
        self.started_at: "float | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._drain_event: "asyncio.Event | None" = None
        self._c_requests = hub.counter("serve.http_requests")
        self._c_errors = hub.counter("serve.http_errors")

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        """Blocking entry point: serve until SIGTERM/SIGINT, then drain."""
        asyncio.run(self.serve())

    def request_drain(self) -> None:
        """Thread-safe drain trigger (what a signal would do)."""
        loop, event = self._loop, self._drain_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed: the drain has happened

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._drain_event.set)
            except (NotImplementedError, ValueError, RuntimeError):
                break  # non-main thread / unsupported platform
        await self.scheduler.start()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self.ready.set()
        self.log(f"serving on {self.host}:{self.bound_port}")
        try:
            await self._drain_event.wait()
            self.log("drain requested: refusing new jobs, "
                     f"finishing {len(self.scheduler.queue)} queued + "
                     f"{self.scheduler.active} running job(s)")
            self.scheduler.draining = True
            await self.scheduler.drain()
            self.log("drained: all accepted jobs settled")
        finally:
            server.close()
            await server.wait_closed()
            self.ready.clear()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await http.read_request(reader)
                if request is None:
                    return
                self._c_requests.add()
                await self._route(request, writer)
            except HttpError as exc:
                self._c_errors.add()
                writer.write(http.json_response(
                    exc.status, {"error": str(exc)}
                ))
            except Exception as exc:  # a handler bug must not kill the loop
                self._c_errors.add()
                self.log(f"internal error: {type(exc).__name__}: {exc}")
                try:
                    writer.write(http.json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    ))
                except Exception:
                    pass
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, req: Request, writer: asyncio.StreamWriter) -> None:
        path = req.path.rstrip("/") or "/"
        if path == "/healthz" and req.method == "GET":
            writer.write(http.json_response(200, self._health()))
            return
        if path == "/metricsz" and req.method == "GET":
            writer.write(http.response(
                200,
                render_prometheus(self.hub, extra=self._extra_metrics()).encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            ))
            return
        if path == "/v1/jobs":
            if req.method == "POST":
                await self._submit(req, writer)
                return
            if req.method == "GET":
                self._list_jobs(req, writer)
                return
            raise HttpError(405, f"{req.method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = self.scheduler.records.get(job_id)
            if record is None:
                raise HttpError(404, f"no such job: {job_id!r}")
            if not tail and req.method == "GET":
                writer.write(http.json_response(200, record.status_dict()))
                return
            if not tail and req.method == "DELETE":
                ok, reason = self.scheduler.cancel(job_id)
                status = 200 if ok else 409
                writer.write(http.json_response(
                    status, {"id": job_id, "cancelled": ok, "reason": reason}
                ))
                return
            if tail == "result" and req.method == "GET":
                self._result(record, writer)
                return
            if tail == "events" and req.method == "GET":
                await self._stream_events(req, record, writer)
                return
            raise HttpError(404, f"unknown endpoint: {req.method} {req.path}")
        raise HttpError(404, f"unknown endpoint: {req.method} {req.path}")

    # -- handlers ------------------------------------------------------------

    async def _submit(self, req: Request, writer: asyncio.StreamWriter) -> None:
        try:
            job_request = parse_request(req.json())
        except ProtocolError as exc:
            raise HttpError(400, str(exc))
        try:
            record, coalesced = await self.scheduler.submit(job_request)
        except QueueFull as exc:
            writer.write(http.json_response(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers={"Retry-After": str(exc.retry_after)},
            ))
            return
        except RuntimeError as exc:  # draining
            retry = self.scheduler.queue.retry_after()
            writer.write(http.json_response(
                503,
                {"error": str(exc), "retry_after": retry},
                extra_headers={"Retry-After": str(retry)},
            ))
            return
        status = record.status_dict()
        status["coalesced_into"] = record.id if coalesced else None
        writer.write(http.json_response(202, status))

    def _list_jobs(self, req: Request, writer: asyncio.StreamWriter) -> None:
        client = req.query.get("client")
        jobs = [
            rec.status_dict()
            for rec in self.scheduler.records.values()
            if client is None or rec.request.client == client
        ]
        writer.write(http.json_response(200, {"jobs": jobs}))

    def _result(self, record, writer: asyncio.StreamWriter) -> None:
        if record.state == DONE:
            writer.write(http.json_response(200, record.result))
            return
        if record.state == FAILED:
            writer.write(http.json_response(500, {
                "id": record.id, "state": record.state, "error": record.error,
            }))
            return
        if record.state in TERMINAL_STATES:  # cancelled
            writer.write(http.json_response(409, {
                "id": record.id, "state": record.state,
                "error": "job was cancelled",
            }))
            return
        writer.write(http.json_response(409, {
            "id": record.id, "state": record.state,
            "error": "job has not finished; poll again or stream /events",
        }))

    async def _stream_events(
        self, req: Request, record, writer: asyncio.StreamWriter
    ) -> None:
        try:
            start = int(req.query.get("from", "0"))
        except ValueError:
            raise HttpError(400, f"bad from= value: {req.query['from']!r}")
        writer.write(http.stream_head())
        await writer.drain()
        async for event in record.stream(start):
            writer.write(
                (json.dumps(event, sort_keys=True) + "\n").encode()
            )
            await writer.drain()

    # -- introspection -------------------------------------------------------

    def _health(self) -> dict:
        sched = self.scheduler
        return {
            "status": "draining" if sched.draining else "ok",
            "queued": len(sched.queue),
            "active": sched.active,
            "workers": sched.workers,
            "jobs_tracked": len(sched.records),
            "uptime": round(time.time() - (self.started_at or time.time()), 3),
            "cache": str(sched.cache.root) if sched.cache is not None else None,
        }

    def _extra_metrics(self) -> "dict[str, float]":
        sched = self.scheduler
        return {
            "serve.uptime_seconds": time.time() - (self.started_at or time.time()),
            "serve.draining": 1.0 if sched.draining else 0.0,
            "serve.jobs_tracked": float(len(sched.records)),
        }
