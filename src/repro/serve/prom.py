"""Prometheus text-format (0.0.4) rendering of a :class:`MetricsHub`.

The observability hub already holds everything worth scraping —
serving-side counters/gauges (``serve.*``, registered by the queue and
scheduler) next to whatever simulation instruments were fed into the
same hub.  This module only *renders*; it never mutates the hub.

Name mapping: instrument names are dotted (``serve.queue_depth``);
Prometheus names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots and
any other illegal characters become underscores and everything is
prefixed ``repro_``: ``serve.queue_depth`` -> ``repro_serve_queue_depth``.
Counters additionally get the conventional ``_total`` suffix.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.hub import MetricsHub

__all__ = ["render_prometheus", "prom_name"]

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str, prefix: str = "repro_") -> str:
    """Map an instrument name onto the Prometheus grammar."""
    cleaned = _ILLEGAL.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def render_prometheus(hub: "MetricsHub", extra: "dict[str, float] | None" = None) -> str:
    """Render every instrument of ``hub`` as Prometheus exposition text.

    * counters -> ``<name>_total`` with ``# TYPE ... counter``;
    * gauges -> current ``last`` plus a ``<name>_peak`` companion;
    * bucket series -> their exact running ``total`` as a counter
      (the bounded ring is a timeseries detail scrapers do not want);
    * ``extra`` -> ad-hoc gauges (uptime, job states) the caller adds.
    """
    lines: "list[str]" = []

    def emit(name: str, kind: str, value: float) -> None:
        lines.append(f"# TYPE {name} {kind}")
        if isinstance(value, float) and not value.is_integer():
            lines.append(f"{name} {value!r}")
        else:
            lines.append(f"{name} {int(value)}")

    for raw, counter in sorted(hub.counters.items()):
        emit(prom_name(raw) + "_total", "counter", counter.value)
    for raw, series in sorted(hub.series.items()):
        emit(prom_name(raw) + "_total", "counter", series.total)
    for raw, gauge in sorted(hub.gauges.items()):
        base = prom_name(raw)
        emit(base, "gauge", gauge.last)
        emit(base + "_peak", "gauge", gauge.peak)
    for raw, value in sorted((extra or {}).items()):
        emit(prom_name(raw), "gauge", value)
    return "\n".join(lines) + "\n"
