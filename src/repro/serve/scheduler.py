"""Job scheduler: worker-pool dispatch + request coalescing.

The scheduler owns the job lifecycle::

    submitted -> queued -> running -> (retrying ->)* done | failed
                   \\-> cancelled

``workers`` asyncio worker tasks pull from the :class:`JobQueue` and
execute each job's simulation batch in a thread
(:func:`asyncio.to_thread`) through the existing resilient
:func:`repro.bench.parallel.run_many_detailed` machinery — process
pools, per-task timeouts, bounded retries, checkpoint-resume and the
journal all come for free, and every retry surfaces to streaming
clients as a ``retrying`` event (via the ``on_retry`` hook).

Request coalescing
------------------
Identical jobs dedupe at two layers:

* **in flight** — a submit whose :func:`~repro.serve.protocol.job_key`
  matches a queued/running job *attaches* to that job's record instead
  of enqueueing new work: N clients asking for the same sweep cost one
  simulation and all stream the same events;
* **persistent** — the underlying tasks are keyed by the
  :class:`~repro.bench.cache.ResultCache` content hash, so a job whose
  results are already cached (from the CLI, a previous job, or a
  previous server life) performs zero simulations.

Every payload embeds :data:`~repro.serve.protocol.SCHEMA_VERSION`.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Callable

from repro.serve import protocol
from repro.serve.protocol import SCHEMA_VERSION, JobRequest, JobSpec
from repro.serve.queue import JobQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.cache import ResultCache
    from repro.obs.hub import MetricsHub

__all__ = [
    "JobRecord",
    "JobScheduler",
    "JobFailed",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class JobFailed(RuntimeError):
    """A job's batch permanently failed; carries the failure taxonomy."""

    def __init__(self, message: str, failures: "dict | None" = None) -> None:
        super().__init__(message)
        self.failures = failures or {}


class JobRecord:
    """One accepted job: state, event log, streaming waiters, payload."""

    def __init__(self, job_id: str, request: JobRequest, key: str) -> None:
        self.id = job_id
        self.request = request
        self.key = key
        self.state = QUEUED
        self.created = time.time()
        self.started: "float | None" = None
        self.finished: "float | None" = None
        #: Transient-retry notifications observed (timeouts, crashes).
        self.retries = 0
        #: Followers attached by in-flight coalescing (0 = unique).
        self.coalesced = 0
        #: True when the batch performed zero new simulations (every
        #: task served by the persistent result cache).
        self.cached = False
        self.result: "dict | None" = None
        self.error: "dict | None" = None
        self.events: "list[dict]" = []
        self._waiters: "list[asyncio.Future]" = []
        self._done_event: "asyncio.Event" = asyncio.Event()

    # -- event log -----------------------------------------------------------

    def post(self, event: str, **fields: object) -> None:
        """Append an event (event-loop thread only) and wake streamers."""
        entry = {"event": event, "job": self.id, "seq": len(self.events)}
        entry.update(fields)
        self.events.append(entry)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)
        if self.state in TERMINAL_STATES:
            self._done_event.set()

    async def stream(self, start: int = 0):
        """Yield events from index ``start``; ends after a terminal event."""
        i = start
        while True:
            while i < len(self.events):
                yield self.events[i]
                i += 1
            if self.state in TERMINAL_STATES:
                return
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    async def wait(self, timeout: "float | None" = None) -> dict:
        """Block until terminal; returns the final status dict."""
        await asyncio.wait_for(self._done_event.wait(), timeout)
        return self.status_dict()

    # -- views ---------------------------------------------------------------

    def status_dict(self) -> dict:
        spec = self.request.spec
        out = {
            "schema_version": SCHEMA_VERSION,
            "id": self.id,
            "state": self.state,
            "kind": spec.kind,
            "label": spec.label,
            "client": self.request.client,
            "priority": self.request.priority,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "retries": self.retries,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "events": len(self.events),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class JobScheduler:
    """Dispatches accepted jobs over ``workers`` concurrent executors."""

    def __init__(
        self,
        cache: "ResultCache | None" = None,
        hub: "MetricsHub | None" = None,
        queue: "JobQueue | None" = None,
        workers: int = 2,
        sim_jobs: int = 1,
        timeout: "float | None" = None,
        retries: "int | None" = None,
        backoff: float = 0.5,
        checkpoint_every: "int | None" = None,
        max_depth: int = 64,
        build_tasks: "Callable[[JobSpec], list] | None" = None,
        history_limit: int = 512,
    ) -> None:
        self.cache = cache
        self.hub = hub
        self.workers = max(1, workers)
        #: Worker processes each batch may fan out to (run_many jobs=).
        self.sim_jobs = max(1, sim_jobs)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.checkpoint_every = checkpoint_every
        self.queue = queue if queue is not None else JobQueue(
            max_depth=max_depth, workers=self.workers, hub=hub,
        )
        #: Task-list factory; tests substitute stub tasks through this.
        self.build_tasks = build_tasks or protocol.build_tasks
        self.history_limit = history_limit
        self.records: "dict[str, JobRecord]" = {}
        #: Non-terminal records by coalescing key.
        self.inflight: "dict[str, JobRecord]" = {}
        self.draining = False
        self._counter = 0
        self._active = 0
        self._cond: "asyncio.Condition | None" = None
        self._worker_tasks: "list[asyncio.Task]" = []
        self._journal = None
        if cache is not None:
            from repro.bench.journal import SweepJournal

            self._journal = SweepJournal.for_cache(cache)
        if hub is not None:
            self._c_submitted = hub.counter("serve.jobs_submitted")
            self._c_done = hub.counter("serve.jobs_done")
            self._c_failed = hub.counter("serve.jobs_failed")
            self._c_coalesced = hub.counter("serve.jobs_coalesced")
            self._g_active = hub.gauge("serve.jobs_active")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (call once, on the serving loop)."""
        self._cond = asyncio.Condition()
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self) -> None:
        """Stop dispatching *new* submissions, finish every accepted job.

        Queued jobs still execute (an accepted job is a promise); only
        after the queue is empty and every worker is idle do the worker
        tasks exit.  The journal needs no explicit flush — every settled
        task was fsync'd the moment it finished.
        """
        self.draining = True
        if self._cond is not None:
            async with self._cond:
                self._cond.notify_all()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []

    @property
    def active(self) -> int:
        """Jobs currently executing on a worker."""
        return self._active

    @property
    def settled(self) -> bool:
        return not self.queue and self._active == 0

    # -- submission ----------------------------------------------------------

    def _next_id(self) -> str:
        self._counter += 1
        return f"j-{self._counter:06d}"

    def _prune_history(self) -> None:
        if len(self.records) <= self.history_limit:
            return
        terminal = [
            jid for jid, rec in self.records.items()
            if rec.state in TERMINAL_STATES
        ]
        # Oldest first (insertion order == submission order).
        for jid in terminal[: len(self.records) - self.history_limit]:
            del self.records[jid]

    async def submit(self, request: JobRequest) -> "tuple[JobRecord, bool]":
        """Accept a job; returns ``(record, coalesced)``.

        Raises :class:`~repro.serve.queue.QueueFull` at capacity and
        :class:`RuntimeError` while draining (the HTTP layer maps both
        to 503).  A request whose coalescing key matches an in-flight
        job attaches to it — no new queue slot, no new simulation.
        """
        tasks = self.build_tasks(request.spec)
        key = protocol.job_key(request.spec, tasks)
        existing = self.inflight.get(key)
        if existing is not None and existing.state not in TERMINAL_STATES:
            existing.coalesced += 1
            if self.hub is not None:
                self._c_coalesced.add()
            existing.post("coalesced", client=request.client,
                          followers=existing.coalesced)
            return existing, True
        if self.draining:
            raise RuntimeError("server is draining; not accepting jobs")
        record = JobRecord(self._next_id(), request, key)
        record._tasks = tasks  # computed once; the executor reuses it
        self.queue.push(record)  # may raise QueueFull — nothing registered yet
        self.records[record.id] = record
        self.inflight[key] = record
        self._prune_history()
        if self.hub is not None:
            self._c_submitted.add()
        record.post("queued", label=request.spec.label,
                    position=len(self.queue))
        if self._cond is not None:
            async with self._cond:
                self._cond.notify()
        return record, False

    def cancel(self, job_id: str) -> "tuple[bool, str]":
        """Cancel a *queued* job; running jobs are not interruptible.

        Returns ``(ok, reason)``; ``reason`` explains a refusal.
        """
        record = self.records.get(job_id)
        if record is None:
            return False, "unknown job"
        if record.state in TERMINAL_STATES:
            return False, f"job already {record.state}"
        if record.state == RUNNING:
            return False, "job is running (results will land in the cache)"
        if not self.queue.remove(job_id):
            return False, "job is no longer queued"
        record.state = CANCELLED
        record.finished = time.time()
        self.inflight.pop(record.key, None)
        record.post("cancelled")
        return True, "cancelled"

    # -- execution -----------------------------------------------------------

    async def _pop(self) -> "JobRecord | None":
        assert self._cond is not None, "scheduler not started"
        async with self._cond:
            while True:
                record = self.queue.pop()
                if record is not None:
                    return record
                if self.draining:
                    return None
                await self._cond.wait()

    async def _worker(self) -> None:
        while True:
            record = await self._pop()
            if record is None:
                return
            await self._run_record(record)

    async def _run_record(self, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        record.state = RUNNING
        record.started = time.time()
        self._active += 1
        if self.hub is not None:
            self._g_active.observe(int(time.time()), self._active)
        record.post("running")

        def progress(msg: str) -> None:
            def _post() -> None:
                record.post("log", message=msg)
            loop.call_soon_threadsafe(_post)

        def on_retry(index: int, kind: str, attempt: int) -> None:
            def _post() -> None:
                record.retries += 1
                record.post(
                    "retrying", task=index, kind=kind, attempt=attempt,
                )
            loop.call_soon_threadsafe(_post)

        try:
            payload = await asyncio.to_thread(
                self._execute, record, progress, on_retry
            )
        except JobFailed as exc:
            record.state = FAILED
            record.error = {
                "type": type(exc).__name__,
                "message": str(exc),
                "failures": exc.failures,
            }
            if self.hub is not None:
                self._c_failed.add()
        except Exception as exc:  # defense: a bug must not kill the worker
            record.state = FAILED
            record.error = {"type": type(exc).__name__, "message": str(exc)}
            if self.hub is not None:
                self._c_failed.add()
        else:
            record.state = DONE
            record.result = payload
            if self.hub is not None:
                self._c_done.add()
        finally:
            record.finished = time.time()
            self._active -= 1
            if self.hub is not None:
                self._g_active.observe(int(time.time()), self._active)
            self.queue.note_duration(record.finished - record.started)
            self.inflight.pop(record.key, None)
        if record.state == DONE:
            record.post("done", cached=record.cached,
                        duration=round(record.finished - record.started, 6))
        else:
            record.post("failed", error=record.error)

    def _execute(self, record: JobRecord, progress, on_retry) -> dict:
        """Run one job's batch (worker thread); returns the payload."""
        spec = record.request.spec
        if spec.kind == "profile":
            return self._execute_profile(spec)
        from repro.bench.parallel import run_many_detailed

        tasks = record._tasks
        batch = run_many_detailed(
            tasks,
            jobs=self.sim_jobs,
            cache=self.cache,
            progress=progress,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            journal=self._journal,
            checkpoint_every=self.checkpoint_every,
            on_retry=on_retry,
        )
        if batch.failures:
            first = batch.failures[min(batch.failures)]
            raise JobFailed(
                f"{len(batch.failures)} of {len(tasks)} run(s) failed: "
                f"{first.describe()}",
                failures={
                    tasks[i].label: {
                        "kind": info.kind,
                        "attempts": info.attempts,
                        "error": f"{type(info.error).__name__}: {info.error}",
                        "faults": info.faults,
                    }
                    for i, info in sorted(batch.failures.items())
                },
            )
        record.cached = sum(batch.attempts) == 0
        return self._payload(spec, tasks, batch.results)

    def _execute_profile(self, spec: JobSpec) -> dict:
        """Profile jobs run under the observability hub (not cached —
        profiles carry bounded timeseries, not just a RunResult)."""
        from repro.bench.export import run_to_dict
        from repro.compiler.passes import PrefetchOptions
        from repro.bench.scale import builders
        from repro.obs.hub import HubConfig
        from repro.obs.profile import profile_workload
        from repro.serve.protocol import _config_for

        workload = builders(spec.scale)[spec.benchmark]()
        hub_config = (
            HubConfig(bucket_cycles=spec.bucket_cycles,
                      sample_interval=spec.bucket_cycles)
            if spec.bucket_cycles else None
        )
        result, profile = profile_workload(
            workload,
            _config_for(spec, spec.spes[0]),
            prefetch=spec.prefetch,
            options=PrefetchOptions(worthwhile_threshold=spec.threshold),
            hub_config=hub_config,
        )
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "profile",
            "run": run_to_dict(result, profile=profile),
            "profile": profile.to_dict(),
        }

    def _payload(self, spec: JobSpec, tasks, results) -> dict:
        from repro.bench.export import run_to_dict, scaling_to_dict
        from repro.bench.runner import PairResult, ScalingResult

        if spec.kind == "run":
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "run",
                "run": run_to_dict(results[0]),
            }
        name = tasks[0].workload.name
        scaling = ScalingResult(workload=name)
        for i, n in enumerate(spec.spes):
            scaling.pairs[n] = PairResult(
                workload=name,
                config=tasks[2 * i].config,
                base=results[2 * i],
                prefetch=results[2 * i + 1],
            )
        out = scaling_to_dict(scaling)
        out["schema_version"] = SCHEMA_VERSION
        out["kind"] = "sweep"
        return out
