"""Priority job queue with per-client fairness and admission control.

A plain (non-async) data structure — the event loop is single-threaded,
so the scheduler wraps it in an ``asyncio.Condition`` rather than the
queue carrying its own locking.

Ordering
--------
``pop`` chooses, among the head job of every client, the one minimizing
``(priority, served[client], seq)``:

* **priority** first — an urgent job (priority 0) always beats a batch
  job (priority 9), whoever submitted it;
* **per-client fairness** second — within a priority class, the client
  that has been served the fewest jobs wins, so one tenant queueing 100
  sweeps cannot starve another's single run;
* **FIFO** last — ties break by submission order.

Admission control
-----------------
The queue is bounded: ``push`` beyond ``max_depth`` raises
:class:`QueueFull` carrying a ``retry_after`` estimate (depth x the
EWMA of recent job durations / worker count), which the HTTP layer
turns into ``503`` + ``Retry-After``.  Better to refuse loudly at the
door than to accumulate an unbounded promise backlog.

Backpressure observability: depth, admissions, rejections and
cancellations are registered in the observability
:class:`~repro.obs.hub.MetricsHub` so ``/metricsz`` exports them.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.hub import MetricsHub
    from repro.serve.scheduler import JobRecord

__all__ = ["JobQueue", "QueueFull"]


class QueueFull(RuntimeError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"job queue full ({depth} job(s) queued); "
            f"retry in ~{retry_after}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class JobQueue:
    """Bounded priority queue of :class:`JobRecord`, fair across clients."""

    def __init__(
        self,
        max_depth: int = 64,
        workers: int = 2,
        hub: "MetricsHub | None" = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.workers = max(1, workers)
        #: EWMA of observed job durations (seconds); seeds the
        #: ``Retry-After`` estimate before any job has finished.
        self.avg_seconds = 1.0
        self._seq = 0
        #: Per-client min-heaps of (priority, seq, record).
        self._clients: "dict[str, list]" = {}
        #: Jobs served per client (the fairness clock).
        self._served: "dict[str, int]" = {}
        #: Live queued records by job id (cancellation handle).
        self._queued: "dict[str, JobRecord]" = {}
        self._hub = hub
        if hub is not None:
            self._g_depth = hub.gauge("serve.queue_depth")
            self._c_admitted = hub.counter("serve.admitted")
            self._c_rejected = hub.counter("serve.rejected")
            self._c_cancelled = hub.counter("serve.cancelled")

    def __len__(self) -> int:
        return len(self._queued)

    def _observe_depth(self) -> None:
        if self._hub is not None:
            self._g_depth.observe(int(time.time()), len(self._queued))

    def note_duration(self, seconds: float) -> None:
        """Fold one finished job's duration into the EWMA."""
        self.avg_seconds = 0.7 * self.avg_seconds + 0.3 * max(0.01, seconds)

    def retry_after(self) -> int:
        """Seconds a rejected client should wait before retrying."""
        backlog = len(self._queued) + 1
        return max(1, round(backlog * self.avg_seconds / self.workers))

    def push(self, record: "JobRecord") -> None:
        """Enqueue, or raise :class:`QueueFull` when at capacity."""
        if len(self._queued) >= self.max_depth:
            if self._hub is not None:
                self._c_rejected.add()
            raise QueueFull(len(self._queued), self.retry_after())
        client = record.request.client
        heap = self._clients.setdefault(client, [])
        heapq.heappush(heap, (record.request.priority, self._seq, record))
        self._seq += 1
        self._queued[record.id] = record
        if self._hub is not None:
            self._c_admitted.add()
        self._observe_depth()

    def _head(self, client: str) -> "tuple[int, int, JobRecord] | None":
        """The client's next live entry (discarding cancelled ones)."""
        heap = self._clients.get(client)
        while heap:
            priority, seq, record = heap[0]
            if record.id in self._queued:
                return priority, seq, record
            heapq.heappop(heap)  # cancelled: lazy-delete
        return None

    def pop(self) -> "JobRecord | None":
        """Dequeue the fairest next job, or ``None`` when empty."""
        best = None
        best_key = None
        for client in list(self._clients):
            head = self._head(client)
            if head is None:
                if not self._clients[client]:
                    del self._clients[client]
                continue
            priority, seq, record = head
            key = (priority, self._served.get(client, 0), seq)
            if best_key is None or key < best_key:
                best_key = key
                best = (client, record)
        if best is None:
            return None
        client, record = best
        heapq.heappop(self._clients[client])
        del self._queued[record.id]
        self._served[client] = self._served.get(client, 0) + 1
        self._observe_depth()
        return record

    def remove(self, job_id: str) -> bool:
        """Cancel a queued job; ``False`` if it is not queued (anymore)."""
        record = self._queued.pop(job_id, None)
        if record is None:
            return False
        if self._hub is not None:
            self._c_cancelled.add()
        self._observe_depth()
        return True

    def depths(self) -> "dict[str, int]":
        """Queued-job count per client (live entries only)."""
        out: "dict[str, int]" = {}
        for record in self._queued.values():
            client = record.request.client
            out[client] = out.get(client, 0) + 1
        return out
