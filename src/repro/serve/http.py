"""Tiny HTTP/1.1 layer for the asyncio gateway (stdlib only).

Just enough of RFC 9112 for a JSON job API: one request per
connection (``Connection: close`` on every response, so NDJSON
streaming is simply "write lines, then close"), ``Content-Length``
bodies only (no chunked upload), bounded header and body sizes.
Keeping this ~150 lines beats dragging in a framework the container
does not have.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response",
    "json_response",
    "stream_head",
    "STATUS_REASONS",
]

#: Upper bound on the request line + headers block, bytes.
MAX_HEAD_BYTES = 16 * 1024
#: Upper bound on a request body, bytes (job specs are tiny).
MAX_BODY_BYTES = 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: "dict[str, str]" = field(default_factory=dict)
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON; raises :class:`HttpError` (400)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query: "dict[str, str]" = {
        k: v[-1] for k, v in parse_qs(split.query).items()
    }

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {n} bytes exceeds "
                                 f"{MAX_BODY_BYTES}-byte limit")
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes = b"",
    content_type: str = "text/plain; charset=utf-8",
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialize a full response (always ``Connection: close``)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def json_response(
    status: int,
    payload: object,
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return response(status, body, "application/json", extra_headers)


def stream_head(content_type: str = "application/x-ndjson") -> bytes:
    """Response head for an NDJSON stream: no Content-Length; the end
    of the stream is signalled by closing the connection."""
    return (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
