"""Profile diffing: the perf-regression gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.diff import (
    MetricDelta,
    diff_profiles,
    load_profile,
    render_diff,
)


def sample_profile() -> dict:
    return {
        "version": 1,
        "activity": "bitcnt(24)",
        "prefetch": True,
        "spes": 2,
        "cycles": 10_000,
        "pipeline_usage": {"average": 0.5, "per_spu": [0.5, 0.5]},
        "breakdown_cycles": {
            "working": 5000.0,
            "idle": 1000.0,
            "mem_stall": 3000.0,
            "ls_stall": 500.0,
            "lse_stall": 400.0,
            "prefetch": 100.0,
        },
        "totals": {"dma_commands": 20, "bus_bytes": 4096, "threads": 10},
    }


class TestSelfDiff:
    def test_zero_deltas_and_no_regressions(self):
        p = sample_profile()
        diff = diff_profiles(p, copy.deepcopy(p))
        assert all(d.delta == 0 for d in diff.all_deltas())
        assert diff.regressions(0.0) == []
        assert diff.regressions(5.0) == []

    def test_real_profile_self_diff(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        diff = diff_profiles(profile.to_dict(), profile.to_dict())
        assert diff.regressions(0.0) == []


class TestRegressionDetection:
    def test_cycle_growth_flagged(self):
        base, cand = sample_profile(), sample_profile()
        cand["cycles"] = 11_000
        diff = diff_profiles(base, cand)
        names = [d.name for d in diff.regressions(2.0)]
        assert "cycles" in names
        assert diff.regressions(15.0) == []

    def test_usage_drop_flagged(self):
        base, cand = sample_profile(), sample_profile()
        cand["pipeline_usage"]["average"] = 0.4
        assert [d.name for d in diff_profiles(base, cand).regressions(2.0)] \
            == ["pipeline_usage.average"]

    def test_stall_growth_flagged_but_working_growth_is_not(self):
        base, cand = sample_profile(), sample_profile()
        cand["breakdown_cycles"]["mem_stall"] = 4000.0
        cand["breakdown_cycles"]["working"] = 9000.0
        names = [d.name for d in diff_profiles(base, cand).regressions(2.0)]
        assert names == ["breakdown.mem_stall"]

    def test_traffic_growth_flagged(self):
        base, cand = sample_profile(), sample_profile()
        cand["totals"]["bus_bytes"] = 8192
        names = [d.name for d in diff_profiles(base, cand).regressions(2.0)]
        assert names == ["totals.bus_bytes"]


class TestMetricDelta:
    def test_percent(self):
        assert MetricDelta("m", 100, 110).delta_pct == pytest.approx(10.0)
        assert MetricDelta("m", 0, 0).delta_pct == 0.0
        assert MetricDelta("m", 0, 5).delta_pct == float("inf")


class TestRendering:
    def test_table_lists_every_metric(self):
        diff = diff_profiles(sample_profile(), sample_profile())
        text = render_diff(diff)
        assert "cycles" in text
        assert "breakdown.mem_stall" in text
        assert "totals.dma_commands" in text
        assert "regression" not in text

    def test_regressions_marked(self):
        base, cand = sample_profile(), sample_profile()
        cand["cycles"] = 20_000
        text = render_diff(diff_profiles(base, cand), max_delta_pct=2.0)
        assert "<< regression" in text


class TestLoadProfile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(json.dumps(sample_profile()))
        assert load_profile(path)["cycles"] == 10_000

    def test_rejects_non_profile_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a profile"):
            load_profile(path)
