"""Tracer v2: kind validation, sinks, and the legacy import surface."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TeeSink,
    TraceEvent,
    Tracer,
)


class TestKindValidation:
    def test_bare_string_rejected(self):
        # A bare string used to iterate into single characters and
        # silently filter out every real event kind.
        with pytest.raises(TypeError, match="bare"):
            Tracer(kinds="dispatch")

    def test_bytes_rejected(self):
        with pytest.raises(TypeError):
            Tracer(kinds=b"dispatch")

    def test_error_suggests_the_fix(self):
        with pytest.raises(TypeError, match=r"kinds=\{'dispatch'\}"):
            Tracer(kinds="dispatch")

    def test_non_string_member_rejected(self):
        with pytest.raises(TypeError, match="strings"):
            Tracer(kinds={"dispatch", 7})

    def test_iterables_accepted(self):
        for kinds in ({"a"}, ["a", "b"], ("a",), frozenset({"a"})):
            assert "a" in Tracer(kinds=kinds).kinds

    def test_legacy_import_path_validates_too(self):
        from repro.sim.trace import Tracer as LegacyTracer

        with pytest.raises(TypeError):
            LegacyTracer(kinds="dispatch")


class TestTracerFiltering:
    def test_kinds_filter(self):
        t = Tracer(kinds={"keep"})
        t.emit(1, "c", "keep", x=1)
        t.emit(2, "c", "drop")
        assert [e.kind for e in t.events] == ["keep"]

    def test_limit_counts_dropped(self):
        t = Tracer(limit=2)
        for i in range(5):
            t.emit(i, "c", "k")
        assert len(t) == 2
        assert t.dropped == 3
        assert "dropped" in t.format()

    def test_queries(self):
        t = Tracer()
        t.emit(1, "c", "a", tid=7)
        t.emit(2, "c", "b", tid=8)
        assert [e.cycle for e in t.of_kind("a")] == [1]
        assert [e.cycle for e in t.of_thread(8)] == [2]
        assert t.kinds_seen() == {"a", "b"}


class TestMemorySink:
    def test_unlimited(self):
        sink = MemorySink(limit=None)
        for i in range(10):
            sink.emit(TraceEvent(i, "c", "k"))
        assert len(sink.events) == 10
        assert sink.dropped == 0


class TestJsonlSink:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Tracer(sink=JsonlSink(path))
        t.emit(3, "spu0", "dispatch", tid=1, pf=True)
        t.emit(9, "mfc0", "dma-command", tag=2, bytes=64)
        t.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "cycle": 3,
            "source": "spu0",
            "kind": "dispatch",
            "fields": {"tid": 1, "pf": True},
        }

    def test_file_object_left_open(self, tmp_path):
        with open(tmp_path / "e.jsonl", "w") as fh:
            sink = JsonlSink(fh)
            sink.emit(TraceEvent(1, "c", "k"))
            sink.close()
            assert not fh.closed
        assert sink.emitted == 1

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()


class TestTeeSink:
    def test_fans_out_and_serves_queries(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "e.jsonl")
        t = Tracer(sink=TeeSink([memory, jsonl]))
        t.emit(1, "c", "k")
        t.close()
        # Queries find the in-memory member behind the tee.
        assert len(t.events) == 1
        assert jsonl.emitted == 1

    def test_no_memory_member_yields_empty_queries(self, tmp_path):
        t = Tracer(sink=JsonlSink(tmp_path / "e.jsonl"))
        t.emit(1, "c", "k")
        t.close()
        assert t.events == []
        assert len(t) == 0


class TestLegacySurface:
    def test_sim_trace_reexports(self):
        import repro.sim.trace as legacy
        import repro.obs.trace as v2

        for name in ("TraceEvent", "Tracer", "TraceSink", "MemorySink",
                     "JsonlSink", "TeeSink"):
            assert getattr(legacy, name) is getattr(v2, name)
