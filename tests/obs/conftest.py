"""Shared profiled runs for the observability tests.

Profiled runs are deterministic and moderately expensive, so the two
configurations several test modules inspect are session-scoped: a 2-SPE
bitcnt run (small, fast) and the acceptance-criterion 8-SPE mmul run.
"""

from __future__ import annotations

import pytest

from repro.bench.scale import builders
from repro.obs import profile_workload
from repro.sim.config import paper_config


@pytest.fixture(scope="session")
def bitcnt_profiled():
    """(result, profile) of prefetched bitcnt on 2 SPEs at test scale."""
    workload = builders("test")["bitcnt"]()
    return profile_workload(workload, paper_config(2), prefetch=True)


@pytest.fixture(scope="session")
def mmul8_profiled():
    """(result, profile) of prefetched mmul on the paper's 8-SPE machine."""
    workload = builders("test")["mmul"]()
    return profile_workload(workload, paper_config(8), prefetch=True)
