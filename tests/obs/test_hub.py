"""MetricsHub instruments: bounded rings, exact totals, the sampler."""

from __future__ import annotations

import pytest

from repro.bench.scale import builders
from repro.compiler.passes import prefetch_transform
from repro.cell.machine import Machine
from repro.obs.hub import (
    BucketSeries,
    Counter,
    GaugeSeries,
    HubConfig,
    MetricsHub,
)
from repro.sim.config import paper_config


class TestHubConfig:
    def test_defaults(self):
        cfg = HubConfig()
        assert cfg.bucket_cycles == 1024
        assert cfg.max_buckets == 4096
        assert cfg.sample_interval == 1024

    @pytest.mark.parametrize(
        "field", ["bucket_cycles", "max_buckets", "sample_interval"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError, match=field):
            HubConfig(**{field: 0})


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(41)
        assert c.value == 42


class TestBucketSeries:
    def test_bucketing(self):
        s = BucketSeries("s", bucket_cycles=10, max_buckets=100)
        s.add(0, 1)
        s.add(9, 2)
        s.add(10, 5)
        assert s.points() == [(0, 3), (10, 5)]
        assert s.total == 8

    def test_ring_is_bounded_and_total_exact(self):
        s = BucketSeries("s", bucket_cycles=10, max_buckets=4)
        for cycle in range(0, 100, 10):
            s.add(cycle, 1)
        assert len(s) == 4
        assert s.dropped_buckets == 6
        # Eviction never loses the scalar truth.
        assert s.total == 10
        assert s.points()[0][0] == 60  # oldest surviving bucket

    def test_out_of_order_add_folds_into_newest(self):
        s = BucketSeries("s", bucket_cycles=10, max_buckets=4)
        s.add(25, 1)
        s.add(12, 7)  # behind the newest bucket: folded, not reordered
        assert s.points() == [(20, 8)]
        assert s.total == 8

    def test_to_dict(self):
        s = BucketSeries("s", bucket_cycles=10, max_buckets=4)
        s.add(5, 3)
        d = s.to_dict()
        assert d == {
            "bucket_cycles": 10,
            "total": 3,
            "dropped_buckets": 0,
            "points": [[0, 3]],
        }


class TestGaugeSeries:
    def test_last_and_peak(self):
        g = GaugeSeries("g", bucket_cycles=10, max_buckets=100)
        g.observe(0, 3)
        g.observe(5, 9)
        g.observe(8, 2)
        assert g.last == 2
        assert g.peak == 9
        assert g.points() == [(0, 2, 9)]

    def test_ring_is_bounded(self):
        g = GaugeSeries("g", bucket_cycles=10, max_buckets=2)
        for cycle, v in [(0, 1), (10, 2), (20, 3)]:
            g.observe(cycle, v)
        assert len(g) == 2
        assert g.dropped_buckets == 1
        assert g.peak == 3


class TestMetricsHub:
    def test_get_or_create_returns_same_instrument(self):
        hub = MetricsHub()
        assert hub.counter("a") is hub.counter("a")
        assert hub.bucket_series("b") is hub.bucket_series("b")
        assert hub.gauge("c") is hub.gauge("c")

    def test_to_dict_shape(self):
        hub = MetricsHub(HubConfig(bucket_cycles=8))
        hub.counter("n").add(2)
        hub.bucket_series("s").add(3, 4)
        hub.gauge("g").observe(3, 5)
        d = hub.to_dict()
        assert d["config"]["bucket_cycles"] == 8
        assert d["counters"] == {"n": 2}
        assert d["series"]["s"]["total"] == 4
        assert d["gauges"]["g"]["peak"] == 5


class TestSamplerOnMachine:
    def test_sampler_populates_gauges(self):
        workload = builders("test")["bitcnt"]()
        machine = Machine(paper_config(2))
        hub = MetricsHub(HubConfig(sample_interval=64))
        machine.attach_hub(hub)
        machine.load(prefetch_transform(workload.activity))
        machine.run()
        assert machine.sampler is not None
        assert machine.sampler.samples > 0
        # The sampler saw live threads and pending engine events mid-run.
        assert hub.gauge("threads.live").peak > 0
        assert hub.gauge("engine.pending_events").peak > 0
        assert len(hub.gauge("threads.live")) > 0

    def test_disabled_hub_attach_is_noop(self):
        machine = Machine(paper_config(1))
        hub = MetricsHub(enabled=False)
        machine.attach_hub(hub)
        assert machine.hub is None
        assert machine.sampler is None
        assert all(
            c._hub is None for c in machine.engine.components
        )
