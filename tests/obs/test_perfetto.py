"""Perfetto export: schema validity, round-tripping, DMA overlap proof."""

from __future__ import annotations

import json

from repro.obs import dma_overlap_count, to_perfetto, validate_trace_events


class TestBitcntTrace:
    def test_validates_against_trace_event_schema(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        doc = to_perfetto(profile)
        assert validate_trace_events(doc) == []

    def test_round_trips_through_json(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        doc = to_perfetto(profile)
        assert json.loads(json.dumps(doc)) == doc

    def test_one_pipeline_track_per_spu(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        events = to_perfetto(profile)["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
        }
        assert {"spu0", "spu1"} <= names
        for spu in (0, 1):
            assert any(
                e["ph"] == "B" and e["pid"] == 1 and e["tid"] == spu
                for e in events
            )

    def test_dma_tag_group_tracks_are_async(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        events = to_perfetto(profile)["traceEvents"]
        opens = [e for e in events if e["ph"] == "b"]
        assert opens, "expected async DMA events"
        assert all(e["cat"] == "dma" and e["pid"] == 2 for e in opens)
        closes = [e for e in events if e["ph"] == "e"]
        assert len(opens) == len(closes)

    def test_timestamps_monotonic(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        ts = [e["ts"] for e in to_perfetto(profile)["traceEvents"]]
        assert ts == sorted(ts)


class TestMmul8Acceptance:
    def test_dma_overlaps_other_threads_execution(self, mmul8_profiled):
        """The paper's point, asserted on the 8-SPE machine: at least one
        DMA interval runs while a *different* thread executes."""
        _, profile = mmul8_profiled
        assert dma_overlap_count(profile) >= 1

    def test_all_eight_pipelines_have_tracks(self, mmul8_profiled):
        _, profile = mmul8_profiled
        doc = to_perfetto(profile)
        assert validate_trace_events(doc) == []
        busy_spus = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "B" and e["pid"] == 1
        }
        assert busy_spus == set(range(8))


class TestRecoveryMarkers:
    def test_data_fault_recovery_appears_as_instant_events(self):
        # A data-faulted run emits thread-reexec / dma-reverify trace
        # events; the exporter must surface them as instant markers on
        # the owning SPE's pipeline row, and the document must still
        # validate.
        from repro.bench.scale import builders
        from repro.obs import profile_workload
        from repro.sim.config import paper_config

        workload = builders("test")["bitcnt"]()
        cfg = paper_config(2).with_faults(
            "seed=1,data_flip=0.3,data_truncate=0.15,data_ls_stale=0.15,"
            "data_store_corrupt=0.1"
        )
        result, profile = profile_workload(workload, cfg, prefetch=True)
        assert result.stats.faults.any_recovered
        doc = to_perfetto(profile)
        assert validate_trace_events(doc) == []
        marks = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert marks, "expected recovery instant events"
        cats = {e["cat"] for e in marks}
        assert any(c.startswith("recovery,") for c in cats)
        if result.stats.faults.thread_reexecs:
            assert any(
                e["cat"] == "recovery,thread-reexec" and e["pid"] == 1
                for e in marks
            )
        if result.stats.faults.dma_refetches:
            assert any(
                e["cat"] == "recovery,dma-reverify" for e in marks
            )

    def test_clean_runs_emit_no_recovery_markers(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        doc = to_perfetto(profile)
        assert not [e for e in doc["traceEvents"] if e["ph"] == "i"]


class TestValidator:
    def test_rejects_unbalanced_begin(self):
        doc = {"traceEvents": [
            {"ph": "B", "ts": 0, "pid": 1, "tid": 0, "name": "x"},
        ]}
        assert any("unclosed B" in e for e in validate_trace_events(doc))

    def test_rejects_end_without_begin(self):
        doc = {"traceEvents": [
            {"ph": "E", "ts": 0, "pid": 1, "tid": 0, "name": "x"},
        ]}
        assert any("empty stack" in e for e in validate_trace_events(doc))

    def test_rejects_decreasing_timestamps(self):
        doc = {"traceEvents": [
            {"ph": "B", "ts": 5, "pid": 1, "tid": 0, "name": "x"},
            {"ph": "E", "ts": 1, "pid": 1, "tid": 0, "name": "x"},
        ]}
        assert any("decreases" in e for e in validate_trace_events(doc))

    def test_rejects_async_end_without_begin(self):
        doc = {"traceEvents": [
            {"ph": "e", "ts": 0, "pid": 2, "tid": 0, "cat": "dma", "id": "d"},
        ]}
        assert any("without open b" in e for e in validate_trace_events(doc))

    def test_rejects_missing_events(self):
        assert validate_trace_events({}) == [
            "traceEvents missing or not a list"
        ]
