"""Observability cost: disabled == absent, enabled == timing-neutral."""

from __future__ import annotations

import time

from repro.bench.scale import builders
from repro.cell.machine import Machine
from repro.compiler.passes import prefetch_transform
from repro.obs.hub import HubConfig, MetricsHub
from repro.sim.config import paper_config


def run_bitcnt(hub=None):
    workload = builders("test")["bitcnt"]()
    machine = Machine(paper_config(2))
    if hub is not None:
        machine.attach_hub(hub)
    machine.load(prefetch_transform(workload.activity))
    return machine, machine.run()


class TestDisabledHubIsAbsent:
    def test_identical_results_and_no_bindings(self):
        _, plain = run_bitcnt()
        machine, disabled = run_bitcnt(MetricsHub(enabled=False))
        assert disabled.cycles == plain.cycles
        assert disabled.stats.mix.total == plain.stats.mix.total
        assert machine.hub is None
        assert machine.sampler is None
        # No component holds an instrument: the hot paths stay on the
        # single `is not None` fast branch and allocate nothing.
        for component in machine.engine.components:
            assert component._hub is None

    def test_disabled_hub_records_nothing(self):
        hub = MetricsHub(enabled=False)
        run_bitcnt(hub)
        assert hub.counters == {}
        assert hub.series == {}
        assert hub.gauges == {}

    def test_wall_clock_overhead_small(self):
        """min-of-5 wall clock with a disabled hub stays within 25% of a
        plain run (the issue asks ≤2%; the generous bound absorbs CI
        noise while still catching an accidentally-enabled slow path).
        Five samples rather than three: the decoded fast path made the
        run short enough that scheduler noise can dominate a min-of-3."""

        def best_of(n, fn):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        run_bitcnt()  # warm caches / imports
        plain = best_of(5, run_bitcnt)
        disabled = best_of(5, lambda: run_bitcnt(MetricsHub(enabled=False)))
        assert disabled <= plain * 1.25, (
            f"disabled-hub run {disabled:.3f}s vs plain {plain:.3f}s"
        )


class TestEnabledHubIsTimingNeutral:
    def test_identical_cycles_with_hub_attached(self):
        _, plain = run_bitcnt()
        _, observed = run_bitcnt(
            MetricsHub(HubConfig(sample_interval=64))
        )
        assert observed.cycles == plain.cycles
        assert observed.stats.mix.total == plain.stats.mix.total
        assert (
            observed.stats.mfc.commands == plain.stats.mfc.commands
        )
