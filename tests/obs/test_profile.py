"""The profiler as an independent witness of the stats pipeline."""

from __future__ import annotations

import json

import pytest

from repro.bench.export import run_to_dict
from repro.bench.scale import builders
from repro.obs import Profile, metrics_csv, profile_activity, profile_workload
from repro.sim.config import paper_config
from repro.sim.stats import Bucket


class TestAgreementWithStats:
    """Hub-derived numbers must reproduce MachineStats, not approximate it."""

    def test_pipeline_usage_matches_stats(self, bitcnt_profiled):
        result, profile = bitcnt_profiled
        stats_usage = [s.pipeline_usage for s in result.stats.spus]
        assert profile.pipeline_usage_per_spu == pytest.approx(
            stats_usage, rel=1e-3
        )
        assert profile.average_pipeline_usage == pytest.approx(
            result.stats.average_pipeline_usage, rel=1e-3
        )

    def test_breakdown_matches_stats(self, bitcnt_profiled):
        result, profile = bitcnt_profiled
        avg = result.stats.average_breakdown
        for bucket in Bucket.ALL:
            assert profile.breakdown_cycles[bucket] == pytest.approx(
                getattr(avg, bucket), abs=8
            ), bucket

    def test_profiled_run_is_timing_neutral(self):
        from repro.bench.runner import run_workload

        plain = run_workload(
            builders("test")["bitcnt"](), paper_config(2), prefetch=True
        )
        result, _ = profile_workload(
            builders("test")["bitcnt"](), paper_config(2), prefetch=True
        )
        assert result.cycles == plain.cycles
        assert result.stats.mix.total == plain.stats.mix.total

    def test_totals_match_stats(self, bitcnt_profiled):
        result, profile = bitcnt_profiled
        assert profile.totals["dma_commands"] == result.stats.mfc.commands
        assert profile.totals["bus_transfers"] == result.stats.bus.transfers
        assert profile.totals["instructions"] == result.stats.mix.total


class TestProfileSerialization:
    def test_round_trip(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        clone = Profile.from_dict(json.loads(profile.to_json()))
        assert clone.cycles == profile.cycles
        assert clone.pipeline_usage_per_spu == profile.pipeline_usage_per_spu
        assert clone.totals == profile.totals

    def test_unknown_version_rejected(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        data = profile.to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Profile.from_dict(data)

    def test_export_embeds_summary(self, bitcnt_profiled):
        result, profile = bitcnt_profiled
        d = run_to_dict(result, profile=profile)
        assert d["obs"]["pipeline_usage"] == profile.average_pipeline_usage
        assert d["obs"]["totals"]["dma_commands"] == (
            profile.totals["dma_commands"]
        )
        assert "obs" not in run_to_dict(result)

    def test_metrics_csv(self, bitcnt_profiled):
        _, profile = bitcnt_profiled
        lines = metrics_csv(profile).splitlines()
        assert lines[0] == "instrument,name,bucket_start,value,extra"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"counter", "series", "gauge"}


class TestEntryPoints:
    def test_profile_activity_raw(self):
        workload = builders("test")["bitcnt"]()
        result, profile = profile_activity(
            workload.activity, config=paper_config(1)
        )
        assert result.cycles > 0
        assert profile.spes == 1
        assert profile.prefetch is False

    def test_trace_jsonl_streams_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        profile_workload(
            builders("test")["bitcnt"](), paper_config(1),
            prefetch=True, trace_jsonl=path,
        )
        lines = path.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "dispatch" in kinds
        assert "dma-command" in kinds

    def test_wrong_output_raises(self):
        workload = builders("test")["bitcnt"]()
        key = next(iter(workload.oracle))
        workload.oracle[key] = [v + 1 for v in workload.oracle[key]]
        with pytest.raises(AssertionError, match="wrong"):
            profile_workload(workload, paper_config(1), prefetch=True)


class TestBoundedMemory:
    def test_ring_eviction_keeps_totals(self):
        """Tiny ring: buckets drop, totals and usage stay exact."""
        from repro.obs.hub import HubConfig

        workload = builders("test")["bitcnt"]()
        result, profile = profile_workload(
            workload, paper_config(2), prefetch=True,
            hub_config=HubConfig(bucket_cycles=64, max_buckets=4,
                                 sample_interval=64),
        )
        series = profile.metrics["series"]
        assert any(s["dropped_buckets"] > 0 for s in series.values())
        assert all(len(s["points"]) <= 4 for s in series.values())
        assert profile.average_pipeline_usage == pytest.approx(
            result.stats.average_pipeline_usage, rel=1e-3
        )
