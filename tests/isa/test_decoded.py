"""Decoded-instruction tables: value functions pinned, rows faithful.

The fast execution paths (``SPU._issue_cycle_fast`` and the decoded
interpreter loop) trust :mod:`repro.isa.decoded` completely, so this
suite pins the decoded closures to the canonical semantics in
:mod:`repro.isa.semantics` over a value grid, and checks the row fields
and fast-forward run lengths against first principles.
"""

from __future__ import annotations

import pytest

from repro.isa.builder import ThreadBuilder
from repro.isa.decoded import (
    _ALU_FN,
    _BRANCH_FN,
    D_AVAL,
    D_BREG,
    D_BVAL,
    D_FF,
    D_FN,
    D_HAZ,
    D_KIND,
    D_LAT,
    D_MEM,
    D_NAME,
    D_RD,
    D_TARGET,
    K_ALU,
    K_BRANCH,
    K_STOP,
    decode_program,
)
from repro.isa.opcodes import Op, Slot, spec_of
from repro.isa.program import BlockKind
from repro.isa.semantics import (
    ArithmeticFault,
    alu_result,
    branch_taken,
)

#: Edge-heavy operand grid: signs, zero, wrap boundaries, shift widths.
GRID = (
    0, 1, -1, 2, -2, 7, 63, 64, 100, -100,
    2**31, -(2**31), 2**62, -(2**62), 2**63 - 1, -(2**63),
)


class TestValueFunctionsPinned:
    @pytest.mark.parametrize("op", sorted(_ALU_FN, key=lambda o: o.value))
    def test_alu_fn_matches_alu_result_on_grid(self, op):
        fn = _ALU_FN[op]
        for a in GRID:
            for b in GRID:
                try:
                    expected = alu_result(op, a, b)
                except ArithmeticFault:
                    with pytest.raises(ArithmeticFault):
                        fn(a, b)
                    continue
                assert fn(a, b) == expected, (op, a, b)

    @pytest.mark.parametrize("op", sorted(_BRANCH_FN, key=lambda o: o.value))
    def test_branch_fn_matches_branch_taken_on_grid(self, op):
        fn = _BRANCH_FN[op]
        for a in GRID:
            for b in GRID:
                assert fn(a, b) == branch_taken(op, a, b), (op, a, b)

    def test_every_alu_and_branch_op_is_covered(self):
        # A new opcode must get a decoded closure (or the decoder would
        # KeyError at decode time) *and* a grid pin here.
        for op in Op:
            spec = spec_of(op)
            if spec.is_branch:
                assert op in _BRANCH_FN
            elif spec.slot is Slot.ALU and op is not Op.NOP:
                assert op in _ALU_FN


def ex_program(body):
    """Build a one-block EX program: ``body(b)`` then STOP."""
    b = ThreadBuilder("t")
    with b.block(BlockKind.EX):
        body(b)
        b.stop()
    return b.build()


class TestRowFields:
    def test_immediate_alu_folds_imm_into_bval(self):
        prog = ex_program(lambda b: (b.li("x", 5), b.addi("x", "x", 37)))
        rows = decode_program(prog).rows
        addi = rows[1]
        assert addi[D_KIND] == K_ALU
        assert addi[D_BREG] is None
        assert addi[D_BVAL] == 37
        assert addi[D_NAME] == Op.ADDI.value

    def test_li_carries_value_in_bval(self):
        rows = decode_program(ex_program(lambda b: b.li("x", 123))).rows
        li = rows[0]
        assert li[D_BREG] is None and li[D_BVAL] == 123
        assert li[D_FN](0, li[D_BVAL]) == 123

    def test_nop_has_no_value_function(self):
        rows = decode_program(ex_program(lambda b: b.nop())).rows
        nop = rows[0]
        assert nop[D_KIND] == K_ALU
        assert nop[D_FN] is None
        assert nop[D_RD] is None

    def test_latency_and_hazard_registers(self):
        def body(b):
            b.li("x", 3)
            b.muli("y", "x", 7)

        rows = decode_program(ex_program(body)).rows
        muli = rows[1]
        assert muli[D_LAT] == spec_of(Op.MULI).result_latency == 2
        # Hazard set covers ra and rd (WAW), in ra, rb, rd order.
        x, y = rows[0][D_RD], muli[D_RD]
        assert muli[D_HAZ] == (x, y)

    def test_branch_row_resolves_target(self):
        def body(b):
            b.li("x", 0)
            b.label("top")
            b.addi("x", "x", 1)
            b.bne("x", "x", "top")

        rows = decode_program(ex_program(body)).rows
        bne = rows[2]
        assert bne[D_KIND] == K_BRANCH
        assert bne[D_TARGET] == 1
        assert not bne[D_MEM]

    def test_stop_is_a_mem_slot_row(self):
        rows = decode_program(ex_program(lambda b: b.li("x", 1))).rows
        assert rows[-1][D_KIND] == K_STOP
        assert rows[-1][D_MEM]


class TestFastForwardRunLengths:
    def test_straight_alu_run_counts_down_to_the_stop(self):
        def body(b):
            b.li("a", 1)
            b.li("b", 2)
            b.add("c", "a", "b")
            b.add("d", "c", "c")

        rows = decode_program(ex_program(body)).rows
        # The last ALU op precedes STOP (MEM slot): the per-cycle path
        # would dual-issue them, so its ff must be 0.
        assert [r[D_FF] for r in rows] == [3, 2, 1, 0, 0]

    def test_branch_terminates_the_run(self):
        def body(b):
            b.li("x", 4)
            b.li("y", 0)
            b.label("top")
            b.addi("y", "y", 1)
            b.subi("x", "x", 1)
            b.bnez("x", "top")

        rows = decode_program(ex_program(body)).rows
        ffs = [r[D_FF] for r in rows]
        # The two ALU ops before the branch may fast-forward (the branch
        # occupies the ALU slot next cycle); the branch itself may not.
        assert ffs == [4, 3, 2, 1, 0, 0]

    def test_mem_slot_successor_zeroes_ff(self):
        def body(b):
            b.li("x", 9)
            b.lstore("x", 0, "x")
            b.addi("x", "x", 1)

        rows = decode_program(ex_program(body)).rows
        ffs = [r[D_FF] for r in rows]
        # li precedes LSTORE (MEM): dual-issue candidate, ff = 0.
        # addi precedes STOP (MEM): same.  LSTORE is not ALU: ff = 0.
        assert ffs == [0, 0, 0, 0]

    def test_nops_participate_in_runs(self):
        def body(b):
            b.li("x", 1)
            b.nop()
            b.nop()
            b.addi("x", "x", 1)

        rows = decode_program(ex_program(body)).rows
        assert [r[D_FF] for r in rows] == [3, 2, 1, 0, 0]

    def test_decode_is_cached_per_program(self):
        prog = ex_program(lambda b: b.li("x", 1))
        assert prog.decoded is prog.decoded
