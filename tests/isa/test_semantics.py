"""Functional ALU/branch semantics, including 64-bit wrap properties."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import Op
from repro.isa.semantics import (
    ArithmeticFault,
    alu_result,
    branch_taken,
    to_unsigned64,
    wrap64,
)

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
anyint = st.integers(min_value=-(2**70), max_value=2**70)


class TestWrap64:
    @given(anyint)
    def test_wrap_is_idempotent(self, v):
        assert wrap64(wrap64(v)) == wrap64(v)

    @given(anyint)
    def test_wrap_range(self, v):
        w = wrap64(v)
        assert -(2**63) <= w < 2**63

    @given(i64)
    def test_wrap_identity_in_range(self, v):
        assert wrap64(v) == v

    @given(i64)
    def test_unsigned_roundtrip(self, v):
        assert wrap64(to_unsigned64(v)) == v

    def test_overflow_wraps(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(-(2**63) - 1) == 2**63 - 1


class TestArithmetic:
    @given(i64, i64)
    def test_add_matches_python_mod_2_64(self, a, b):
        assert alu_result(Op.ADD, a, b) == wrap64(a + b)

    @given(i64, i64)
    def test_sub(self, a, b):
        assert alu_result(Op.SUB, a, b) == wrap64(a - b)

    @given(st.integers(-(2**31), 2**31), st.integers(-(2**31), 2**31))
    def test_mul(self, a, b):
        assert alu_result(Op.MUL, a, b) == wrap64(a * b)

    def test_div_truncates_toward_zero(self):
        assert alu_result(Op.DIV, 7, 2) == 3
        assert alu_result(Op.DIV, -7, 2) == -3
        assert alu_result(Op.DIV, 7, -2) == -3

    def test_mod_sign_follows_dividend(self):
        assert alu_result(Op.MOD, 7, 3) == 1
        assert alu_result(Op.MOD, -7, 3) == -1

    @given(i64, i64.filter(lambda b: b != 0))
    def test_div_mod_identity(self, a, b):
        q = alu_result(Op.DIV, a, b)
        r = alu_result(Op.MOD, a, b)
        assert wrap64(q * b + r) == a

    def test_div_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            alu_result(Op.DIV, 1, 0)
        with pytest.raises(ArithmeticFault):
            alu_result(Op.MOD, 1, 0)

    def test_min_max(self):
        assert alu_result(Op.MIN, -3, 5) == -3
        assert alu_result(Op.MAX, -3, 5) == 5

    def test_mov_li(self):
        assert alu_result(Op.MOV, 42, 0) == 42
        assert alu_result(Op.LI, 0, 42) == 42

    def test_non_alu_op_rejected(self):
        with pytest.raises(ValueError):
            alu_result(Op.READ, 1, 2)


class TestLogicAndShifts:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_bitwise_match_python(self, a, b):
        assert alu_result(Op.AND, a, b) == a & b
        assert alu_result(Op.OR, a, b) == a | b
        assert alu_result(Op.XOR, a, b) == a ^ b

    def test_shr_is_logical(self):
        # -1 >> 1 arithmetic would be -1; logical gives 2**63 - 1.
        assert alu_result(Op.SHR, -1, 1) == 2**63 - 1

    @given(st.integers(0, 2**32 - 1), st.integers(0, 63))
    def test_shift_roundtrip_small_values(self, v, s):
        shifted = alu_result(Op.SHL, v, s)
        if v < 2 ** (63 - s):
            assert alu_result(Op.SHR, shifted, s) == v

    def test_shift_amount_uses_low_six_bits(self):
        assert alu_result(Op.SHL, 1, 64) == 1
        assert alu_result(Op.SHR, 4, 65) == 2

    @given(st.integers(0, 2**16 - 1))
    def test_popcount_via_nifty_sequence(self, v):
        """The bitcnt 'nifty' kernel's maths, checked against bin().count."""
        x = alu_result(Op.SUB, v, alu_result(Op.AND, v >> 1, 0x55555555))
        x = alu_result(
            Op.ADD,
            alu_result(Op.AND, x, 0x33333333),
            alu_result(Op.AND, x >> 2, 0x33333333),
        )
        x = alu_result(Op.AND, alu_result(Op.ADD, x, x >> 4), 0x0F0F0F0F)
        x = alu_result(Op.SHR, alu_result(Op.MUL, x, 0x01010101), 24) & 0xFF
        assert x == bin(v).count("1")


class TestComparisons:
    @given(i64, i64)
    def test_slt_seq(self, a, b):
        assert alu_result(Op.SLT, a, b) == int(a < b)
        assert alu_result(Op.SEQ, a, b) == int(a == b)


class TestBranches:
    @given(i64, i64)
    def test_branch_conditions(self, a, b):
        assert branch_taken(Op.BEQ, a, b) == (a == b)
        assert branch_taken(Op.BNE, a, b) == (a != b)
        assert branch_taken(Op.BLT, a, b) == (a < b)
        assert branch_taken(Op.BGE, a, b) == (a >= b)

    @given(i64)
    def test_zero_branches(self, a):
        assert branch_taken(Op.BEQZ, a) == (a == 0)
        assert branch_taken(Op.BNEZ, a) == (a != 0)

    def test_jmp_always_taken(self):
        assert branch_taken(Op.JMP, 0, 0)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Op.ADD, 1, 1)
