"""Assembly text format: parsing, errors, disassembly round-trips."""

from __future__ import annotations

import pytest

from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.isa.asm import AsmError, parse_program
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ProgramError


SIMPLE = """
; thread template 'sum2'
.PL:
   0  LOAD r0, #0
   1  LOAD r1, #1
.EX:
   2  ADD r0, r0, r1
   3  STOP
"""


class TestParsing:
    def test_simple_program(self):
        prog = parse_program(SIMPLE)
        assert prog.name == "sum2"
        assert [i.op for i in prog.flat] == [Op.LOAD, Op.LOAD, Op.ADD, Op.STOP]
        assert prog.frame_words == 2  # inferred from LOAD slots

    def test_name_override(self):
        assert parse_program(SIMPLE, name="other").name == "other"

    def test_indices_are_optional(self):
        prog = parse_program(".EX:\nLI r0, #5\nSTOP\n")
        assert prog.flat[0].imm == 5

    def test_comments_preserved(self):
        prog = parse_program(".EX:\nLI r0, #5 ; the answer\nSTOP\n")
        assert prog.flat[0].comment == "the answer"

    def test_immediate_sources(self):
        prog = parse_program(".EX:\nMOV r1, #7\nSTOP\n")
        from repro.isa.instructions import Imm

        assert prog.flat[0].ra == Imm(7)

    def test_branch_targets(self):
        text = """
        .EX:
           0  LI r0, #3
           1  SUBI r0, r0, #1
           2  BNEZ r0, @1
           3  STOP
        """
        prog = parse_program(text)
        assert prog.flat[2].target == 1

    def test_dma_operands(self):
        text = """
        .PF:
           0  LSALLOC r1, #64
           1  LOAD r2, #0
           2  DMAGET r1, r2, #64, t3
           3  DMAGETS r1, r2, #8, t4, +32
        .EX:
           4  STOP
        """
        prog = parse_program(text)
        get = prog.flat[2]
        assert get.tag == 3 and get.imm == 64
        gets = prog.flat[3]
        assert gets.op is Op.DMAGETS and gets.stride == 32 and gets.tag == 4

    def test_frame_and_ptr_directives(self):
        text = """
        frame 8
        ptr 0 A
        .PL:
           0  LOAD r0, #0
        .EX:
           1  STOP
        """
        prog = parse_program(text)
        assert prog.frame_words == 8
        assert prog.pointer_params[0].obj == "A"


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            parse_program(".EX:\nFLY r0, r1\nSTOP\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="expects"):
            parse_program(".EX:\nADD r0, r1\nSTOP\n")

    def test_bad_operand_kind(self):
        with pytest.raises(AsmError, match="destination"):
            parse_program(".EX:\nLI #0, #1\nSTOP\n")

    def test_instruction_outside_block(self):
        with pytest.raises(AsmError, match="before any block"):
            parse_program("LI r0, #1\n")

    def test_duplicate_block(self):
        with pytest.raises(AsmError, match="duplicate block"):
            parse_program(".EX:\n.EX:\nSTOP\n")

    def test_empty_text(self):
        with pytest.raises(AsmError, match="no code blocks"):
            parse_program("; nothing here\n")

    def test_program_validation_still_applies(self):
        # Parsed programs go through the same block-discipline checks.
        with pytest.raises(ProgramError, match="STOP"):
            parse_program(".EX:\nNOP\n")


def all_templates():
    """Every template of every workload, baseline and transformed."""
    from repro.workloads import bitcount, colsum, inplace, matmul, zoom

    activities = [
        matmul.build(n=4, threads=2).activity,
        zoom.build(n=4, z=2, threads=2).activity,
        bitcount.build(iterations=4, unroll=2).activity,
        colsum.build(n=4, mode="gather").activity,
        inplace.build(n=4, threads=2).activity,
    ]
    out = []
    for act in activities:
        out.extend(act.templates)
        try:
            transformed = prefetch_transform(
                act, PrefetchOptions(allow_writeback=True)
            )
        except Exception:
            transformed = prefetch_transform(act)
        out.extend(transformed.templates)
    return out


class TestRoundTrip:
    @pytest.mark.parametrize(
        "template", all_templates(), ids=lambda t: t.name
    )
    def test_disassemble_parse_roundtrip(self, template):
        """parse(disassemble(p)) reproduces p's instructions exactly
        (modulo access annotations, which have no text form)."""
        text = template.disassemble()
        back = parse_program(
            text + f"\nframe {template.frame_words}\n"
        )
        assert back.name == template.name
        assert len(back.flat) == len(template.flat)
        for a, b in zip(template.flat, back.flat):
            assert a.op is b.op
            assert a.rd == b.rd and a.ra == b.ra and a.rb == b.rb
            assert a.imm == b.imm and a.target == b.target
            assert a.tag == b.tag and a.stride == b.stride
        assert back.block_ranges == template.block_ranges
