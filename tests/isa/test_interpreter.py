"""The functional reference interpreter + differential testing.

The headline property: for every workload (baseline, prefetched,
write-back, gathered), the cycle-level machine's final main memory must
match the timing-free golden model word for word.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.machine import Machine
from repro.compiler.passes import PrefetchOptions, prefetch_transform
from repro.isa.interpreter import (
    FunctionalMachine,
    InterpreterError,
    run_functional,
)
from repro.testing import small_config
from repro.workloads import bitcount, colsum, inplace, matmul, zoom


def assert_equivalent(activity, spes=2):
    """Run both machines; compare every global object's final state."""
    golden = run_functional(activity)
    sim = Machine(small_config(num_spes=spes))
    sim.load(activity)
    sim.run()
    for obj in activity.globals:
        assert sim.read_global(obj.name) == golden.read_global(obj.name), (
            f"{activity.name}: object {obj.name!r} diverges between the "
            f"cycle simulator and the functional golden model"
        )


class TestGoldenModel:
    def test_matches_matmul_oracle(self):
        wl = matmul.build(n=4, threads=2)
        golden = run_functional(wl.activity)
        assert golden.read_global("C") == wl.oracle["C"]

    def test_matches_bitcnt_oracle(self):
        wl = bitcount.build(iterations=8, unroll=4)
        golden = run_functional(wl.activity)
        assert golden.read_global("results") == wl.oracle["results"]

    def test_counts_threads_and_instructions(self):
        wl = matmul.build(n=4, threads=2)
        golden = run_functional(wl.activity)
        assert golden.threads_run == 3  # join + 2 workers
        assert golden.instructions > 100

    def test_detects_sc_overflow(self):
        from repro.core.activity import GlobalObject, ObjRef, SpawnSpec, TLPActivity
        from repro.isa.builder import ThreadBuilder
        from repro.isa.program import BlockKind

        b = ThreadBuilder("over")
        b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", 0)
        with b.block(BlockKind.EX):
            b.stop()
        act = TLPActivity(
            name="bad",
            templates=[b.build()],
            spawns=[SpawnSpec(template="over", stores={0: 1, 1: 2},
                              extra_sc=-1)],  # SC smaller than stores
        )
        with pytest.raises(InterpreterError, match="more stores"):
            run_functional(act)

    def test_detects_starved_thread(self):
        from repro.core.activity import SpawnSpec, TLPActivity
        from repro.isa.builder import ThreadBuilder
        from repro.isa.program import BlockKind

        b = ThreadBuilder("starved")
        b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", 0)
        with b.block(BlockKind.EX):
            b.stop()
        act = TLPActivity(
            name="starve",
            templates=[b.build()],
            spawns=[SpawnSpec(template="starved", extra_sc=2)],  # no producer
        )
        with pytest.raises(InterpreterError, match="never fired"):
            run_functional(act)


class TestDifferential:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: matmul.build(n=4, threads=2).activity,
            lambda: zoom.build(n=4, z=2, threads=2).activity,
            lambda: bitcount.build(iterations=8, unroll=4).activity,
            lambda: colsum.build(n=8, mode="gather").activity,
            lambda: inplace.build(n=8, threads=4).activity,
        ],
        ids=["mmul", "zoom", "bitcnt", "colsum", "brighten"],
    )
    def test_baseline_activities_match_golden_model(self, build):
        assert_equivalent(build())

    @pytest.mark.parametrize(
        "build",
        [
            lambda: prefetch_transform(matmul.build(n=4, threads=2).activity),
            lambda: prefetch_transform(
                zoom.build(n=4, z=2, threads=2).activity
            ),
            lambda: prefetch_transform(
                bitcount.build(iterations=8, unroll=4).activity
            ),
            lambda: prefetch_transform(
                colsum.build(n=8, mode="gather").activity
            ),
            lambda: prefetch_transform(
                inplace.build(n=8, threads=4).activity,
                PrefetchOptions(allow_writeback=True),
            ),
        ],
        ids=["mmul", "zoom", "bitcnt", "colsum-gather", "brighten-wb"],
    )
    def test_transformed_activities_match_golden_model(self, build):
        assert_equivalent(build())

    def test_golden_model_is_fast(self):
        """Sanity check of the interpreter's reason to exist."""
        import time

        wl = matmul.build(n=16, threads=16)
        t0 = time.perf_counter()
        run_functional(wl.activity)
        assert time.perf_counter() - t0 < 2.0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(2, 8),
    spes=st.integers(1, 4),
    prefetch=st.booleans(),
)
def test_differential_property_mmul(n, spes, prefetch):
    """Random sizes, machine widths and variants: memory always matches."""
    wl = matmul.build(n=2 * (n // 2 + 1), threads=2)
    activity = wl.activity
    if prefetch:
        activity = prefetch_transform(activity)
    assert_equivalent(activity, spes=spes)
