"""Assembler DSL: registers, slots, labels, loops, block handling."""

from __future__ import annotations

import pytest

from repro.isa.builder import BuilderError, ThreadBuilder
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ProgramError


def minimal(name="t"):
    b = ThreadBuilder(name)
    return b


class TestRegisters:
    def test_symbolic_registers_are_stable(self):
        b = minimal()
        assert b.reg("x") == b.reg("x")
        assert b.reg("x") != b.reg("y")

    def test_register_exhaustion(self):
        b = ThreadBuilder("t", num_registers=2)
        b.reg("a")
        b.reg("b")
        with pytest.raises(BuilderError, match="out of registers"):
            b.reg("c")


class TestSlots:
    def test_slots_allocate_in_order(self):
        b = minimal()
        assert b.slot("a") == 0
        assert b.slot("b") == 1
        assert b.slot("a") == 0  # idempotent

    def test_pointer_slot_records_param(self):
        b = minimal()
        b.pointer_slot("A_ptr", obj="A")
        with b.block(BlockKind.PL):
            b.load("ra", "A_ptr")
        with b.block(BlockKind.EX):
            b.stop()
        prog = b.build()
        assert len(prog.pointer_params) == 1
        assert prog.pointer_params[0].obj == "A"

    def test_pointer_slot_conflicting_object_rejected(self):
        b = minimal()
        b.pointer_slot("p", obj="A")
        with pytest.raises(BuilderError):
            b.pointer_slot("p", obj="B")

    def test_reserve_slots(self):
        b = minimal()
        b.slot("a")
        first = b.reserve_slots(3)
        assert first == 1
        assert b.frame_words == 4


class TestBlocks:
    def test_instructions_need_a_block(self):
        b = minimal()
        with pytest.raises(BuilderError, match="outside of a block"):
            b.nop()

    def test_blocks_cannot_nest(self):
        b = minimal()
        with b.block(BlockKind.EX):
            with pytest.raises(BuilderError, match="nest"):
                with b.block(BlockKind.PL):
                    pass

    def test_block_contents_land_in_right_block(self):
        b = minimal()
        s = b.slot("x")
        with b.block(BlockKind.PL):
            b.load("v", s)
        with b.block(BlockKind.EX):
            b.addi("v", "v", 1)
            b.stop()
        prog = b.build()
        assert [i.op for i in prog.block(BlockKind.PL)] == [Op.LOAD]
        assert [i.op for i in prog.block(BlockKind.EX)] == [Op.ADDI, Op.STOP]


class TestLabels:
    def test_branch_resolves_to_flat_index(self):
        b = minimal()
        with b.block(BlockKind.EX):
            b.li("x", 3)
            top = b.label("top")
            b.subi("x", "x", 1)
            b.bnez("x", top)
            b.stop()
        prog = b.build()
        branch = prog.flat[2]
        assert branch.op is Op.BNEZ and branch.target == 1

    def test_undefined_label_rejected(self):
        b = minimal()
        with b.block(BlockKind.EX):
            b.jmp("nowhere")
            b.stop()
        with pytest.raises(BuilderError, match="undefined label"):
            b.build()

    def test_duplicate_label_rejected(self):
        b = minimal()
        with b.block(BlockKind.EX):
            b.label("x")
            with pytest.raises(BuilderError, match="duplicate"):
                b.label("x")

    def test_cross_block_branch_rejected(self):
        b = minimal()
        with b.block(BlockKind.PL):
            b.label("pl_top")
            b.load("v", b.slot("s"))
        with b.block(BlockKind.EX):
            b.jmp("pl_top")
            b.stop()
        with pytest.raises(ProgramError, match="branches must stay"):
            b.build()

    def test_label_outside_block_rejected(self):
        b = minimal()
        with pytest.raises(BuilderError):
            b.label("x")

    def test_auto_label_names_unique(self):
        b = minimal()
        with b.block(BlockKind.EX):
            l1 = b.label()
            l2 = b.label()
            b.stop()
        assert l1 != l2


class TestForRange:
    def test_counts_correctly(self):
        from repro.testing import run_program
        from repro.core.activity import GlobalObject, ObjRef

        b = ThreadBuilder("counter")
        out = b.slot("out")
        with b.block(BlockKind.PL):
            b.load("rout", out)
        with b.block(BlockKind.EX):
            b.li("acc", 0)
            with b.for_range("i", 0, 7):
                b.add("acc", "acc", "i")
            b.write("rout", 0, "acc")
            b.stop()
        res = run_program(
            b,
            stores={"out": ObjRef("out")},
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == sum(range(7))

    def test_register_stop_bound(self):
        from repro.testing import run_program
        from repro.core.activity import GlobalObject, ObjRef

        b = ThreadBuilder("counter")
        out, n = b.slot("out"), b.slot("n")
        with b.block(BlockKind.PL):
            b.load("rout", out)
            b.load("rn", n)
        with b.block(BlockKind.EX):
            b.li("acc", 0)
            with b.for_range("i", 0, "rn"):
                b.addi("acc", "acc", 2)
            b.write("rout", 0, "acc")
            b.stop()
        res = run_program(
            b,
            stores={"out": ObjRef("out"), "n": 5},
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == 10

    def test_zero_step_rejected(self):
        b = minimal()
        with b.block(BlockKind.EX):
            with pytest.raises(BuilderError):
                with b.for_range("i", 0, 4, step=0):
                    pass


class TestOperandCoercion:
    def test_int_sources_become_immediates(self):
        b = minimal()
        with b.block(BlockKind.EX):
            instr = b.mov("x", 5)
            b.stop()
        from repro.isa.instructions import Imm

        assert instr.ra == Imm(5)

    def test_bad_destination_rejected(self):
        b = minimal()
        with b.block(BlockKind.EX):
            with pytest.raises(BuilderError):
                b.mov(5, "x")  # type: ignore[arg-type]
