"""ThreadProgram: block discipline, flat view, validation."""

from __future__ import annotations

import pytest

from repro.isa.builder import ThreadBuilder
from repro.isa.instructions import Instruction, Reg
from repro.isa.opcodes import Op
from repro.isa.program import BlockKind, ProgramError, ThreadProgram


def simple_program():
    b = ThreadBuilder("p")
    s = b.slot("in")
    with b.block(BlockKind.PL):
        b.load("x", s)
    with b.block(BlockKind.EX):
        b.addi("x", "x", 1)
    with b.block(BlockKind.PS):
        b.stop()
    return b.build()


class TestStructure:
    def test_flat_order_is_pf_pl_ex_ps(self):
        prog = simple_program()
        assert [i.op for i in prog.flat] == [Op.LOAD, Op.ADDI, Op.STOP]

    def test_block_ranges(self):
        prog = simple_program()
        assert prog.block_ranges[BlockKind.PL] == (0, 1)
        assert prog.block_ranges[BlockKind.EX] == (1, 2)
        assert prog.block_ranges[BlockKind.PS] == (2, 3)

    def test_block_of(self):
        prog = simple_program()
        assert prog.block_of(0) is BlockKind.PL
        assert prog.block_of(2) is BlockKind.PS
        with pytest.raises(IndexError):
            prog.block_of(3)

    def test_len(self):
        assert len(simple_program()) == 3

    def test_has_prefetch(self):
        assert not simple_program().has_prefetch

    def test_empty_blocks_are_dropped(self):
        prog = ThreadProgram(
            name="t",
            blocks={
                BlockKind.PL: (),
                BlockKind.EX: (Instruction(op=Op.STOP),),
            },
        )
        assert BlockKind.PL not in prog.blocks


class TestDiscipline:
    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            ThreadProgram(name="t", blocks={})

    def test_missing_stop_rejected(self):
        with pytest.raises(ProgramError, match="STOP"):
            ThreadProgram(
                name="t",
                blocks={BlockKind.EX: (Instruction(op=Op.NOP),)},
            )

    def test_two_stops_rejected(self):
        with pytest.raises(ProgramError, match="exactly one STOP"):
            ThreadProgram(
                name="t",
                blocks={
                    BlockKind.EX: (
                        Instruction(op=Op.STOP),
                        Instruction(op=Op.STOP),
                    )
                },
            )

    def test_stop_not_last_rejected(self):
        with pytest.raises(ProgramError, match="final"):
            ThreadProgram(
                name="t",
                blocks={
                    BlockKind.EX: (
                        Instruction(op=Op.STOP),
                        Instruction(op=Op.NOP),
                    )
                },
            )

    @pytest.mark.parametrize(
        "op,kind",
        [
            (Op.LOAD, BlockKind.EX),   # no frame reads in EX (paper rule)
            (Op.STORE, BlockKind.EX),  # stores belong to PS
            (Op.READ, BlockKind.PL),   # global reads live in EX
            (Op.DMAGET, BlockKind.EX),  # DMA programming belongs to PF
            (Op.LSALLOC, BlockKind.PL),
        ],
    )
    def test_opcode_block_restrictions(self, op, kind):
        instr = {
            Op.LOAD: Instruction(op=Op.LOAD, rd=0, imm=0),
            Op.STORE: Instruction(op=Op.STORE, ra=Reg(0), rb=Reg(1), imm=0),
            Op.READ: Instruction(op=Op.READ, rd=0, ra=Reg(1), imm=0),
            Op.DMAGET: Instruction(op=Op.DMAGET, ra=Reg(0), rb=Reg(1), imm=4,
                                   tag=0),
            Op.LSALLOC: Instruction(op=Op.LSALLOC, rd=0, imm=16),
        }[op]
        blocks = {kind: (instr,), BlockKind.PS: (Instruction(op=Op.STOP),)}
        with pytest.raises(ProgramError, match="not allowed"):
            ThreadProgram(name="t", blocks=blocks, frame_words=4)

    def test_unresolved_branch_rejected(self):
        with pytest.raises(ProgramError, match="unresolved"):
            ThreadProgram(
                name="t",
                blocks={
                    BlockKind.EX: (
                        Instruction(op=Op.JMP, target="loop"),
                        Instruction(op=Op.STOP),
                    )
                },
            )

    def test_branch_past_stop_rejected(self):
        # A branch to the end of the final block would skip STOP.
        with pytest.raises(ProgramError, match="outside the block"):
            ThreadProgram(
                name="t",
                blocks={
                    BlockKind.EX: (
                        Instruction(op=Op.JMP, target=2),
                        Instruction(op=Op.STOP),
                    )
                },
            )

    def test_branch_to_block_end_falls_through(self):
        # Non-final block: branching to the end is legal fall-through.
        prog = ThreadProgram(
            name="t",
            blocks={
                BlockKind.EX: (
                    Instruction(op=Op.BEQZ, ra=Reg(0), target=1),
                ),
                BlockKind.PS: (Instruction(op=Op.STOP),),
            },
        )
        assert prog.flat[0].target == 1

    def test_load_beyond_frame_words_rejected(self):
        with pytest.raises(ProgramError, match="beyond frame_words"):
            ThreadProgram(
                name="t",
                blocks={
                    BlockKind.PL: (Instruction(op=Op.LOAD, rd=0, imm=5),),
                    BlockKind.EX: (Instruction(op=Op.STOP),),
                },
                frame_words=2,
            )

    def test_pointer_param_beyond_frame_rejected(self):
        from repro.isa.instructions import PointerParam

        with pytest.raises(ProgramError, match="beyond"):
            ThreadProgram(
                name="t",
                blocks={BlockKind.EX: (Instruction(op=Op.STOP),)},
                pointer_params=(PointerParam(slot=3, obj="A"),),
                frame_words=2,
            )

    def test_duplicate_pointer_params_rejected(self):
        from repro.isa.instructions import PointerParam

        with pytest.raises(ProgramError, match="duplicate"):
            ThreadProgram(
                name="t",
                blocks={BlockKind.EX: (Instruction(op=Op.STOP),)},
                pointer_params=(
                    PointerParam(slot=0, obj="A"),
                    PointerParam(slot=0, obj="B"),
                ),
                frame_words=2,
            )


class TestDisassembly:
    def test_disassemble_mentions_blocks_and_ops(self):
        text = simple_program().disassemble()
        assert ".PL:" in text and ".EX:" in text and ".PS:" in text
        assert "LOAD" in text and "STOP" in text
