"""Instruction objects: operand validation, annotations, rewriting."""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    GlobalAccess,
    Imm,
    Instruction,
    LinExpr,
    Reg,
)
from repro.isa.opcodes import Op, Slot, Unit, spec_of


class TestOperandTypes:
    def test_reg_repr(self):
        assert repr(Reg(5)) == "r5"

    def test_imm_repr(self):
        assert repr(Imm(7)) == "#7"

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            Reg(-1)


class TestSignatureValidation:
    def test_add_requires_rd_ra_rb(self):
        Instruction(op=Op.ADD, rd=1, ra=Reg(2), rb=Reg(3))
        with pytest.raises(ValueError, match="rd"):
            Instruction(op=Op.ADD, ra=Reg(2), rb=Reg(3))
        with pytest.raises(ValueError, match="rb"):
            Instruction(op=Op.ADD, rd=1, ra=Reg(2))

    def test_nop_takes_nothing(self):
        Instruction(op=Op.NOP)
        with pytest.raises(ValueError):
            Instruction(op=Op.NOP, rd=1)

    def test_branch_requires_target(self):
        Instruction(op=Op.JMP, target="loop")
        with pytest.raises(ValueError):
            Instruction(op=Op.JMP)

    def test_dmaget_requires_tag(self):
        Instruction(op=Op.DMAGET, ra=Reg(1), rb=Reg(2), imm=64, tag=0)
        with pytest.raises(ValueError, match="tag"):
            Instruction(op=Op.DMAGET, ra=Reg(1), rb=Reg(2), imm=64)

    def test_access_only_on_read_write(self):
        acc = GlobalAccess(obj="A", base_slot=0)
        Instruction(op=Op.READ, rd=1, ra=Reg(2), imm=0, access=acc)
        with pytest.raises(ValueError, match="access"):
            Instruction(op=Op.ADD, rd=1, ra=Reg(2), rb=Reg(3), access=acc)

    def test_every_opcode_signature_is_constructible(self):
        """Each signature field name must be one the validator knows."""
        for op in Op:
            fields = set(f for f in spec_of(op).signature.split(",") if f)
            assert fields <= {"rd", "ra", "rb", "imm", "target", "tag",
                              "stride"}


class TestRewriting:
    def test_with_target(self):
        i = Instruction(op=Op.BEQZ, ra=Reg(1), target="x")
        j = i.with_target(7)
        assert j.target == 7 and i.target == "x"

    def test_with_target_requires_branch_target(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.NOP).with_target(3)

    def test_replace_op_read_to_lload(self):
        acc = GlobalAccess(obj="A", base_slot=0)
        r = Instruction(op=Op.READ, rd=1, ra=Reg(2), imm=4, access=acc)
        l = r.replace_op(Op.LLOAD, drop_access=True)
        assert l.op is Op.LLOAD
        assert l.rd == 1 and l.ra == Reg(2) and l.imm == 4
        assert l.access is None

    def test_str_renders_operands(self):
        i = Instruction(op=Op.ADDI, rd=3, ra=Reg(4), imm=8, comment="bump")
        text = str(i)
        assert "ADDI" in text and "r3" in text and "#8" in text and "bump" in text


class TestLinExpr:
    def test_constant(self):
        e = LinExpr.const(12)
        assert e.is_constant and e.evaluate({}) == 12

    def test_param_dependent(self):
        e = LinExpr(param_slot=3, scale=128, offset=4)
        assert not e.is_constant
        assert e.evaluate({3: 2}) == 260

    def test_constant_with_scale_rejected(self):
        with pytest.raises(ValueError):
            LinExpr(param_slot=None, scale=4, offset=0)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            LinExpr(param_slot=-1, scale=1)


class TestGlobalAccess:
    def test_region_key_groups_equal_regions(self):
        a = GlobalAccess(obj="A", base_slot=0, region_bytes=64)
        b = GlobalAccess(obj="A", base_slot=0, region_bytes=64, expected_uses=9)
        assert a.region_key == b.region_key

    def test_region_key_distinguishes_objects(self):
        a = GlobalAccess(obj="A", base_slot=0)
        b = GlobalAccess(obj="B", base_slot=0)
        assert a.region_key != b.region_key

    def test_rejects_unaligned_region(self):
        with pytest.raises(ValueError):
            GlobalAccess(obj="A", base_slot=0, region_bytes=6)

    def test_rejects_zero_uses(self):
        with pytest.raises(ValueError):
            GlobalAccess(obj="A", base_slot=0, expected_uses=0)


class TestOpSpecs:
    def test_mem_slot_ops(self):
        for op in (Op.LOAD, Op.STORE, Op.READ, Op.WRITE, Op.DMAGET, Op.FALLOC):
            assert spec_of(op).slot is Slot.MEM

    def test_alu_slot_ops(self):
        for op in (Op.ADD, Op.BEQ, Op.LI, Op.NOP):
            assert spec_of(op).slot is Slot.ALU

    def test_stall_attribution_units(self):
        assert spec_of(Op.READ).unit is Unit.MAIN
        assert spec_of(Op.LOAD).unit is Unit.LS
        assert spec_of(Op.FALLOC).unit is Unit.LSE
        assert spec_of(Op.DMAGET).unit is Unit.MFC

    def test_branches_marked(self):
        assert spec_of(Op.BEQ).is_branch
        assert not spec_of(Op.ADD).is_branch

    def test_writes_rd_flag(self):
        assert spec_of(Op.ADD).writes_rd
        assert not spec_of(Op.STORE).writes_rd
