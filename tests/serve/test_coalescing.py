"""Acceptance: concurrent clients, coalescing, chaos, lossless drain.

These are the issue's end-to-end criteria, executed over real sockets
against real (test-scale) simulations:

* N concurrent clients submitting the identical sweep cost exactly ONE
  simulation per task, and every client receives bit-identical results
  that match a direct in-process ``runner.sweep``;
* a SIGKILLed worker mid-job surfaces as a ``retrying`` event and the
  job still completes with correct results — the client never sees an
  error;
* SIGTERM drains without losing any accepted job, and a restarted
  server replays the drained work from the persistent cache.
"""

from __future__ import annotations

import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.bench.journal import SweepJournal
from repro.bench.parallel import RunTask
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import JobScheduler


@dataclass(frozen=True)
class KillOnceTask:
    """Wraps a real :class:`RunTask`; SIGKILLs its worker on the first
    attempt (a container-eviction / OOM stand-in), then runs for real.

    Same label/key as the wrapped task, so cache and journal entries
    are indistinguishable from an uneventful run.
    """

    inner: RunTask
    flag: str

    @property
    def label(self) -> str:
        return self.inner.label

    def key(self) -> str:
        return self.inner.key()

    def run(self):
        if not os.path.exists(self.flag):
            open(self.flag, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.run()


def sweep_payload_direct(spes=(1, 2)) -> dict:
    """What the gateway must return: a direct in-process sweep."""
    from repro.bench.export import scaling_to_dict
    from repro.bench.runner import sweep
    from repro.bench.scale import builders
    from repro.compiler.passes import PrefetchOptions
    from repro.sim.config import paper_config

    out = scaling_to_dict(sweep(
        builders("test")["bitcnt"], spes=spes, config_for=paper_config,
        options=PrefetchOptions(worthwhile_threshold=0.5),
    ))
    out["schema_version"] = 1
    out["kind"] = "sweep"
    return out


def submit_and_wait(port: int, name: str, spes) -> "tuple[str, dict]":
    client = ServeClient(port=port, client=name)
    job = client.submit("sweep", "bitcnt", scale="test", spes=list(spes))
    client.wait(job["id"], timeout=300)
    return job["id"], client.result(job["id"])


class TestConcurrentCoalescing:
    def test_eight_identical_sweeps_cost_one_simulation(
        self, serve_factory, cache
    ):
        app, _ = serve_factory(workers=2)
        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(submit_and_wait, app.bound_port,
                            f"client-{i}", (1, 2))
                for i in range(8)
            ]
            outcomes = [f.result(timeout=300) for f in futures]

        # one job, everyone attached to it
        assert len({job_id for job_id, _ in outcomes}) == 1
        record = next(iter(app.scheduler.records.values()))
        assert record.coalesced == 7

        # exactly one simulation per task: 4 misses, no re-runs
        assert cache.misses == 4
        assert cache.hits == 0
        entries = SweepJournal.for_cache(cache).replay()
        assert len(entries) == 4
        assert all(e.done and e.attempts == 1 for e in entries.values())

        # every client got the same bytes, equal to the direct sweep
        blobs = {json.dumps(p, sort_keys=True) for _, p in outcomes}
        assert len(blobs) == 1
        assert outcomes[0][1] == sweep_payload_direct()

        metrics = ServeClient(port=app.bound_port).metrics()
        assert "repro_serve_jobs_coalesced_total 7" in metrics
        assert "repro_serve_jobs_done_total 1" in metrics

    def test_duplicate_and_distinct_mix(self, serve_factory, cache):
        # 4 clients ask sweep A, 4 ask sweep B; A and B share the 1-SPE
        # point.  workers=1 serializes the two jobs, so B's shared tasks
        # replay from the cache: 6 unique simulations, 2 hits.
        app, _ = serve_factory(workers=1)
        with ThreadPoolExecutor(8) as pool:
            futures = [
                pool.submit(submit_and_wait, app.bound_port,
                            f"client-{i}", (1, 2) if i % 2 else (1, 4))
                for i in range(8)
            ]
            outcomes = [f.result(timeout=300) for f in futures]

        assert len({job_id for job_id, _ in outcomes}) == 2
        assert cache.misses == 6
        assert cache.hits == 2
        payload_a = sweep_payload_direct((1, 2))
        payload_b = sweep_payload_direct((1, 4))
        for i, (_, payload) in enumerate(outcomes):
            assert payload == (payload_a if i % 2 else payload_b)


class TestChaosMidJob:
    def test_killed_worker_streams_retrying_then_done(
        self, serve_factory, cache, tmp_path
    ):
        spec = protocol.parse_request({
            "v": 1, "kind": "run",
            "params": {"benchmark": "bitcnt", "scale": "test", "spes": 1},
        }).spec
        inner = protocol.build_tasks(spec)[0]
        flag = str(tmp_path / "killed-once")

        def build(spec):
            return [KillOnceTask(inner, flag)]

        # timeout forces the process-pool path (the kill must hit a
        # worker, not the server); retries default to the env/2.
        scheduler = JobScheduler(
            cache=cache, workers=1, sim_jobs=2, timeout=120,
            backoff=0, build_tasks=build,
        )
        app, client = serve_factory(scheduler=scheduler)
        job = client.submit("run", "bitcnt", scale="test", spes=1)
        events = list(client.events(job["id"]))
        names = [e["event"] for e in events]
        assert "retrying" in names  # the eviction was visible mid-stream
        assert names[-1] == "done"  # ...and harmless
        assert "failed" not in names
        from repro.bench.parallel import CRASH

        retry = next(e for e in events if e["event"] == "retrying")
        assert retry["kind"] == CRASH
        assert retry["attempt"] == 2

        final = client.status(job["id"])
        assert final["state"] == "done"
        assert final["retries"] == 1
        # the payload is bit-identical to an unmolested direct run
        from repro.bench.export import run_to_dict

        assert client.result(job["id"])["run"] == run_to_dict(inner.run())


class TestSigtermDrain:
    def test_drain_is_lossless_and_restart_replays_from_cache(
        self, serve_factory, cache
    ):
        app, client = serve_factory(workers=1)
        sweep_job = client.submit("sweep", "bitcnt", scale="test",
                                  spes=[1, 2])
        run_job = client.submit("run", "mmul", scale="test", spes=1)

        app.request_drain()
        deadline = time.monotonic() + 10
        while not app.scheduler.draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)

        # while draining: new work refused, accepted work still visible
        try:
            client.submit("run", "zoom", scale="test", spes=1)
            refused = False
        except ServeError as exc:
            refused = exc.status == 503
        assert refused

        # both accepted jobs settle; nothing is lost
        deadline = time.monotonic() + 300
        records = app.scheduler.records
        while not all(r.state in ("done", "failed", "cancelled")
                      for r in records.values()):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert [r.state for r in records.values()] == ["done", "done"]

        entries = SweepJournal.for_cache(cache).replay()
        assert len(entries) == 5  # 4 sweep tasks + 1 run task
        assert all(e.done for e in entries.values())

        # a restarted server replays the drained work from the cache
        app2, client2 = serve_factory(workers=1)
        again = client2.submit("sweep", "bitcnt", scale="test", spes=[1, 2])
        final = client2.wait(again["id"], timeout=120)
        assert final["state"] == "done"
        assert final["cached"] is True
        assert client2.result(again["id"]) == \
            records[sweep_job["id"]].result
