"""JobQueue: priority, per-client fairness, bounds, lazy cancellation."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.obs.hub import MetricsHub
from repro.serve.queue import JobQueue, QueueFull


@dataclass
class FakeRequest:
    client: str
    priority: int = 5


@dataclass
class FakeRecord:
    id: str
    request: FakeRequest = field(default_factory=lambda: FakeRequest("a"))


def rec(job_id: str, client: str = "a", priority: int = 5) -> FakeRecord:
    return FakeRecord(job_id, FakeRequest(client, priority))


class TestOrdering:
    def test_fifo_within_one_client(self):
        q = JobQueue()
        for i in range(3):
            q.push(rec(f"j{i}"))
        assert [q.pop().id for _ in range(3)] == ["j0", "j1", "j2"]
        assert q.pop() is None

    def test_priority_beats_submission_order(self):
        q = JobQueue()
        q.push(rec("slow", priority=9))
        q.push(rec("urgent", priority=0))
        assert q.pop().id == "urgent"
        assert q.pop().id == "slow"

    def test_clients_are_interleaved_fairly(self):
        q = JobQueue()
        for i in range(3):
            q.push(rec(f"h{i}", client="hog"))
        q.push(rec("g0", client="guest"))
        q.push(rec("g1", client="guest"))
        order = [q.pop().id for _ in range(5)]
        # The hog's backlog cannot starve the guest: strict alternation
        # until the guest's jobs are exhausted.
        assert order == ["h0", "g0", "h1", "g1", "h2"]

    def test_priority_still_beats_fairness(self):
        q = JobQueue()
        q.push(rec("h0", client="hog"))
        q.push(rec("h1", client="hog", priority=0))
        q.push(rec("g0", client="guest"))
        # hog's priority-0 job outranks the guest despite fairness.
        assert [q.pop().id for _ in range(3)] == ["h1", "g0", "h0"]


class TestAdmission:
    def test_push_beyond_depth_raises_queue_full(self):
        q = JobQueue(max_depth=2)
        q.push(rec("a1"))
        q.push(rec("a2"))
        with pytest.raises(QueueFull) as exc:
            q.push(rec("a3"))
        assert exc.value.depth == 2
        assert exc.value.retry_after >= 1
        assert len(q) == 2  # the rejected job left no trace

    def test_retry_after_scales_with_backlog_and_durations(self):
        q = JobQueue(max_depth=100, workers=1)
        for _ in range(20):
            q.note_duration(10.0)
        shallow = q.retry_after()
        for i in range(50):
            q.push(rec(f"j{i}"))
        assert q.retry_after() > shallow

    def test_bad_depth_is_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestRemove:
    def test_removed_job_is_never_popped(self):
        q = JobQueue()
        q.push(rec("j0"))
        q.push(rec("j1"))
        assert q.remove("j0")
        assert q.pop().id == "j1"
        assert q.pop() is None

    def test_remove_unknown_or_popped_returns_false(self):
        q = JobQueue()
        q.push(rec("j0"))
        popped = q.pop()
        assert popped.id == "j0"
        assert not q.remove("j0")
        assert not q.remove("ghost")


class TestMetrics:
    def test_hub_sees_admissions_rejections_and_depth(self):
        hub = MetricsHub()
        q = JobQueue(max_depth=1, hub=hub)
        q.push(rec("j0"))
        with pytest.raises(QueueFull):
            q.push(rec("j1"))
        q.pop()
        assert hub.counters["serve.admitted"].value == 1
        assert hub.counters["serve.rejected"].value == 1
        assert hub.gauges["serve.queue_depth"].last == 0
        assert hub.gauges["serve.queue_depth"].peak == 1

    def test_depths_reports_live_entries_per_client(self):
        q = JobQueue()
        q.push(rec("j0", client="a"))
        q.push(rec("j1", client="a"))
        q.push(rec("j2", client="b"))
        q.remove("j1")
        assert q.depths() == {"a": 1, "b": 1}
