"""Request validation: strict, eager, and names the offending field."""

from __future__ import annotations

import pytest

from repro.bench.export import SCHEMA_VERSION as EXPORT_SCHEMA_VERSION
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    ProtocolError,
    build_tasks,
    job_key,
    parse_request,
)


def req(**overrides) -> dict:
    base = {
        "v": 1,
        "kind": "sweep",
        "client": "alice",
        "params": {"benchmark": "bitcnt", "scale": "test", "spes": [1, 2]},
    }
    base.update(overrides)
    return base


class TestParse:
    def test_minimal_run_request_fills_defaults(self):
        parsed = parse_request({
            "v": 1, "kind": "run",
            "params": {"benchmark": "mmul", "scale": "test"},
        })
        assert parsed.client == "anonymous"
        assert parsed.priority == 5
        assert parsed.spec.spes == (8,)
        assert parsed.spec.prefetch is True
        assert parsed.spec.threshold == 0.5

    def test_sweep_defaults_to_paper_axis(self):
        parsed = parse_request({
            "v": 1, "kind": "sweep",
            "params": {"benchmark": "mmul", "scale": "test"},
        })
        assert parsed.spec.spes == (1, 2, 4, 8)

    def test_schema_version_is_the_export_constant(self):
        assert SCHEMA_VERSION == EXPORT_SCHEMA_VERSION

    @pytest.mark.parametrize("payload, fragment", [
        ("not a dict", "JSON object"),
        (req(v=2), "protocol version"),
        (req(v=None), "protocol version"),
        ({"kind": "run"}, "protocol version"),
        (req(kind="train"), "kind"),
        (req(extra=1), "unknown request key"),
        (req(client=""), "client"),
        (req(client="x" * 200), "client"),
        (req(priority="high"), "priority"),
        (req(priority=10), "priority"),
        (req(priority=True), "priority"),
        (req(params="nope"), "params"),
        (req(params={"benchmark": "bitcnt", "bogus": 1}), "unknown params"),
        (req(params={"benchmark": "nope"}), "benchmark"),
        (req(params={}), "benchmark"),
        (req(params={"benchmark": "bitcnt", "scale": "galactic"}), "scale"),
        (req(params={"benchmark": "bitcnt", "threshold": 2.0}), "threshold"),
        (req(params={"benchmark": "bitcnt", "threshold": "hot"}),
         "threshold"),
        (req(params={"benchmark": "bitcnt", "spes": []}), "spes"),
        (req(params={"benchmark": "bitcnt", "spes": [1, 1]}), "repeats"),
        (req(params={"benchmark": "bitcnt", "spes": [0]}), "spes"),
        (req(params={"benchmark": "bitcnt", "spes": [64]}), "spes"),
        (req(params={"benchmark": "bitcnt", "spes": ["two"]}), "spes"),
        (req(params={"benchmark": "bitcnt",
                     "spes": list(range(1, 30))}), "points"),
        (req(params={"benchmark": "bitcnt", "latency": 0}), "latency"),
        (req(params={"benchmark": "bitcnt", "faults": 12}), "faults"),
        (req(params={"benchmark": "bitcnt",
                     "faults": "seed=1,bogus_knob=1"}), "faults"),
        (req(kind="run", params={"benchmark": "bitcnt", "spes": [1, 2]}),
         "single integer"),
        (req(kind="run",
             params={"benchmark": "bitcnt", "prefetch": "yes"}), "prefetch"),
        # run/profile-only keys are rejected on a sweep
        (req(params={"benchmark": "bitcnt", "prefetch": True}),
         "unknown params"),
        (req(params={"benchmark": "bitcnt", "bucket_cycles": 10}),
         "unknown params"),
    ])
    def test_bad_requests_are_rejected_eagerly(self, payload, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(payload)

    def test_valid_fault_spec_is_accepted_verbatim(self):
        parsed = parse_request(req(params={
            "benchmark": "bitcnt", "scale": "test",
            "faults": "seed=3,dma_drop=0.05",
        }))
        assert parsed.spec.faults == "seed=3,dma_drop=0.05"

    def test_round_trips_through_to_dict(self):
        parsed = parse_request(req(priority=2))
        again = parse_request(parsed.to_dict())
        assert again == parsed


class TestTasksAndKeys:
    def _spec(self, **overrides):
        payload = req()
        payload["params"].update(overrides)
        return parse_request(payload).spec

    def test_sweep_builds_a_pair_per_spe_point(self):
        tasks = build_tasks(self._spec())
        assert len(tasks) == 4  # (base, prefetch) x {1, 2}
        labels = [t.label for t in tasks]
        assert sum("base" in l for l in labels) == 2
        assert sum("prefetch" in l for l in labels) == 2

    def test_run_builds_one_task(self):
        spec = parse_request({
            "v": 1, "kind": "run",
            "params": {"benchmark": "bitcnt", "scale": "test", "spes": 2},
        }).spec
        tasks = build_tasks(spec)
        assert len(tasks) == 1
        assert tasks[0].prefetch is True

    def test_job_key_ignores_client_and_priority(self):
        a = parse_request(req(client="alice", priority=0))
        b = parse_request(req(client="bob", priority=9))
        assert job_key(a.spec, build_tasks(a.spec)) == \
            job_key(b.spec, build_tasks(b.spec))

    def test_job_key_sees_simulation_inputs(self):
        base = self._spec()
        key = job_key(base, build_tasks(base))
        for changed in (
            self._spec(spes=[1, 4]),
            self._spec(latency=1),
            self._spec(threshold=0.9),
            self._spec(faults="seed=1,dma_drop=0.01"),
        ):
            assert job_key(changed, build_tasks(changed)) != key

    def test_job_key_distinguishes_kinds_over_same_tasks(self):
        run = parse_request({
            "v": 1, "kind": "run",
            "params": {"benchmark": "bitcnt", "scale": "test", "spes": 1},
        }).spec
        profile = parse_request({
            "v": 1, "kind": "profile",
            "params": {"benchmark": "bitcnt", "scale": "test", "spes": 1},
        }).spec
        assert job_key(run, build_tasks(run)) != \
            job_key(profile, build_tasks(profile))
