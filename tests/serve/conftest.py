"""Shared serving-test fixtures: a threaded gateway + sync client.

The app is hosted exactly the way a deployment embeds it off the main
thread: ``app.run()`` on a daemon thread, ``ready`` event for startup,
``request_drain()`` for shutdown.  Every booted app is drained at
teardown so no worker outlives its test.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.cache import ResultCache
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient


@pytest.fixture(autouse=True)
def _serve_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "test")
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BENCH_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_BENCH_RETRIES", raising=False)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def serve_factory(cache):
    """Boot ``ServeApp(port=0, **kwargs)`` on a thread; yields a factory
    returning ``(app, client)``.  Drains every app at teardown."""
    booted: "list[tuple[ServeApp, threading.Thread]]" = []

    def boot(**kwargs) -> "tuple[ServeApp, ServeClient]":
        kwargs.setdefault("cache", cache)
        kwargs.setdefault("workers", 2)
        app = ServeApp(port=0, **kwargs)
        thread = threading.Thread(target=app.run, daemon=True)
        thread.start()
        assert app.ready.wait(15), "server never became ready"
        booted.append((app, thread))
        return app, ServeClient(port=app.bound_port)

    yield boot
    for app, thread in booted:
        app.request_drain()
        thread.join(60)
        assert not thread.is_alive(), "server failed to drain"
