"""HTTP surface: routing, validation mapping, streaming, admission."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.obs.hub import MetricsHub
from repro.serve.client import ServeError
from repro.serve.scheduler import JobScheduler


@dataclass(frozen=True)
class GateTask:
    """Blocks until its flag file appears, then returns nothing useful."""

    name: str
    flag: str

    @property
    def label(self) -> str:
        return self.name

    def key(self) -> str:
        return f"gate:{self.name}"

    def run(self):
        import os
        import time

        deadline = time.monotonic() + 60
        while not os.path.exists(self.flag):
            if time.monotonic() > deadline:  # pragma: no cover - safety
                raise RuntimeError("gate never opened")
            time.sleep(0.01)
        raise ValueError("gate task has no payload")


def gated_app(serve_factory, tmp_path, **kwargs):
    """An app whose every job blocks on one shared flag file."""
    flag = tmp_path / "open-gate"
    hub = MetricsHub()
    scheduler = JobScheduler(
        cache=None,
        hub=hub,
        workers=kwargs.pop("workers", 1),
        max_depth=kwargs.pop("max_depth", 64),
        build_tasks=lambda spec: [
            GateTask(f"gate-{spec.benchmark}-{spec.spes[0]}", str(flag))
        ],
    )
    app, client = serve_factory(scheduler=scheduler, hub=hub, **kwargs)
    return app, client, flag


class TestBasics:
    def test_healthz(self, serve_factory):
        _, client = serve_factory()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queued"] == 0 and health["active"] == 0
        assert health["cache"] is not None

    def test_unknown_endpoint_is_404(self, serve_factory):
        _, client = serve_factory()
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/v2/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, serve_factory):
        _, client = serve_factory()
        with pytest.raises(ServeError) as exc:
            client._request("PUT", "/v1/jobs", body={})
        assert exc.value.status == 405

    def test_unparseable_body_is_400(self, serve_factory):
        app, client = serve_factory()
        import http.client as hc

        conn = hc.HTTPConnection("127.0.0.1", app.bound_port, timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"not valid JSON" in resp.read()
        finally:
            conn.close()

    def test_protocol_violation_is_400_naming_the_field(self, serve_factory):
        _, client = serve_factory()
        with pytest.raises(ServeError) as exc:
            client.submit_request({
                "v": 1, "kind": "run",
                "params": {"benchmark": "bitcnt", "threshold": 7},
            })
        assert exc.value.status == 400
        assert "threshold" in str(exc.value)

    def test_unknown_job_is_404_everywhere(self, serve_factory):
        _, client = serve_factory()
        for method, path in [
            ("GET", "/v1/jobs/j-999999"),
            ("GET", "/v1/jobs/j-999999/result"),
            ("DELETE", "/v1/jobs/j-999999"),
        ]:
            with pytest.raises(ServeError) as exc:
                client._request(method, path)
            assert exc.value.status == 404


class TestJobFlow:
    def test_submit_wait_result(self, serve_factory):
        _, client = serve_factory()
        job = client.submit("run", "bitcnt", scale="test", spes=1,
                            client="flow")
        assert job["state"] in ("queued", "running")
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        assert final["retries"] == 0
        payload = client.result(job["id"])
        assert payload["schema_version"] == 1
        assert payload["kind"] == "run"
        assert payload["run"]["cycles"] > 0
        listed = client.jobs(client="flow")
        assert [j["id"] for j in listed] == [job["id"]]
        assert client.jobs(client="nobody") == []

    def test_event_stream_is_ordered_and_resumable(self, serve_factory):
        _, client = serve_factory()
        job = client.submit("run", "bitcnt", scale="test", spes=1)
        events = list(client.events(job["id"]))
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert "running" in names
        assert names[-1] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))
        # resuming mid-stream replays only the tail
        tail = list(client.events(job["id"], start=events[-1]["seq"]))
        assert [e["event"] for e in tail] == ["done"]

    def test_result_while_running_is_409(self, serve_factory, tmp_path):
        _, client, flag = gated_app(serve_factory, tmp_path)
        job = client.submit("run", "bitcnt", scale="test", spes=1)
        with pytest.raises(ServeError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409
        flag.touch()
        final = client.wait(job["id"], timeout=60)
        # the gate task fails deliberately: the failure surfaces as 500
        assert final["state"] == "failed"
        with pytest.raises(ServeError) as exc:
            client.result(job["id"])
        assert exc.value.status == 500

    def test_cancel_queued_job(self, serve_factory, tmp_path):
        _, client, flag = gated_app(serve_factory, tmp_path)
        running = client.submit("run", "bitcnt", scale="test", spes=1)
        queued = client.submit("run", "bitcnt", scale="test", spes=2)
        out = client.cancel(queued["id"])
        assert out["cancelled"] is True
        out = client.cancel(running["id"])
        assert out["cancelled"] is False and "running" in out["reason"]
        status = client.status(queued["id"])
        assert status["state"] == "cancelled"
        flag.touch()
        client.wait(running["id"], timeout=60)


class TestAdmissionAndDrain:
    def test_overload_maps_to_503_with_retry_after(
        self, serve_factory, tmp_path
    ):
        _, client, flag = gated_app(
            serve_factory, tmp_path, workers=1, max_depth=1,
        )
        client.submit("run", "bitcnt", scale="test", spes=1)  # running
        client.submit("run", "bitcnt", scale="test", spes=2)  # queued
        with pytest.raises(ServeError) as exc:
            client.submit("run", "bitcnt", scale="test", spes=4)
        assert exc.value.status == 503
        assert exc.value.retry_after >= 1  # the Retry-After header
        flag.touch()

    def test_draining_server_refuses_new_jobs(self, serve_factory, tmp_path):
        import time

        app, client, flag = gated_app(serve_factory, tmp_path, workers=1)
        accepted = client.submit("run", "bitcnt", scale="test", spes=1)
        app.request_drain()
        deadline = time.monotonic() + 10
        while not app.scheduler.draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(ServeError) as exc:
            client.submit("run", "bitcnt", scale="test", spes=2)
        assert exc.value.status == 503
        # The job accepted before the drain still settles.  Attach the
        # event stream *before* releasing the gate: once the job settles
        # the drain completes and the server closes its socket.
        stream = client.events(accepted["id"])
        names = [next(stream)["event"]]
        flag.touch()
        names += [e["event"] for e in stream]
        assert names[-1] == "failed"  # gate task's payload raises
        record = app.scheduler.records[accepted["id"]]
        assert record.state == "failed"  # settled, not dropped


class TestMetricsz:
    def test_prometheus_text_counts_the_lifecycle(self, serve_factory):
        _, client = serve_factory()
        job = client.submit("run", "bitcnt", scale="test", spes=1)
        client.wait(job["id"], timeout=120)
        text = client.metrics()
        metrics = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, value = line.rsplit(" ", 1)
            metrics[name] = float(value)
        assert metrics["repro_serve_jobs_submitted_total"] == 1
        assert metrics["repro_serve_jobs_done_total"] == 1
        assert metrics["repro_serve_admitted_total"] == 1
        assert metrics["repro_serve_queue_depth"] == 0
        assert metrics["repro_serve_jobs_active"] == 0
        assert metrics["repro_serve_draining"] == 0
        assert metrics["repro_serve_http_requests_total"] >= 3
        # exposition format: TYPE comment precedes every sample
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE"):
                assert lines[i + 1].split(" ")[0] == line.split(" ")[2]
