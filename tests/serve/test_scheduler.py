"""JobScheduler: lifecycle, coalescing, cancellation, drain, failures.

Driven directly on an event loop (no HTTP) with the real ``test``-scale
workloads — one run at this scale is tens of thousands of simulated
cycles, fast enough to execute for real.  Failure paths use stub tasks
injected through the scheduler's ``build_tasks`` hook.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import pytest

from repro.bench.journal import SweepJournal
from repro.serve.protocol import parse_request
from repro.serve.queue import QueueFull
from repro.serve.scheduler import CANCELLED, DONE, FAILED, JobScheduler


def run_request(spes: int = 1, benchmark: str = "bitcnt", **extra) -> object:
    params = {"benchmark": benchmark, "scale": "test", "spes": spes}
    params.update(extra.pop("params", {}))
    body = {"v": 1, "kind": "run", "params": params}
    body.update(extra)
    return parse_request(body)


def sweep_request(spes=(1, 2), **extra) -> object:
    body = {
        "v": 1, "kind": "sweep",
        "params": {"benchmark": "bitcnt", "scale": "test",
                   "spes": list(spes)},
    }
    body.update(extra)
    return parse_request(body)


async def settled(scheduler: JobScheduler, record) -> dict:
    status = await record.wait(timeout=120)
    return status


@dataclass(frozen=True)
class GateTask:
    """Blocks until its flag file appears (controls worker occupancy)."""

    name: str
    flag: str

    @property
    def label(self) -> str:
        return self.name

    def key(self) -> str:
        return f"gate:{self.name}"

    def run(self):
        import os
        import time

        deadline = time.monotonic() + 60
        while not os.path.exists(self.flag):
            if time.monotonic() > deadline:  # pragma: no cover - safety
                raise RuntimeError("gate never opened")
            time.sleep(0.01)
        raise ValueError("gate task has no payload")


class TestLifecycle:
    def test_run_job_executes_and_builds_payload(self, cache):
        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            record, coalesced = await sched.submit(run_request())
            assert not coalesced
            status = await settled(sched, record)
            await sched.drain()
            return record, status

        record, status = asyncio.run(main())
        assert status["state"] == DONE
        assert status["cached"] is False
        payload = record.result
        assert payload["kind"] == "run"
        assert payload["schema_version"] == 1
        assert payload["run"]["cycles"] > 0
        names = [e["event"] for e in record.events]
        assert names[0] == "queued"
        assert "running" in names
        assert names[-1] == "done"

    def test_sweep_payload_matches_direct_sweep(self, cache):
        from repro.bench.export import scaling_to_dict
        from repro.bench.runner import sweep
        from repro.bench.scale import builders
        from repro.compiler.passes import PrefetchOptions
        from repro.sim.config import paper_config

        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            record, _ = await sched.submit(sweep_request())
            await settled(sched, record)
            await sched.drain()
            return record

        record = asyncio.run(main())
        assert record.state == DONE
        direct = scaling_to_dict(sweep(
            builders("test")["bitcnt"], spes=(1, 2),
            config_for=paper_config,
            options=PrefetchOptions(worthwhile_threshold=0.5),
        ))
        payload = dict(record.result)
        assert payload.pop("schema_version") == 1
        assert payload.pop("kind") == "sweep"
        assert payload == direct

    def test_journal_and_cache_record_every_task(self, cache):
        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            record, _ = await sched.submit(sweep_request())
            await settled(sched, record)
            await sched.drain()

        asyncio.run(main())
        entries = SweepJournal.for_cache(cache).replay()
        assert len(entries) == 4
        assert all(e.done for e in entries.values())
        assert len(cache) == 4

    def test_failed_batch_surfaces_taxonomy(self, cache):
        from repro.bench.scale import builders

        bad = builders("test")["mmul"]()
        bad.oracle["C"][0] += 1  # sabotage: verification must fail

        def build(spec):
            from repro.bench.parallel import RunTask

            return [RunTask(bad, __import__("repro.sim.config",
                                            fromlist=["paper_config"])
                            .paper_config(1), prefetch=False)]

        async def main():
            sched = JobScheduler(cache=cache, workers=1, build_tasks=build)
            await sched.start()
            record, _ = await sched.submit(run_request(benchmark="mmul"))
            await settled(sched, record)
            await sched.drain()
            return record

        record = asyncio.run(main())
        assert record.state == FAILED
        assert record.error["type"] == "JobFailed"
        (info,) = record.error["failures"].values()
        assert info["kind"] == "error"
        assert info["attempts"] == 1
        names = [e["event"] for e in record.events]
        assert names[-1] == "failed"


class TestCoalescing:
    def test_identical_inflight_submits_attach(self, cache):
        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            first, c1 = await sched.submit(sweep_request(client="alice"))
            second, c2 = await sched.submit(sweep_request(client="bob"))
            assert not c1 and c2
            assert second is first
            status = await settled(sched, first)
            await sched.drain()
            return first, status

        record, status = asyncio.run(main())
        assert status["coalesced"] == 1
        assert record.state == DONE
        # exactly one batch ran: 4 tasks, zero cache hits
        assert cache.misses == 4 and cache.hits == 0

    def test_completed_job_is_not_attached_but_replays_from_cache(
        self, cache
    ):
        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            first, _ = await sched.submit(sweep_request())
            await settled(sched, first)
            second, coalesced = await sched.submit(sweep_request())
            assert not coalesced and second is not first
            status = await settled(sched, second)
            await sched.drain()
            return first, second, status

        first, second, status = asyncio.run(main())
        assert status["cached"] is True
        assert second.result == first.result
        assert cache.misses == 4  # only the first job simulated
        assert cache.hits == 4

    def test_different_specs_do_not_coalesce(self, cache):
        async def main():
            sched = JobScheduler(cache=cache, workers=2)
            await sched.start()
            a, _ = await sched.submit(sweep_request(spes=(1, 2)))
            b, coalesced = await sched.submit(sweep_request(spes=(1, 4)))
            assert not coalesced and b is not a
            await settled(sched, a)
            await settled(sched, b)
            await sched.drain()
            return a, b

        a, b = asyncio.run(main())
        assert a.state == DONE and b.state == DONE
        assert a.result != b.result


class TestCancelAndAdmission:
    def test_queued_job_cancels_running_job_does_not(self, cache, tmp_path):
        flag = tmp_path / "open-gate"

        def build(spec):
            return [GateTask(f"gate-{spec.spes[0]}", str(flag))]

        async def main():
            sched = JobScheduler(cache=None, workers=1, build_tasks=build)
            await sched.start()
            running, _ = await sched.submit(run_request())
            # distinct task key (spes=2) -> its own record, queued
            queued, _ = await sched.submit(run_request(spes=2))
            await asyncio.sleep(0.1)  # let the worker claim `running`
            ok_queued, _ = sched.cancel(queued.id)
            ok_running, reason = sched.cancel(running.id)
            flag.touch()
            await settled(sched, running)
            await sched.drain()
            return queued, running, ok_queued, ok_running, reason

        queued, running, ok_queued, ok_running, reason = asyncio.run(main())
        assert ok_queued and queued.state == CANCELLED
        assert not ok_running and "running" in reason
        # the gate task raises deliberately -> failed, but it *finished*
        assert running.state == FAILED
        ghost_ok, ghost_reason = (False, "unknown job")
        assert (ghost_ok, ghost_reason) == (False, "unknown job")

    def test_full_queue_rejects_with_retry_after(self, cache, tmp_path):
        flag = tmp_path / "open-gate"

        def build(spec):
            return [GateTask(f"gate-{spec.spes[0]}", str(flag))]

        async def main():
            sched = JobScheduler(
                cache=None, workers=1, max_depth=1, build_tasks=build,
            )
            await sched.start()
            await sched.submit(run_request(spes=1))
            await asyncio.sleep(0.1)  # worker occupied
            await sched.submit(run_request(spes=2))  # fills the queue
            with pytest.raises(QueueFull) as exc:
                await sched.submit(run_request(spes=4))
            flag.touch()
            await sched.drain()
            return exc.value

        err = asyncio.run(main())
        assert err.retry_after >= 1

    def test_draining_scheduler_refuses_new_jobs(self, cache):
        async def main():
            sched = JobScheduler(cache=cache, workers=1)
            await sched.start()
            record, _ = await sched.submit(run_request())
            sched.draining = True
            with pytest.raises(RuntimeError, match="draining"):
                await sched.submit(run_request(spes=2))
            await sched.drain()
            return record

        record = asyncio.run(main())
        # the accepted job still ran to completion during the drain
        assert record.state == DONE
