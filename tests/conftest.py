"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.sim.config import MachineConfig
from repro.testing import small_config


@pytest.fixture
def cfg1() -> MachineConfig:
    """A 1-SPE machine configuration."""
    return small_config(num_spes=1)


@pytest.fixture
def cfg2() -> MachineConfig:
    """A 2-SPE machine configuration."""
    return small_config(num_spes=2)


@pytest.fixture
def cfg4() -> MachineConfig:
    """A 4-SPE machine configuration."""
    return small_config(num_spes=4)
