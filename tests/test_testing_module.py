"""The repro.testing helpers themselves."""

from __future__ import annotations

import pytest

from repro.core.activity import GlobalObject, ObjRef
from repro.isa.builder import ThreadBuilder
from repro.isa.program import BlockKind
from repro.testing import run_program, small_config


def trivial_builder():
    b = ThreadBuilder("t")
    b.slot("out")
    b.slot("x")
    with b.block(BlockKind.PL):
        b.load("rout", "out")
        b.load("v", "x")
    with b.block(BlockKind.EX):
        b.addi("v", "v", 1)
        b.write("rout", 0, "v")
        b.stop()
    return b


class TestSmallConfig:
    def test_defaults_to_one_spe(self):
        assert small_config().num_spes == 1

    def test_overrides_pass_through(self):
        cfg = small_config(num_spes=2, inter_node_latency=5)
        assert cfg.num_spes == 2
        assert cfg.inter_node_latency == 5


class TestRunProgram:
    def test_named_slots_with_builder(self):
        res = run_program(
            trivial_builder(),
            stores={"out": ObjRef("out"), "x": 41},
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == 42
        assert res.cycles > 0

    def test_numeric_slots_with_program(self):
        prog = trivial_builder().build()
        res = run_program(
            prog,
            stores={0: ObjRef("out"), 1: 10},
            globals_=[GlobalObject.zeros("out", 1)],
        )
        assert res.word("out") == 11

    def test_named_slots_require_builder(self):
        prog = trivial_builder().build()
        with pytest.raises(ValueError, match="named slots"):
            run_program(prog, stores={"x": 1})

    def test_read_global_and_word(self):
        res = run_program(
            trivial_builder(),
            stores={"out": ObjRef("out"), "x": 1},
            globals_=[GlobalObject.zeros("out", 2)],
        )
        assert res.read_global("out") == [2, 0]
        assert res.word("out", 1) == 0

    def test_max_cycles_propagates(self):
        from repro.sim.engine import SimulationLimitExceeded

        with pytest.raises(SimulationLimitExceeded):
            run_program(
                trivial_builder(),
                stores={"out": ObjRef("out"), "x": 1},
                globals_=[GlobalObject.zeros("out", 1)],
                max_cycles=2,
            )
