"""Machine-checkpoint integration of the run_many harness.

Harness-level resume (journal + cache) settles *finished* tasks; the
machine-checkpoint layer tested here resumes *interrupted* tasks from
their latest mid-flight snapshot — after a timeout kill, a worker crash,
or a whole batch killed and re-run — without re-simulating from cycle 0
and without perturbing results (bit-identity is the contract).

Stub tasks follow the :class:`~repro.bench.parallel.RunTask` protocol
(``label``, ``key()``, ``run()``) *plus* the checkpoint fields the
harness rewrites via ``dataclasses.replace``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.bench.cache import ResultCache
from repro.bench.journal import SweepJournal
from repro.bench.parallel import (
    TIMEOUT,
    pair_tasks,
    run_many,
    run_many_detailed,
)
from repro.bench.runner import run_workload
from repro.cell.machine import Machine
from repro.testing import small_config
from repro.workloads import matmul


def _workload():
    return matmul.build(n=4, threads=2)


def _tasks():
    return list(pair_tasks(_workload(), small_config(1)))


@dataclass(frozen=True)
class StubResult:
    cycles: int = 1


@dataclass(frozen=True)
class CheckpointStubTask:
    """RunTask-shaped stub exposing the checkpoint fields."""

    name: str
    checkpoint_every: "int | None" = None
    checkpoint_path: "str | None" = None
    restore_from: "str | None" = None

    @property
    def label(self) -> str:
        return self.name

    def key(self) -> str:
        return f"stub-{self.name}"

    def run(self) -> StubResult:
        return StubResult()


def _write_stub_checkpoint(path: str) -> None:
    # Real checkpoints makedirs their directory (snapshot.save_checkpoint);
    # the stubs mirror that.
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("mid-flight state")


@dataclass(frozen=True)
class FailAfterCheckpointTask(CheckpointStubTask):
    """Writes its machine checkpoint, then fails deterministically."""

    def run(self) -> StubResult:
        _write_stub_checkpoint(self.checkpoint_path)
        raise ValueError("boom after checkpointing")


@dataclass(frozen=True)
class HangUnlessRestoredTask(CheckpointStubTask):
    """First attempt checkpoints and hangs; a resumed attempt finishes.

    Models a run whose first attempt times out after snapshotting: the
    retry must arrive with ``restore_from`` pointing at that snapshot.
    """

    def run(self) -> StubResult:
        if self.restore_from and os.path.exists(self.restore_from):
            return StubResult(cycles=2)
        if self.checkpoint_path:  # layer on: snapshot before hanging
            _write_stub_checkpoint(self.checkpoint_path)
        time.sleep(60)
        return StubResult()  # pragma: no cover - killed before reaching


class TestCheckpointedBatch:
    def test_bit_identical_and_files_cleaned_on_success(self, tmp_path):
        ref = run_many(_tasks(), journal=None)
        ckdir = tmp_path / "ck"
        batch = run_many_detailed(
            _tasks(), journal=None,
            checkpoint_every=50, checkpoint_dir=str(ckdir),
        )
        assert batch.complete
        assert batch.results == ref
        # Settled tasks' checkpoints serve no purpose: deleted.
        assert list(ckdir.glob("*.ckpt")) == []

    def test_keep_checkpoints_defaults_dir_next_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks()
        batch = run_many_detailed(
            tasks, cache=cache, checkpoint_every=50, keep_checkpoints=True,
        )
        assert batch.complete
        ckdir = tmp_path / "cache" / "checkpoints"
        names = sorted(p.name for p in ckdir.glob("*.ckpt"))
        assert names == sorted(t.key() + ".ckpt" for t in tasks)
        # The journal records where each task's surviving snapshot lives.
        entries = SweepJournal.for_cache(cache).replay()
        for task in tasks:
            entry = entries[task.key()]
            assert entry.done
            assert entry.checkpoint == str(ckdir / (task.key() + ".ckpt"))

    def test_success_without_keep_records_no_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks()
        assert run_many_detailed(
            tasks, cache=cache, checkpoint_every=50,
        ).complete
        for entry in SweepJournal.for_cache(cache).replay().values():
            assert entry.checkpoint is None


class TestResumeFromLeftoverCheckpoint:
    def _plant_leftover(self, task, ckdir) -> str:
        """Forge what a killed attempt leaves behind: a real mid-flight
        machine checkpoint under the task's per-key file name."""
        machine = Machine(task.config)
        machine.load(task.workload.activity)  # base variant
        total = machine.run().cycles
        machine = Machine(task.config)
        machine.load(task.workload.activity)
        machine.run(checkpoint_at=[total // 2], checkpoint_dir=str(ckdir))
        (snapshot,) = ckdir.glob("*.ckpt")
        path = ckdir / (task.key() + ".ckpt")
        snapshot.rename(path)
        return str(path)

    def test_batch_resumes_bit_identically_then_cleans_up(self, tmp_path):
        base = _tasks()[0]
        (ref,) = run_many([base], journal=None)
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        path = self._plant_leftover(base, ckdir)
        batch = run_many_detailed(
            [base], journal=None,
            checkpoint_every=50, checkpoint_dir=str(ckdir),
        )
        assert batch.complete
        assert batch.results == [ref]
        assert not os.path.exists(path)

    def test_corrupt_leftover_falls_back_to_fresh_run(self, tmp_path):
        base = _tasks()[0]
        (ref,) = run_many([base], journal=None)
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        path = self._plant_leftover(base, ckdir)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # torn write
        result = run_workload(
            base.workload, base.config, prefetch=False, restore_from=path,
        )
        assert result == ref


class TestFailureKeepsCheckpoint:
    def test_failed_task_checkpoint_kept_and_journaled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = FailAfterCheckpointTask("doomed")
        batch = run_many_detailed(
            [task], cache=cache, checkpoint_every=10,
        )
        assert not batch.complete
        path = str(tmp_path / "cache" / "checkpoints" / "stub-doomed.ckpt")
        # The snapshot is the next attempt's resume point: kept.
        assert os.path.exists(path)
        entry = SweepJournal.for_cache(cache).replay()["stub-doomed"]
        assert entry.failed
        assert entry.checkpoint == path


class TestTimeoutResumesFromCheckpoint:
    def test_retry_after_timeout_kill_restores(self, tmp_path):
        task = HangUnlessRestoredTask("hang-once")
        batch = run_many_detailed(
            [task], journal=None,
            timeout=1.5, retries=2, backoff=0.1,
            checkpoint_every=10, checkpoint_dir=str(tmp_path),
        )
        assert batch.complete
        assert batch.results[0].cycles == 2  # the restored-path result
        assert batch.attempts[0] == 2

    def test_timeout_without_checkpoint_still_fails_cleanly(self, tmp_path):
        task = HangUnlessRestoredTask("hang-forever")
        batch = run_many_detailed(
            [task], journal=None,
            timeout=1.0, retries=0, backoff=0.1,
            checkpoint_every=None,  # layer off: no snapshot, plain timeout
        )
        assert not batch.complete
        assert batch.failures[0].kind == TIMEOUT


class TestResumePrunesOrphans:
    def _settled_batch_with_checkpoints(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks()
        assert run_many_detailed(
            tasks, cache=cache, checkpoint_every=50, keep_checkpoints=True,
        ).complete
        ckdir = tmp_path / "cache" / "checkpoints"
        assert len(list(ckdir.glob("*.ckpt"))) == len(tasks)
        return cache, tasks, ckdir

    def test_resume_deletes_done_entries_checkpoints(self, tmp_path):
        cache, tasks, ckdir = self._settled_batch_with_checkpoints(tmp_path)
        batch = run_many_detailed(tasks, cache=cache, resume=True)
        assert batch.complete
        assert batch.resumed == len(tasks)  # served from journal + cache
        assert list(ckdir.glob("*.ckpt")) == []

    def test_keep_checkpoints_escape_hatch(self, tmp_path):
        cache, tasks, ckdir = self._settled_batch_with_checkpoints(tmp_path)
        batch = run_many_detailed(
            tasks, cache=cache, resume=True, keep_checkpoints=True,
        )
        assert batch.complete
        assert len(list(ckdir.glob("*.ckpt"))) == len(tasks)
