"""CLI surface: every command runs and prints sane output."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _test_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "test")
    # Keep CLI tests hermetic: don't touch the user's result cache.
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))


class TestInfo:
    def test_info_prints_tables_2_and_4(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "512 MB, 150 cycles" in out
        assert "156 kB" in out
        assert "4 x 8 B/cycle" in out
        assert "queue 16" in out


class TestRun:
    def test_run_prefetch_default(self, capsys):
        assert main(["run", "mmul", "--spes", "2"]) == 0
        out = capsys.readouterr().out
        assert "with prefetching" in out
        assert "cycles" in out

    def test_run_no_prefetch(self, capsys):
        assert main(["run", "mmul", "--spes", "2", "--no-prefetch"]) == 0
        out = capsys.readouterr().out
        assert "original DTA" in out

    def test_run_compare_reports_speedup(self, capsys):
        assert main(["run", "zoom", "--spes", "2", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "decoupled: 100%" in out

    def test_run_latency_override(self, capsys):
        assert main(
            ["run", "mmul", "--spes", "2", "--latency", "1", "--compare"]
        ) == 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fibonacci"])


class TestSweep:
    def test_sweep_prints_both_tables(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Execution time" in out
        assert "Scalability" in out

    def test_sweep_parallel_jobs_matches_serial(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1", "2", "--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", "mmul", "--spes", "1", "2", "--jobs", "2",
                     "--no-cache"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_sweep_second_run_served_from_cache(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        first = capsys.readouterr()
        assert "(ran)" in first.err
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        second = capsys.readouterr()
        assert "(cached)" in second.err and "(ran)" not in second.err
        assert second.out == first.out

    def test_sweep_prints_cache_summary(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        assert "cache:" in capsys.readouterr().err

    def test_sweep_resilience_flags_accepted(self, capsys):
        # A generous timeout forces the parent-enforced pool path without
        # ever firing; the sweep must behave exactly as a plain run.
        assert main([
            "sweep", "mmul", "--spes", "1", "--no-cache",
            "--task-timeout", "300", "--retries", "1", "--keep-going",
        ]) == 0
        out = capsys.readouterr().out
        assert "Execution time" in out

    def test_resume_rejects_no_cache(self):
        with pytest.raises(SystemExit, match="resume"):
            main(["sweep", "mmul", "--spes", "1", "--resume", "--no-cache"])


class TestTables:
    def test_tables_prints_all_artifacts(self, capsys):
        assert main(["tables", "--spes", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "Figure 5 (no prefetching)" in out
        assert "Figure 5 (with prefetching)" in out
        assert "Figure 9" in out


class TestDisasm:
    def test_disasm_baseline(self, capsys):
        assert main(["disasm", "mmul", "--template", "mmul_worker"]) == 0
        out = capsys.readouterr().out
        assert "READ" in out and ".EX:" in out

    def test_disasm_prefetch_shows_pf_block(self, capsys):
        assert main(
            ["disasm", "mmul", "--template", "mmul_worker", "--prefetch"]
        ) == 0
        out = capsys.readouterr().out
        assert ".PF:" in out and "DMAGET" in out and "LLOAD" in out

    def test_disasm_all_templates(self, capsys):
        assert main(["disasm", "bitcnt"]) == 0
        out = capsys.readouterr().out
        for name in ("bitcnt_root", "k_ntbl", "bitcnt_join"):
            assert name in out


class TestReproduce:
    def test_reproduce_writes_json_and_csv(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        csv_path = tmp_path / "results.csv"
        assert main([
            "reproduce", "--spes", "1", "2",
            "-o", str(out), "--csv", str(csv_path),
        ]) == 0
        import json

        data = json.loads(out.read_text())
        assert set(data["experiments"]) == {
            "scaling", "table5", "fig5", "fig9", "latency1"
        }
        text = csv_path.read_text()
        assert "workload,spes,variant" in text
        assert "prefetch" in text

    def test_reproduce_stdout_mode(self, capsys):
        assert main(["reproduce", "--spes", "1"]) == 0
        out = capsys.readouterr().out
        import json

        json.loads(out)

    def test_reproduce_resume_after_completed_run(self, capsys):
        assert main(["reproduce", "--spes", "1"]) == 0
        capsys.readouterr()
        assert main(["reproduce", "--spes", "1", "--resume"]) == 0
        err = capsys.readouterr().err
        # Every task was settled by the first run's journal + cache.
        assert "resume:" in err
        assert "(ran)" not in err


class TestTimeline:
    def test_timeline_renders_gantt(self, capsys):
        assert main(["timeline", "mmul", "--spes", "2", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "legend" in out
        assert "busy" in out

    def test_timeline_no_prefetch_has_no_pf_segments(self, capsys):
        assert main(
            ["timeline", "mmul", "--spes", "2", "--no-prefetch"]
        ) == 0
        out = capsys.readouterr().out
        bars = [
            line.split("|")[1]
            for line in out.splitlines()
            if line.count("|") >= 2
        ]
        assert bars and all("p" not in bar for bar in bars)


class TestProfile:
    def test_profile_writes_all_artifacts(self, tmp_path, capsys):
        profile = tmp_path / "p.json"
        trace = tmp_path / "t.trace.json"
        csv_path = tmp_path / "m.csv"
        events = tmp_path / "e.jsonl"
        assert main([
            "profile", "bitcnt", "--spes", "2",
            "--profile", str(profile), "--perfetto", str(trace),
            "--metrics-csv", str(csv_path), "--trace-jsonl", str(events),
        ]) == 0
        out = capsys.readouterr().out
        assert "pipeline usage" in out
        assert "DMA intervals overlapped" in out
        import json

        from repro.obs import validate_trace_events

        data = json.loads(profile.read_text())
        assert data["version"] == 1
        doc = json.loads(trace.read_text())
        assert validate_trace_events(doc) == []
        assert csv_path.read_text().startswith("instrument,")
        assert events.read_text().splitlines()

    def test_profile_no_prefetch(self, capsys):
        assert main(["profile", "bitcnt", "--spes", "1",
                     "--no-prefetch"]) == 0
        assert "original DTA" in capsys.readouterr().out


class TestDiff:
    def test_self_diff_passes_at_zero_threshold(self, tmp_path, capsys):
        profile = tmp_path / "p.json"
        assert main(["profile", "bitcnt", "--spes", "1",
                     "--profile", str(profile)]) == 0
        capsys.readouterr()
        assert main(["diff", str(profile), str(profile),
                     "--max-delta", "0"]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        import json

        profile = tmp_path / "p.json"
        assert main(["profile", "bitcnt", "--spes", "1",
                     "--profile", str(profile)]) == 0
        capsys.readouterr()
        data = json.loads(profile.read_text())
        data["cycles"] = int(data["cycles"] * 2)
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(data))
        assert main(["diff", str(profile), str(worse),
                     "--max-delta", "2"]) == 1
        assert "regression" in capsys.readouterr().out

    def test_missing_file_rejected(self):
        with pytest.raises(SystemExit, match="diff:"):
            main(["diff", "/nonexistent/a.json", "/nonexistent/b.json"])


class TestCacheCommand:
    # ``repro sweep`` goes through the caching runner: one SPE point
    # stores two entries (base + prefetch).

    def test_summary_of_a_populated_cache(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out
        assert "entries:    2" in out
        assert "journal:" in out

    def test_clear_empties_the_cache(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared 2 cached result(s)" in out
        assert main(["cache"]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_trim_to_budget_evicts(self, capsys):
        assert main(["sweep", "mmul", "--spes", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 2" in out
        assert "entries:    0" in out

    def test_bad_size_spec_raises(self):
        with pytest.raises(ValueError, match="byte size"):
            main(["cache", "--max-bytes", "plenty"])


class TestServeParser:
    def test_serve_and_submit_commands_are_wired(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--workers", "3"])
        assert args.func.__name__ == "cmd_serve"
        assert args.workers == 3
        args = parser.parse_args(
            ["submit", "sweep", "bitcnt", "--spes", "1", "2"]
        )
        assert args.func.__name__ == "cmd_submit"
        assert args.spes == [1, 2]

    def test_submit_against_dead_server_fails_cleanly(self, capsys):
        assert main(
            ["submit", "run", "bitcnt", "--port", "1", "--spes", "1"]
        ) == 1
        assert "no server" in capsys.readouterr().err
