"""Sweep journal: append/replay round-trips, tolerance, validation."""

from __future__ import annotations

import json

from repro.bench.cache import ResultCache
from repro.bench.journal import SweepJournal


class TestRoundTrip:
    def test_done_and_failed_entries(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record_done("k1", "mmul spes=1 base", 1, 0.25)
        journal.record_failed(
            "k2", "mmul spes=1 prefetch", "timeout", 3, 9.5,
            "TaskTimeout: timed out after 3.0s",
        )
        replay = journal.replay()
        assert set(replay) == {"k1", "k2"}
        assert replay["k1"].done and replay["k1"].attempts == 1
        assert replay["k2"].failed and replay["k2"].kind == "timeout"
        assert replay["k2"].attempts == 3
        assert "TaskTimeout" in replay["k2"].error
        assert journal.records == 2

    def test_last_entry_per_key_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record_failed("k", "task", "worker-crash", 1, 0.1, "died")
        journal.record_done("k", "task", 2, 0.2)
        replay = journal.replay()
        assert len(replay) == 1 and replay["k"].done

    def test_missing_file_replays_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "nope.jsonl").replay() == {}

    def test_len_and_clear(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record_done("k", "task", 1, 0.0)
        assert len(journal) == 1
        journal.clear()
        assert len(journal) == 0
        journal.clear()  # idempotent on a missing file


class TestRobustness:
    def test_torn_and_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_done("good", "task", 1, 0.0)
        with open(path, "a") as fh:
            fh.write("{truncated by a crash mid-wr")  # no newline either
        journal2 = SweepJournal(path)
        journal2.record_done("good2", "task2", 1, 0.0)
        replay = journal2.replay()
        assert set(replay) == {"good", "good2"}

    def test_other_versions_and_shapes_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        lines = [
            json.dumps({"v": 99, "key": "future", "status": "done"}),
            json.dumps(["not", "a", "dict"]),
            json.dumps({"v": 1, "key": "missing-fields"}),
            json.dumps({"v": 1, "key": "k", "label": "t",
                        "status": "bogus-status", "attempts": 1}),
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        assert SweepJournal(path).replay() == {}

    def test_unwritable_path_degrades_silently(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        journal = SweepJournal(blocker / "impossible" / "journal.jsonl")
        journal.record_done("k", "task", 1, 0.0)  # must not raise
        assert journal.records == 0
        assert journal.replay() == {}


class TestForCache:
    def test_journal_lives_next_to_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal.for_cache(cache)
        assert journal.path == cache.root / "journal.jsonl"
        journal.record_done("k", "task", 1, 0.0)
        # The journal must not count as a cache entry.
        assert len(cache) == 0
