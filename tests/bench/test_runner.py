"""Experiment runners: pair runs, sweeps, verification, scales."""

from __future__ import annotations

import pytest

from repro.bench.runner import PairResult, run_pair, run_workload, sweep
from repro.bench.scale import SCALES, builders, current_scale, spe_counts
from repro.sim.config import paper_config
from repro.testing import small_config
from repro.workloads import matmul


class TestRunWorkload:
    def test_verification_catches_wrong_oracle(self):
        wl = matmul.build(n=4, threads=2)
        wl.oracle["C"][0] += 1  # sabotage the expected output
        with pytest.raises(AssertionError, match="wrong output"):
            run_workload(wl, small_config(num_spes=1), prefetch=False)

    def test_verification_can_be_skipped(self):
        wl = matmul.build(n=4, threads=2)
        wl.oracle["C"][0] += 1
        run_workload(wl, small_config(num_spes=1), prefetch=False,
                     verify=False)


class TestPairResult:
    def test_speedup_and_decoupling(self):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(2))
        assert pair.speedup == pair.base.cycles / pair.prefetch.cycles
        assert pair.decoupled_fraction == 1.0
        assert isinstance(pair, PairResult)

    def test_decoupled_fraction_zero_without_reads(self):
        pair = PairResult.__new__(PairResult)
        pair.base = run_workload(
            matmul.build(n=4, threads=2), small_config(), prefetch=False
        )
        # Fabricate a prefetch run with equal reads -> fraction 0 when
        # base has none is handled by the property directly:
        pair.prefetch = pair.base
        assert pair.decoupled_fraction == 0.0


class TestSweep:
    def test_sweep_reuses_one_workload(self):
        calls = []

        def build():
            calls.append(1)
            return matmul.build(n=4, threads=2)

        scaling = sweep(build, spes=(1, 2))
        assert len(calls) == 1
        assert set(scaling.pairs) == {1, 2}

    def test_scalability_normalizes_to_one_spe(self):
        scaling = sweep(lambda: matmul.build(n=4, threads=4), spes=(1, 2))
        assert scaling.baseline_spes == 1
        base = scaling.scalability(prefetch=False)
        assert base[1] == 1.0
        assert base[2] > 1.0

    def test_scalability_without_one_spe_uses_smallest(self):
        # Regression: the docstring promised a 1-SPE baseline but the
        # code always used min(pairs); the baseline is now explicit —
        # 1 when swept, otherwise the smallest swept count.
        scaling = sweep(lambda: matmul.build(n=4, threads=4), spes=(2, 4, 8))
        assert scaling.baseline_spes == 2
        for prefetch in (False, True):
            scal = scaling.scalability(prefetch=prefetch)
            assert set(scal) == {2, 4, 8}
            assert scal[2] == 1.0
            assert scal[4] > 1.0

    def test_speedup_at(self):
        scaling = sweep(lambda: matmul.build(n=4, threads=2), spes=(1,))
        assert scaling.speedup_at(1) > 1.0

    def test_sweep_workload_reuse_is_mutation_free(self):
        # sweep() builds once and reuses the Workload across machine
        # sizes and variants; guard against hidden mutation of
        # activity.globals or templates by running the same object
        # repeatedly and across sizes: cycle counts must be identical
        # and outputs oracle-clean (run_pair verifies) every time.
        wl = matmul.build(n=4, threads=2)
        first_small = run_pair(wl, paper_config(1))
        mid = run_pair(wl, paper_config(2))
        second_small = run_pair(wl, paper_config(1))
        assert first_small.base.cycles == second_small.base.cycles
        assert first_small.prefetch.cycles == second_small.prefetch.cycles
        assert mid.base.cycles != 0  # the interleaved size actually ran


class TestScales:
    def test_three_scales_cover_three_benchmarks(self):
        for scale, params in SCALES.items():
            assert set(params) == {"bitcnt", "mmul", "zoom"}

    def test_builders_produce_workloads(self):
        for name, build in builders("test").items():
            wl = build()
            assert wl.activity.templates

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_scale() == "paper"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert current_scale() == "default"

    def test_spe_counts_match_paper_axis(self):
        assert spe_counts() == (1, 2, 4, 8)
