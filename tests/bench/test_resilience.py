"""Resilience layer: timeouts, retry taxonomy, crash recovery, resume.

The synthetic tasks below are module-level (picklable) stand-ins that
expose the same protocol as :class:`repro.bench.parallel.RunTask`
(``label``, ``key()``, ``run()``) so the failure machinery can be driven
deterministically: tasks that hang, hang once, kill their own worker, or
raise.  The resume/journal tests use real workloads end to end.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.bench.cache import ResultCache
from repro.bench.export import reproduce_all, to_json
from repro.bench.journal import SweepJournal
from repro.bench.parallel import (
    CRASH,
    ERROR,
    TIMEOUT,
    RunTask,
    TaskFailure,
    TaskTimeout,
    WorkerCrash,
    pair_tasks,
    run_many,
    run_many_detailed,
)
from repro.bench.runner import sweep
from repro.sim.config import paper_config
from repro.workloads import matmul


@dataclass(frozen=True)
class StubResult:
    cycles: int = 1


@dataclass(frozen=True)
class StubTask:
    name: str
    cycles: int = 1

    @property
    def label(self) -> str:
        return self.name

    def key(self) -> str:
        return f"stub:{self.name}"

    def run(self) -> StubResult:
        return StubResult(self.cycles)


@dataclass(frozen=True)
class FlagStubTask(StubTask):
    """Succeeds immediately and drops a flag file (for sequencing)."""

    flag: str = ""

    def run(self) -> StubResult:
        if self.flag:
            open(self.flag, "w").close()
        return StubResult(self.cycles)


@dataclass(frozen=True)
class HangTask(StubTask):
    seconds: float = 60.0

    def run(self) -> StubResult:
        time.sleep(self.seconds)
        return StubResult(self.cycles)


@dataclass(frozen=True)
class HangOnceTask(StubTask):
    """Hangs on the first attempt, succeeds on the retry."""

    flag: str = ""

    def run(self) -> StubResult:
        if not os.path.exists(self.flag):
            open(self.flag, "w").close()
            time.sleep(60)
        return StubResult(self.cycles)


@dataclass(frozen=True)
class KillOnceTask(StubTask):
    """SIGKILLs its own worker on the first attempt (an OOM stand-in)."""

    flag: str = ""

    def run(self) -> StubResult:
        if not os.path.exists(self.flag):
            open(self.flag, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return StubResult(self.cycles)


@dataclass(frozen=True)
class KillAlwaysTask(StubTask):
    def run(self) -> StubResult:  # pragma: no cover - dies before return
        os.kill(os.getpid(), signal.SIGKILL)
        return StubResult(self.cycles)


@dataclass(frozen=True)
class RaiseTask(StubTask):
    def run(self) -> StubResult:
        raise ValueError("deterministic boom")


@dataclass(frozen=True)
class InterruptTask(StubTask):
    """Raises KeyboardInterrupt (a Ctrl-C stand-in for the serial path)."""

    def run(self) -> StubResult:
        raise KeyboardInterrupt


@dataclass(frozen=True)
class WaitThenInterruptTask(StubTask):
    """Waits for a flag file, then raises KeyboardInterrupt."""

    flag: str = ""

    def run(self) -> StubResult:
        deadline = time.monotonic() + 30
        while not os.path.exists(self.flag):
            if time.monotonic() > deadline:  # pragma: no cover - safety net
                raise RuntimeError("flag never appeared")
            time.sleep(0.01)
        raise KeyboardInterrupt


class TestTimeouts:
    def test_hung_task_times_out_and_fails(self):
        batch = run_many_detailed(
            [HangTask("hang")], jobs=1, timeout=0.4, retries=0, backoff=0,
            journal=None,
        )
        assert batch.results == [None]
        info = batch.failures[0]
        assert info.kind == TIMEOUT
        assert info.attempts == 1
        assert isinstance(info.error, TaskTimeout)

    def test_hung_task_is_retried_then_succeeds(self, tmp_path):
        task = HangOnceTask("flaky", cycles=5, flag=str(tmp_path / "flag"))
        messages: list[str] = []
        batch = run_many_detailed(
            [task], jobs=1, timeout=1.0, retries=2, backoff=0,
            journal=None, progress=messages.append,
        )
        assert batch.complete
        assert batch.results[0].cycles == 5
        assert batch.attempts[0] == 2
        assert any("timed out" in m and "retrying" in m for m in messages)

    def test_run_many_raises_with_timeout_taxonomy(self):
        with pytest.raises(TaskFailure) as exc:
            run_many(
                [HangTask("hang")], jobs=1, timeout=0.3, retries=0,
                backoff=0, journal=None,
            )
        assert exc.value.failures["hang"].kind == TIMEOUT

    def test_healthy_tasks_survive_a_timeout_kill(self):
        tasks = [StubTask("a", 2), HangTask("hang"), StubTask("b", 3)]
        batch = run_many_detailed(
            tasks, jobs=2, timeout=0.5, retries=0, backoff=0, journal=None,
        )
        assert batch.results[0] is not None and batch.results[2] is not None
        assert set(batch.failures) == {1}


class TestWorkerCrash:
    def test_sigkill_rebuilds_pool_and_retries(self, tmp_path):
        tasks = [
            StubTask("a", 2),
            KillOnceTask("oom-victim", cycles=7,
                         flag=str(tmp_path / "killed")),
            StubTask("b", 3),
        ]
        messages: list[str] = []
        batch = run_many_detailed(
            tasks, jobs=2, retries=3, backoff=0, journal=None,
            progress=messages.append,
        )
        assert batch.complete
        assert [r.cycles for r in batch.results] == [2, 7, 3]
        assert batch.attempts[1] >= 2
        assert any("rebuilding the pool" in m for m in messages)

    def test_crash_budget_exhausted_fails_with_crash_kind(self):
        # timeout forces the pool path even for a single task, and also
        # bounds the test if kill delivery is ever delayed.
        batch = run_many_detailed(
            [KillAlwaysTask("poison")], jobs=2, timeout=30, retries=1,
            backoff=0, journal=None,
        )
        info = batch.failures[0]
        assert info.kind == CRASH
        assert info.attempts == 2  # first try + one retry
        assert isinstance(info.error, WorkerCrash)


class TestDeterministicErrors:
    @pytest.mark.parametrize("pooled", (False, True))
    def test_error_fails_fast_and_is_never_retried(self, pooled):
        kwargs = dict(timeout=30) if pooled else {}
        batch = run_many_detailed(
            [RaiseTask("boom")], jobs=2 if pooled else 1, retries=5,
            backoff=0, journal=None, **kwargs,
        )
        info = batch.failures[0]
        assert info.kind == ERROR
        assert info.attempts == 1  # fail fast: no retry can change it
        assert isinstance(info.error, ValueError)


class TestJournalAndResume:
    def test_resume_skips_settled_tasks_without_simulating(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")
        wl = matmul.build(n=4, threads=2)
        tasks = list(pair_tasks(wl, paper_config(1)))
        first = run_many_detailed(tasks, cache=cache)
        assert first.complete and first.resumed == 0
        assert SweepJournal.for_cache(cache).path.exists()

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-simulated a settled task")

        monkeypatch.setattr("repro.bench.parallel.run_workload", forbidden)
        second = run_many_detailed(tasks, cache=cache, resume=True)
        assert second.complete
        assert second.resumed == 2
        assert [r.cycles for r in second.results] == [
            r.cycles for r in first.results
        ]

    def test_replayed_deterministic_failure_is_not_rerun(
        self, tmp_path, monkeypatch
    ):
        bad = matmul.build(n=4, threads=2)
        bad.oracle["C"][0] += 1  # sabotage: wrong output every time
        tasks = [RunTask(bad, paper_config(1), prefetch=False)]
        cache = ResultCache(tmp_path / "cache")
        first = run_many_detailed(tasks, cache=cache)
        assert first.failures[0].kind == ERROR

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-simulated a deterministic failure")

        monkeypatch.setattr("repro.bench.parallel.run_workload", forbidden)
        second = run_many_detailed(tasks, cache=cache, resume=True)
        assert second.resumed == 1
        info = second.failures[0]
        assert info.kind == ERROR
        assert "replayed from journal" in str(info.error)

    def test_done_journal_entry_without_cache_result_is_not_trusted(
        self, tmp_path
    ):
        # A journal claiming completion can never fabricate a result: the
        # RunResult must exist in the cache under the same key.
        cache = ResultCache(tmp_path / "cache")
        task = pair_tasks(matmul.build(n=4, threads=2), paper_config(1))[0]
        journal = SweepJournal.for_cache(cache)
        journal.record_done(task.key(), task.label, 1, 0.0)
        batch = run_many_detailed([task], cache=cache, resume=True)
        assert batch.complete
        assert batch.resumed == 0
        assert batch.attempts[0] == 1  # it really ran

    def test_interrupted_reproduce_resumes_bit_identical(self, tmp_path):
        clean_cache = ResultCache(tmp_path / "clean")
        clean = reproduce_all(scale="test", spes=(1,), cache=clean_cache)

        # Simulate a batch killed mid-flight: only one pair completed
        # (and was checkpointed) before the "crash".
        resumed_cache = ResultCache(tmp_path / "resume")
        from repro.bench.scale import builders

        wl = builders("test")["mmul"]()
        run_many(list(pair_tasks(wl, paper_config(1))), cache=resumed_cache)
        assert SweepJournal.for_cache(resumed_cache).path.exists()

        resumed = reproduce_all(
            scale="test", spes=(1,), cache=resumed_cache, resume=True,
        )
        assert to_json(resumed) == to_json(clean)
        # The settled pair was served from the checkpoint, not re-run.
        assert resumed_cache.hits == 2


class TestKeyboardInterrupt:
    def test_serial_interrupt_checkpoints_finished_work(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        tasks = [StubTask("a"), InterruptTask("ctrl-c"), StubTask("b")]
        with pytest.raises(KeyboardInterrupt):
            run_many(tasks, jobs=1, journal=journal)
        replay = journal.replay()
        assert "stub:a" in replay and replay["stub:a"].done
        assert "stub:b" not in replay  # never started; resumable later

    def test_pool_interrupt_harvests_finished_futures(self, tmp_path):
        flag = str(tmp_path / "a-done")
        journal = SweepJournal(tmp_path / "journal.jsonl")
        tasks = [
            FlagStubTask("a", flag=flag),
            WaitThenInterruptTask("ctrl-c", flag=flag),
        ]
        with pytest.raises(KeyboardInterrupt):
            run_many(tasks, jobs=2, journal=journal, backoff=0)
        replay = journal.replay()
        assert "stub:a" in replay and replay["stub:a"].done


class TestKeepGoing:
    def _fail_zoom(self, monkeypatch):
        from repro.bench import parallel

        real = parallel.run_workload

        def flaky(workload, config, **kwargs):
            if workload.name.startswith("zoom"):
                raise RuntimeError("injected permanent failure")
            return real(workload, config, **kwargs)

        monkeypatch.setattr("repro.bench.parallel.run_workload", flaky)

    def test_reproduce_keep_going_emits_degraded_manifest(self, monkeypatch):
        self._fail_zoom(monkeypatch)
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        data = reproduce_all(
            scale="test", spes=(1,), jobs=1, keep_going=True,
        )
        degraded = data["degraded"]
        assert degraded and all(d["kind"] == "error" for d in degraded)
        assert all("zoom" in d["label"] for d in degraded)
        assert all("injected permanent failure" in d["error"]
                   for d in degraded)
        for section in ("scaling", "table5", "fig5", "fig9", "latency1"):
            assert "zoom" not in data["experiments"][section]
            assert {"bitcnt", "mmul"} <= set(data["experiments"][section])
        to_json(data)  # partial artifacts stay serializable

    def test_reproduce_without_keep_going_still_aborts(self, monkeypatch):
        self._fail_zoom(monkeypatch)
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        with pytest.raises(TaskFailure, match="injected permanent failure"):
            reproduce_all(scale="test", spes=(1,), jobs=1)

    def test_sweep_keep_going_drops_failed_points(self, monkeypatch):
        from repro.bench import parallel

        real = parallel.run_workload

        def flaky(workload, config, **kwargs):
            if config.num_spes == 2:
                raise RuntimeError("2-SPE point is cursed")
            return real(workload, config, **kwargs)

        monkeypatch.setattr("repro.bench.parallel.run_workload", flaky)
        scaling = sweep(
            lambda: matmul.build(n=4, threads=2), spes=(1, 2), jobs=1,
            keep_going=True,
        )
        assert set(scaling.pairs) == {1}
        assert scaling.pairs[1].base.cycles > 0


@dataclass(frozen=True)
class SigtermSelfTask(StubTask):
    """Raises SIGTERM in-process (serial-path stand-in for docker stop)."""

    def run(self) -> StubResult:
        signal.raise_signal(signal.SIGTERM)
        return StubResult(self.cycles)  # pragma: no cover - never reached


@dataclass(frozen=True)
class WaitThenSigtermParentTask(StubTask):
    """Waits for a flag file, then SIGTERMs the parent process (the
    pool-path stand-in: a worker observes the batch being evicted)."""

    flag: str = ""

    def run(self) -> StubResult:
        deadline = time.monotonic() + 30
        while not os.path.exists(self.flag):
            if time.monotonic() > deadline:  # pragma: no cover - safety net
                raise RuntimeError("flag never appeared")
            time.sleep(0.01)
        # Give the parent time to settle and journal the finished
        # sibling future before the eviction signal lands.
        time.sleep(1.0)
        os.kill(os.getppid(), signal.SIGTERM)
        time.sleep(30)  # pragma: no cover - cancelled by the harvest
        return StubResult(self.cycles)


class TestSigterm:
    """SIGTERM must behave exactly like Ctrl-C: finished work is
    harvested into cache and journal, then SweepTerminated propagates."""

    def test_serial_sigterm_checkpoints_finished_work(self, tmp_path):
        from repro.bench.parallel import SweepTerminated

        journal = SweepJournal(tmp_path / "journal.jsonl")
        tasks = [StubTask("a"), SigtermSelfTask("evicted"), StubTask("b")]
        with pytest.raises(SweepTerminated):
            run_many(tasks, jobs=1, journal=journal)
        replay = journal.replay()
        assert "stub:a" in replay and replay["stub:a"].done
        assert "stub:b" not in replay  # never started; resumable later

    def test_pool_sigterm_harvests_finished_futures(self, tmp_path):
        from repro.bench.parallel import SweepTerminated

        flag = str(tmp_path / "a-done")
        journal = SweepJournal(tmp_path / "journal.jsonl")
        tasks = [
            FlagStubTask("a", flag=flag),
            WaitThenSigtermParentTask("evicted", flag=flag),
        ]
        with pytest.raises(SweepTerminated):
            run_many(tasks, jobs=2, journal=journal, backoff=0)
        replay = journal.replay()
        assert "stub:a" in replay and replay["stub:a"].done

    def test_previous_handler_is_restored(self):
        seen = []

        def handler(signum, frame):  # pragma: no cover - never fired
            seen.append(signum)

        previous = signal.signal(signal.SIGTERM, handler)
        try:
            run_many_detailed([StubTask("a")], jobs=1, journal=None)
            assert signal.getsignal(signal.SIGTERM) is handler
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_sigterm_in_worker_thread_is_not_installed(self, tmp_path):
        # run_many off the main thread (the serving gateway does this)
        # must not try to install a handler -- and must still work.
        import threading

        out = []

        def work():
            batch = run_many_detailed(
                [StubTask("a", 5)], jobs=1, journal=None,
            )
            out.append(batch)

        before = signal.getsignal(signal.SIGTERM)
        t = threading.Thread(target=work)
        t.start()
        t.join(30)
        assert out and out[0].complete
        assert signal.getsignal(signal.SIGTERM) is before
