"""Persistent result cache: hits, invalidation, robustness, reproduce."""

from __future__ import annotations

import dataclasses
import pytest

from repro.bench.cache import ResultCache, code_stamp, default_cache, result_key
from repro.bench.export import reproduce_all, to_json
from repro.bench.parallel import pair_tasks, run_many
from repro.bench.runner import run_pair
from repro.compiler.passes import PrefetchOptions
from repro.sim.config import paper_config
from repro.workloads import matmul


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "results")


class TestKeys:
    def test_key_is_deterministic(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        assert result_key(wl, cfg, True) == result_key(wl, cfg, True)

    def test_key_varies_with_inputs(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        base = result_key(wl, cfg, prefetch=False)
        assert result_key(wl, cfg, prefetch=True) != base
        assert result_key(wl, paper_config(4), prefetch=False) != base
        assert result_key(wl, cfg.with_latency(1), prefetch=False) != base
        assert result_key(wl, cfg, False, max_cycles=10) != base
        other = matmul.build(n=8, threads=2)
        assert result_key(other, cfg, prefetch=False) != base

    def test_key_varies_with_options(self):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        assert result_key(wl, cfg, True, PrefetchOptions()) != result_key(
            wl, cfg, True, PrefetchOptions(worthwhile_threshold=0.9)
        )

    def test_key_varies_with_code_stamp(self, monkeypatch):
        wl = matmul.build(n=4, threads=2)
        cfg = paper_config(2)
        before = result_key(wl, cfg, False)
        monkeypatch.setattr(
            "repro.bench.cache.code_stamp", lambda: "different-code"
        )
        assert result_key(wl, cfg, False) != before

    def test_key_varies_with_activity_content(self):
        # Same name + params but different generated data must not alias.
        a = matmul.build(n=4, threads=2)
        b = matmul.build(n=4, threads=2)
        b.activity.globals[0] = dataclasses.replace(
            b.activity.globals[0],
            data=tuple(x + 1 for x in b.activity.globals[0].data),
        )
        assert result_key(a, paper_config(1), False) != result_key(
            b, paper_config(1), False
        )

    def test_code_stamp_is_stable_within_process(self):
        assert code_stamp() == code_stamp()
        assert len(code_stamp()) == 16


class TestStore:
    def test_roundtrip(self, cache):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(1), cache=cache)
        assert cache.stores == 2 and cache.hits == 0
        again = run_pair(wl, paper_config(1), cache=cache)
        assert cache.hits == 2
        assert again.base.cycles == pair.base.cycles
        assert again.prefetch.cycles == pair.prefetch.cycles

    def test_corrupt_entry_is_a_miss(self, cache):
        wl = matmul.build(n=4, threads=2)
        run_pair(wl, paper_config(1), cache=cache)
        for path in cache.root.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        pair = run_pair(wl, paper_config(1), cache=cache)
        assert pair.base.cycles > 0
        assert cache.hits == 0

    def test_corrupt_entry_is_quarantined_not_reparsed(self, cache):
        wl = matmul.build(n=4, threads=2)
        pair = run_pair(wl, paper_config(1), cache=cache)
        keys = [p.stem for p in cache.root.glob("*.pkl")]
        victim = keys[0]
        (cache.root / f"{victim}.pkl").write_bytes(b"not a pickle")
        assert cache.get(victim) is None
        assert cache.corrupt == 1
        # The bytes moved aside for post-mortems; the key is a clean miss
        # now (no .pkl to re-parse on the next lookup).
        assert (cache.root / f"{victim}.corrupt").exists()
        assert not (cache.root / f"{victim}.pkl").exists()
        assert cache.get(victim) is None
        assert cache.corrupt == 1  # quarantined once, not per lookup
        assert "corrupt=1" in repr(cache)
        assert "quarantined" in cache.summary()
        # A re-run heals the entry in place.
        healed = run_pair(wl, paper_config(1), cache=cache)
        assert healed.base.cycles == pair.base.cycles

    def test_clear_also_removes_quarantined_entries(self, cache):
        run_pair(matmul.build(n=4, threads=2), paper_config(1), cache=cache)
        victim = next(cache.root.glob("*.pkl")).stem
        (cache.root / f"{victim}.pkl").write_bytes(b"garbage")
        cache.get(victim)
        assert (cache.root / f"{victim}.corrupt").exists()
        cache.clear()
        assert not list(cache.root.glob("*.corrupt"))
        assert len(cache) == 0

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        cache = ResultCache(blocker / "impossible")
        pair = run_pair(
            matmul.build(n=4, threads=2), paper_config(1), cache=cache
        )
        assert pair.base.cycles > 0
        assert cache.stores == 0

    def test_len_and_clear(self, cache):
        assert len(cache) == 0
        run_pair(matmul.build(n=4, threads=2), paper_config(1), cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestDefaultCache:
    def test_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "c"))
        cache = default_cache()
        assert cache is not None and cache.root == tmp_path / "c"

    def test_env_off(self, monkeypatch):
        for value in ("off", "0", "none", ""):
            monkeypatch.setenv("REPRO_BENCH_CACHE", value)
            assert default_cache() is None

    def test_default_location_under_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = default_cache()
        assert cache is not None and cache.root == tmp_path / "repro-bench"


class TestCachedReproduce:
    def test_second_reproduce_performs_zero_simulations(
        self, cache, monkeypatch
    ):
        first = reproduce_all(scale="test", spes=(1,), cache=cache)
        assert cache.misses > 0 and cache.hits == 0
        executed = cache.misses

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cached reproduce re-simulated a run")

        monkeypatch.setattr("repro.bench.parallel.run_workload", forbidden)
        second = reproduce_all(scale="test", spes=(1,), cache=cache)
        assert cache.hits == executed
        assert to_json(first) == to_json(second)

    def test_cache_mixes_hits_and_misses(self, cache):
        wl = matmul.build(n=4, threads=2)
        run_many(list(pair_tasks(wl, paper_config(1))), cache=cache)
        tasks = list(pair_tasks(wl, paper_config(1)))
        tasks += list(pair_tasks(wl, paper_config(2)))
        messages: list[str] = []
        run_many(tasks, cache=cache, progress=messages.append)
        assert sum("(cached)" in m for m in messages) == 2
        assert sum("(ran)" in m for m in messages) == 2
